#!/usr/bin/env python3
"""Producer/consumer pipeline over a distributed lock-free queue.

The motivating workload class from the paper's introduction: a
synchronization-free pipeline where producers on every locale enqueue work
items and consumers on every locale drain them, with retired queue nodes
flowing through the EpochManager instead of a stop-the-world phase.

Also runs the same pipeline over the single-lock baseline queue and prints
virtual-time throughput for both — the non-blocking version wins because
lock acquisition serializes remotely while the MS queue's CASes only
contend at the two ends.

Run:  python examples/producer_consumer_queue.py
"""

from repro import EpochManager, Runtime
from repro.baselines import LockedQueue
from repro.structures import LockFreeQueue

ITEMS_PER_TASK = 64
rt = Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


def run_lockfree() -> float:
    """Pipeline on the Michael-Scott queue + EBR."""
    em = EpochManager(rt)
    # Plain 64-bit CAS (the RDMA fast path): sound because every
    # operation runs under a pinned EBR token, so addresses a peer might
    # still hold are never recycled.
    q = LockFreeQueue(rt, aba_protection=False)
    consumed = []

    def producer(i: int, tok) -> None:
        tok.pin()
        q.enqueue(("item", i))
        tok.unpin()

    def consumer(i: int, tok) -> None:
        tok.pin()
        item = q.try_dequeue(tok)
        if item is not None:
            consumed.append(item)
        tok.unpin()

    n = rt.num_locales * rt.config.tasks_per_locale * ITEMS_PER_TASK
    with rt.timed() as t:
        rt.forall(range(n), producer, task_init=em.register)
        rt.forall(range(n), consumer, task_init=em.register)
        # Drain stragglers (consumers may have raced an empty snapshot).
        def finisher(_: int, tok) -> None:
            tok.pin()
            while True:
                item = q.try_dequeue(tok)
                if item is None:
                    break
                consumed.append(item)
            tok.unpin()
        rt.forall(range(rt.num_locales), finisher, task_init=em.register)
        em.clear()
    assert len(consumed) == n, (len(consumed), n)
    print(f"  lock-free: {n} items in {t.elapsed*1e3:.3f} ms virtual"
          f"  ({n/t.elapsed:,.0f} items/s)")
    return t.elapsed


def run_locked() -> float:
    """Same pipeline on the single-spinlock baseline queue."""
    q = LockedQueue(rt)
    consumed = []

    def producer(i: int) -> None:
        q.enqueue(("item", i))

    def consumer(i: int) -> None:
        item = q.try_dequeue()
        if item is not None:
            consumed.append(item)

    n = rt.num_locales * rt.config.tasks_per_locale * ITEMS_PER_TASK
    with rt.timed() as t:
        rt.forall(range(n), producer)
        rt.forall(range(n), consumer)
        while True:
            item = q.try_dequeue()
            if item is None:
                break
            consumed.append(item)
    assert len(consumed) == n
    print(f"  locked:    {n} items in {t.elapsed*1e3:.3f} ms virtual"
          f"  ({n/t.elapsed:,.0f} items/s)")
    return t.elapsed


if __name__ == "__main__":
    print(f"pipeline on {rt.num_locales} locales x {rt.config.tasks_per_locale} tasks:")
    lf = rt.run(run_lockfree)
    lk = rt.run(run_locked)
    print(f"  speedup: {lk/lf:.2f}x for the non-blocking queue")
