#!/usr/bin/env python3
"""Why privatization matters: counting every byte that crosses the network.

The paper credits privatized, record-wrapped instances with letting
distributed objects stop being communication-bound.  This example makes
the claim auditable with the CommDiagnostics counters:

1. a pin/unpin loop through the EpochManager performs **zero** remote
   operations regardless of locale count;
2. the same loop through a deliberately by-reference handle performs one
   GET per access (communication-bound);
3. the full reclamation path shows where communication *does* happen —
   in the election, the scan, and the scatter's bulk transfers — and that
   it is amortized over thousands of retirements.

Run:  python examples/privatization_diagnostics.py
"""

from repro import EpochManager, Runtime
from repro.core.privatization import PrivatizedObject, UnprivatizedProxy
from repro.runtime import snapshot

rt = Runtime(num_locales=8, network="ugni", tasks_per_locale=1)

OPS = 2000


def pin_unpin_is_local() -> None:
    """1) pin/unpin never touches the network."""
    em = EpochManager(rt)
    rt.reset_measurements()

    def body(i: int, tok) -> None:
        tok.pin()
        tok.unpin()

    rt.forall(range(OPS), body, task_init=em.register)
    totals = rt.comm_totals()
    remote = totals["get"] + totals["put"] + totals["amo"] + totals["am"]
    print(f"  pin/unpin x{OPS} over {rt.num_locales} locales:"
          f" remote ops = {remote} (gets={totals['get']}, amos={totals['amo']})")
    assert remote == 0, "privatized pin/unpin must be communication-free"
    em.destroy()


def by_reference_is_comm_bound() -> None:
    """2) a by-reference handle pays a GET per resolution."""
    instances = [object() for _ in range(rt.num_locales)]
    proxy = UnprivatizedProxy(rt, instances, owner=0)
    priv = PrivatizedObject(rt, instances)

    rt.reset_measurements()
    def body_proxy(i: int) -> None:
        proxy.get_privatized_instance()
    rt.forall(range(OPS), body_proxy)
    gets_proxy = rt.comm_totals()["get"]

    rt.reset_measurements()
    def body_priv(i: int) -> None:
        priv.get_privatized_instance()
    rt.forall(range(OPS), body_priv)
    gets_priv = rt.comm_totals()["get"]

    print(f"  handle resolutions x{OPS}: by-reference GETs = {gets_proxy},"
          f" privatized GETs = {gets_priv}")
    assert gets_priv == 0


def reclamation_communication_is_amortized() -> None:
    """3) where the EpochManager *does* communicate, and how little."""
    em = EpochManager(rt)
    rt.reset_measurements()

    def body(i: int, tok) -> None:
        tok.pin()
        addr = rt.new_obj({"i": i})
        tok.defer_delete(addr)
        tok.unpin()
        if i % 512 == 0:
            tok.try_reclaim()

    rt.forall(range(OPS), body, task_init=em.register)
    em.clear()
    totals = rt.comm_totals()
    snap = snapshot(rt)
    remote = totals["amo"] + totals["am"] + totals["fork"] + totals["bulk"]
    print(f"  retire x{OPS} w/ sparse tryReclaim: remote ops = {remote}"
          f" ({remote/OPS:.3f} per object; bulk transfers = {totals['bulk']})")
    print(f"  advances = {em.stats.advances},"
          f" reclaimed = {em.stats.objects_reclaimed},"
          f" hottest progress thread: locale {snap.hottest_progress_locale}")
    em.destroy()


if __name__ == "__main__":
    print(f"{rt.num_locales} locales, network atomics enabled:")
    rt.run(pin_unpin_is_local)
    rt.run(by_reference_is_comm_bound)
    rt.run(reclamation_communication_is_amortized)
