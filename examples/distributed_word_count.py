#!/usr/bin/env python3
"""Distributed word count on the Interlocked Hash Table.

The paper's announced follow-on application, exercised end to end: every
locale's tasks stream text shards and bump per-word counters with the
table's lock-free ``update`` (read-copy-update on immutable buckets, old
snapshots retired through the EpochManager).  Lookups afterwards are
wait-free.  The same job runs against the single-lock ``LockedMap``
baseline for a virtual-time comparison, and the result is checked against
Python's ``Counter`` ground truth.

Run:  python examples/distributed_word_count.py
"""

import random
from collections import Counter

from repro import EpochManager, Runtime
from repro.baselines import LockedMap
from repro.structures import InterlockedHashTable

VOCABULARY = (
    "pgas locale epoch atomic pointer compression rdma nic chapel "
    "lock free wait free stack queue list table reclaim limbo token pin"
).split()

rt = Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


def make_shards(num_shards: int, words_per_shard: int) -> list:
    """Deterministic pseudo-text shards."""
    rng = random.Random(1234)
    return [
        [rng.choice(VOCABULARY) for _ in range(words_per_shard)]
        for _ in range(num_shards)
    ]


def main() -> None:
    shards = make_shards(num_shards=64, words_per_shard=50)
    truth = Counter(w for shard in shards for w in shard)

    # -- lock-free table ---------------------------------------------------
    em = EpochManager(rt)
    # aba_protection=False: headers use plain 64-bit (RDMA-able) CAS,
    # with EBR preventing snapshot-address recycling under pins.
    table = InterlockedHashTable(rt, buckets=64, manager=em, aba_protection=False)

    def count_shard(shard, tok) -> None:
        tok.pin()
        for word in shard:
            table.update(word, lambda v: v + 1, default=0, token=tok)
        tok.unpin()
        tok.try_reclaim()

    with rt.timed() as t_lf:
        rt.forall(shards, count_shard, task_init=em.register)
        em.clear()

    # verify against ground truth
    for word, n in truth.items():
        got = table.get(word)
        assert got == n, (word, got, n)
    print(f"  lock-free table: {sum(truth.values())} words counted correctly"
          f" in {t_lf.elapsed*1e3:.3f} ms virtual")
    top = sorted(truth.items(), key=lambda kv: -kv[1])[:3]
    for word, n in top:
        print(f"    {word!r}: {n}  (bucket owner: locale {table.owner_locale(word)})")

    # -- locked baseline ---------------------------------------------------
    lmap = LockedMap(rt)

    def count_shard_locked(shard) -> None:
        for word in shard:
            lmap.update(word, lambda v: v + 1, default=0)

    with rt.timed() as t_lk:
        rt.forall(shards, count_shard_locked)
    for word, n in truth.items():
        assert lmap.get(word) == n
    print(f"  locked map:      same job in {t_lk.elapsed*1e3:.3f} ms virtual")
    print(f"  speedup: {t_lk.elapsed/t_lf.elapsed:.2f}x for the lock-free table")


if __name__ == "__main__":
    rt.run(main)
