#!/usr/bin/env python3
"""The ABA problem, made visible — and both of the paper's fixes.

The scenario from Section II-A, scripted deterministically:

* τ1 reads the stack head and sees node at address α;
* τ2 pops that node AND the one under it, frees both; the allocator (LIFO
  free list) hands address α right back for τ3's fresh node;
* τ1's plain compare-and-swap now *succeeds against the wrong node*,
  installing a dangling next pointer.

Fix #1: the ``ABA`` wrapper — a DCAS over (pointer, counter) makes τ1's
stale snapshot fail.  Fix #2: epoch-based reclamation — the freed address
is never recycled while τ1 could still hold it, so the hazard cannot form.

Run:  python examples/aba_demonstration.py
"""

from repro import EpochManager, Runtime
from repro.structures import LockFreeStack

rt = Runtime(num_locales=1, network="none")


def provoke_plain_cas() -> None:
    """Drive the classic interleaving against a plain-CAS stack."""
    stack = LockFreeStack(rt, aba_protection=False, unsafe_free=True)
    stack.push("A")
    stack.push("B")  # head -> B -> A

    # τ1 reads the head (address of B) and stalls before its CAS.
    tau1_head = stack.head.read()
    tau1_next = rt.deref(tau1_head).next  # τ1 plans: head := A

    # τ2 runs ahead: pops B, whose address goes straight to the free list.
    assert stack.pop() == "B"

    # τ3 pushes a new node C — the LIFO allocator recycles B's address.
    reused = stack.push("C")
    print(f"  address recycled: τ1 saw {tau1_head}, τ3's node C is at {reused}")
    assert reused == tau1_head, "LIFO free list must recycle the address"
    # The stack is now head -> C -> A.

    # τ1 wakes up. Its CAS compares ONLY the pointer bits... and succeeds,
    # silently discarding C by installing τ1's stale 'next' (A).
    assert stack.head.compare_and_swap(tau1_head, tau1_next)
    print("  plain CAS succeeded against the wrong node (ABA!)")
    top = stack.pop()
    print(f"  pop returned {top!r} — node C vanished (lost-update corruption)")
    assert top == "A"


def fixed_by_dcas() -> None:
    """Same interleaving against the ABA-protected stack: CAS fails."""
    stack = LockFreeStack(rt, aba_protection=True, unsafe_free=True)
    stack.push("A")
    stack.push("B")

    tau1_snap = stack.head.read_aba()  # pointer AND counter
    tau1_next = rt.deref(tau1_snap.get_object()).next

    assert stack.pop() == "B"
    reused = stack.push("C")
    assert reused == tau1_snap.get_object()  # same address again...

    ok = stack.head.compare_and_swap_aba(tau1_snap, tau1_next)
    print(f"  DCAS against stale (pointer, counter) snapshot: success={ok}")
    assert not ok, "the counter must have advanced"
    assert stack.pop() == "C"
    assert stack.pop() == "A"
    print("  stack intact: ABA defeated by the 64-bit adjacent counter")


def fixed_by_ebr() -> None:
    """With EBR, the address is never recycled while τ1 might hold it."""
    em = EpochManager(rt)
    stack = LockFreeStack(rt, aba_protection=False)  # plain CAS again!
    tok = em.register()

    stack.push("A")
    stack.push("B")

    tok.pin()  # τ1 is in the epoch while it holds the snapshot
    tau1_head = stack.head.read()

    # τ2 pops both nodes but defers the frees through its own token.
    tok2 = em.register()
    tok2.pin()
    assert stack.pop(tok2) == "B"
    assert stack.pop(tok2) == "A"
    tok2.unpin()
    tok2.try_reclaim()  # cannot free yet: τ1 is still pinned in the epoch

    fresh = stack.push("C")
    print(f"  τ1 saw {tau1_head}; τ3's node went to {fresh} (no reuse while pinned)")
    assert fresh != tau1_head, "EBR must prevent recycling under a pin"
    tok.unpin()
    tok.unregister()
    tok2.unregister()
    em.clear()
    print("  stack intact: ABA prevented by deferring the reclamation")


if __name__ == "__main__":
    print("1) plain CAS + immediate free + LIFO allocator:")
    rt.run(provoke_plain_cas)
    print("2) the ABA wrapper (DCAS on pointer+counter):")
    rt.run(fixed_by_dcas)
    print("3) epoch-based reclamation (defer the free):")
    rt.run(fixed_by_ebr)
