#!/usr/bin/env python3
"""A growing distributed telemetry buffer on ``RCUArray``.

Scenario: every locale's tasks stream sensor readings into one logically
global, dynamically growing array.  Readers (a monitoring task computing a
running maximum) run concurrently with both writers *and* resizes and are
wait-free — they can never be blocked by a grow in progress, because the
array's structure is RCU-published and old descriptors are retired through
the EpochManager.

Run:  python examples/rcu_telemetry_array.py
"""

from repro import EpochManager, Runtime
from repro.structures import RCUArray

rt = Runtime(num_locales=4, network="ugni", tasks_per_locale=2)

SAMPLES = 512
GROW_STEP = 64


def main() -> None:
    em = EpochManager(rt)
    buf = RCUArray(rt, GROW_STEP, block_size=16, fill=0)

    def ingest(i: int, tok) -> None:
        tok.pin()
        # Grow the buffer when the next sample would not fit.  Racing
        # growers are fine: resize() is a CAS loop and the loser retries
        # against the winner's descriptor.
        while i >= len(buf):
            buf.resize(len(buf) + GROW_STEP, token=tok)
        buf.write(i, (i * 37) % 1000)  # the "reading"
        # Wait-free concurrent read path: sample a few slots.
        _ = buf.read(i // 2)
        tok.unpin()
        if i % 128 == 0:
            tok.try_reclaim()

    with rt.timed() as t:
        rt.forall(range(SAMPLES), ingest, task_init=em.register)
        em.clear()

    data = buf.snapshot()[:SAMPLES]
    expected = [(i * 37) % 1000 for i in range(SAMPLES)]
    assert data == expected, "every reading must land in its slot"
    print(f"ingested {SAMPLES} readings across {rt.num_locales} locales"
          f" in {t.elapsed*1e3:.3f} ms virtual")
    print(f"final length {len(buf)}, max reading {max(data)}")
    print(f"block placement (locale per block): {buf.block_locales()}")
    print(f"epoch advances {em.stats.advances},"
          f" retired descriptors/blocks reclaimed: {em.stats.objects_reclaimed}")


if __name__ == "__main__":
    rt.run(main)
