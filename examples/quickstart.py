#!/usr/bin/env python3
"""Quickstart: the paper's building blocks in ~60 lines of user code.

Walks through the whole public surface once:

1. stand up a simulated PGAS machine (4 locales, RDMA atomics),
2. use plain atomics, then ``AtomicObject`` with ABA protection,
3. protect a concurrent pipeline with the ``EpochManager``,
4. read back virtual time and communication diagnostics.

Run:  python examples/quickstart.py
"""

from repro import NIL, AtomicObject, EpochManager, Runtime
from repro.runtime import snapshot

rt = Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


def main() -> None:
    # -- 1. plain atomics -------------------------------------------------
    counter = rt.atomic_int(0, locale=0)

    def count(i: int) -> None:
        counter.add(1)

    rt.forall(range(1000), count)
    print(f"atomic counter: {counter.read()} (expected 1000)")

    # -- 2. AtomicObject: atomics on (remote) objects ---------------------
    head = AtomicObject(rt, locale=0)  # compressed-pointer mode
    first = rt.new_obj({"payload": "hello"}, locale=1)
    head.write(first)
    snap = head.read_aba()  # (pointer, counter) snapshot
    print(f"head -> {snap.get_object()} via {head.mode} mode, count={snap.count}")
    assert head.compare_and_swap_aba(snap, NIL)  # DCAS: pointer AND counter
    rt.free(first)

    # -- 3. EpochManager: safe reclamation under concurrency ---------------
    em = EpochManager(rt)
    shared = AtomicObject(rt, locale=0)

    def churn(i: int, tok) -> None:
        tok.pin()  # enter the epoch (locale-local, cheap)
        mine = rt.new_obj({"i": i})  # allocate on MY locale
        old = shared.exchange_aba(mine).get_object()  # atomic publication
        if not old.is_nil:
            tok.defer_delete(old)  # logically removed -> limbo list
        tok.unpin()  # quiesce
        if i % 256 == 0:
            tok.try_reclaim()  # election + scan + advance + scatter-free

    with rt.timed() as t:
        rt.forall(range(4096), churn, task_init=em.register)
        em.clear()  # everything still in limbo is freed here

    live = sum(loc.heap.live_count for loc in rt.locales)
    print(f"virtual time: {t.elapsed*1e3:.3f} ms for 4096 publish+retire ops")
    print(f"epoch advances: {em.stats.advances}, reclaimed: {em.stats.objects_reclaimed}")
    print(f"live objects after clear: {live} (expected 1 = current head)")

    # -- 4. diagnostics -----------------------------------------------------
    snap2 = snapshot(rt)
    print(f"comm totals: {snap2.comm_totals}")
    print(f"hottest progress thread: locale {snap2.hottest_progress_locale}")


if __name__ == "__main__":
    rt.run(main)
