"""Shared fixtures/helpers for the pytest-benchmark suite.

Every benchmark here drives the same figure code as
``python -m repro.bench`` but at reduced scale (small locale axis, fewer
ops) so the whole suite completes in a couple of minutes.  The *virtual*
elapsed seconds — the quantity the paper plots — are attached to each
benchmark's ``extra_info`` so ``--benchmark-json`` output carries the
reproduction data alongside the harness wall times.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest

from repro.bench.report import Panel


def record_panels(benchmark, panels: "Sequence[Panel] | Panel") -> None:
    """Attach a figure's series to pytest-benchmark's extra_info."""
    if isinstance(panels, Panel):
        panels = [panels]
    benchmark.extra_info["panels"] = [p.as_dict() for p in panels]


@pytest.fixture
def small_locales() -> List[int]:
    """The reduced locale axis used across the benchmark suite."""
    return [2, 4, 8]
