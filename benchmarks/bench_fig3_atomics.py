"""Figure 3 benchmarks: AtomicObject vs atomic int (both panels).

Paper series and the shape expectations we assert alongside timing:

* shared memory: strong scaling — time decreases with task count; the
  non-ABA ``AtomicObject`` tracks ``atomic int``; the ABA variant pays a
  constant factor (DCAS).
* distributed: ``ugni`` beats ``none`` once operations are mostly remote;
  ``AtomicObject`` ~= ``atomic int`` within a network mode;
  ``AtomicObject (ABA)`` tracks the active-message (none) curves.
"""

from __future__ import annotations


from repro.bench.figures import figure3_distributed, figure3_shared

from conftest import record_panels


def test_fig3_shared_memory(benchmark):
    """Figure 3 (left): 1..8 tasks, fixed total ops, one locale."""

    def run():
        return figure3_shared(tasks=(1, 2, 4, 8), total_ops=1 << 12)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    # Strong scaling: every series must get faster with more tasks.
    for name, vals in series.items():
        assert vals[-1] < vals[0], f"{name} did not scale down with tasks"
    # AtomicObject (no ABA) within 1.5x of atomic int at every point.
    for a, b in zip(series["AtomicObject"], series["atomic int"]):
        assert a < 1.5 * b
    # ABA strictly slower than non-ABA (the DCAS constant).
    for a, b in zip(series["AtomicObject (ABA)"], series["AtomicObject"]):
        assert a > b


def test_fig3_distributed(benchmark, small_locales):
    """Figure 3 (right): 2..8 locales, cyclic cells, all five series."""

    def run():
        return figure3_distributed(locales=small_locales, ops_per_task=1 << 8)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    # ugni beats none for remote-dominated traffic at every locale count.
    for u, n in zip(series["atomic int (ugni)"], series["atomic int (none)"]):
        assert u < n
    # AtomicObject ~= atomic int within each network mode (<= 1.6x).
    for mode in ("none", "ugni"):
        for a, b in zip(
            series[f"AtomicObject ({mode})"], series[f"atomic int ({mode})"]
        ):
            assert a < 1.6 * b
    # ABA rides the active-message path: within 2x of the none curve.
    for a, n in zip(series["AtomicObject (ABA)"], series["AtomicObject (none)"]):
        assert a < 2.0 * n
