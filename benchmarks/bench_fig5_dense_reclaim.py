"""Figure 5 benchmark: deletion with ``tryReclaim`` called every iteration.

The stress case for the election protocol: every single operation attempts
a reclaim.  Shape assertions: still bounded growth (the FCFS election
keeps the global-epoch locale usable), and dense reclamation costs more
than sparse (cross-checked against Figure 4 data at one point).
"""

from __future__ import annotations

from repro.bench.figures import figure4, figure5

from conftest import record_panels


def test_fig5_dense_tryreclaim(benchmark, small_locales):
    """Dense-reclaim sweep over {0,50,100}% remote x {none,ugni}."""

    def run():
        return figure5(locales=small_locales, ops_per_task=1 << 8)

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panels)
    assert len(panels) == 3
    for panel in panels:
        for s in panel.series:
            assert s.values[-1] < 16.0 * s.values[0], f"{panel.title}/{s.name} exploded"


def test_fig5_costs_more_than_fig4():
    """Dense tryReclaim is strictly slower than sparse at equal size."""
    sparse = figure4(locales=[4], ops_per_task=1 << 9, remote_percents=(0,))[0]
    dense = figure5(locales=[4], ops_per_task=1 << 9, remote_percents=(0,))[0]
    s = {x.name: x.values for x in sparse.series}
    d = {x.name: x.values for x in dense.series}
    for net in ("none", "ugni"):
        assert d[net][0] > s[net][0]
