#!/usr/bin/env bash
# Wall-clock smoke gate: tier-1 suite + engine wall-clock benchmark.
#
# Run from the repo root:
#
#     bash benchmarks/run_smoke.sh
#
# Writes BENCH_wallclock.json at the repo root so each PR leaves a perf
# data point behind (virtual-time correctness is enforced; wall-clock
# speedup is recorded for the trajectory).  The benchmark measures both
# execution engines (interpreted and compiled — docs/ENGINE.md) and
# fails if they diverge on virtual results; the scenario check then
# re-verifies every registered baseline under the compiled engine.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== engine wall-clock benchmark (quick, both engines) =="
python benchmarks/bench_wallclock.py --quick

echo
echo "== scenario baselines under the compiled engine =="
python -m repro.bench scenarios --all --engine compiled --out /tmp/smoke_scenarios_compiled.json

echo
echo "smoke gate OK — see BENCH_wallclock.json"
