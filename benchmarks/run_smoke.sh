#!/usr/bin/env bash
# Wall-clock smoke gate: tier-1 suite + engine wall-clock benchmark.
#
# Run from the repo root:
#
#     bash benchmarks/run_smoke.sh
#
# Writes BENCH_wallclock.json at the repo root so each PR leaves a perf
# data point behind (virtual-time correctness is enforced; wall-clock
# speedup is recorded for the trajectory).  The benchmark measures both
# execution engines (interpreted and compiled — docs/ENGINE.md) and
# fails if they diverge on virtual results; the scenario check then
# re-verifies every registered baseline under ``compiled-strict`` —
# the registry is fully lowered, so any interpreter fallback is a
# regression and fails the gate outright.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 test suite =="
python -m pytest -x -q

echo
echo "== engine wall-clock benchmark (quick, both engines) =="
python benchmarks/bench_wallclock.py --quick

echo
echo "== benchmark report sanity (engine labeling + reclaim coverage) =="
python - <<'EOF'
import json

report = json.load(open("BENCH_wallclock.json"))
workloads = report["workloads"]
# The reclaim shapes must be in the two-engine matrix with a recorded
# compiled-vs-interpreted speedup — the quantity the compiled lowering
# of the epoch rounds is accountable to.
for name in ("reclaim_sparse", "reclaim_dense", "fig7_readonly"):
    entry = workloads[name]
    speedup = entry["compiled_vs_interpreted_speedup"]
    assert speedup > 0, f"{name}: bogus speedup {speedup!r}"
    assert entry["engine"]["effective"] == "compiled", (
        f"{name}: effective engine {entry['engine']['effective']!r}"
    )
    assert entry["fallback_count"] == 0, (
        f"{name}: {entry['fallback_count']} fallback(s): "
        f"{entry['engine'].get('fallbacks')}"
    )
    print(f"{name}: compiled-vs-interpreted {speedup:.2f}x, no fallbacks")
EOF

echo
echo "== scenario baselines under compiled-strict (zero fallbacks) =="
python -m repro.bench scenarios --all --engine compiled-strict \
  --out /tmp/smoke_scenarios_compiled.json

echo
echo "smoke gate OK — see BENCH_wallclock.json"
