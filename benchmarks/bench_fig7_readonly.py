"""Figure 7 benchmark: read-only pin/unpin workload (no deletion).

The paper's privatization headline: performance is "essentially stable
across multiple locales" because pin/unpin never leaves the locale.  We
assert flatness quantitatively: the slowest point on the curve is within a
small factor of the fastest, and the two network modes coincide (no
network atomics are involved at all).
"""

from __future__ import annotations

from repro.bench.figures import figure7

from conftest import record_panels


def test_fig7_readonly_pin_unpin(benchmark, small_locales):
    """Read-only sweep over locales x {none,ugni}."""

    def run():
        return figure7(locales=small_locales, ops_per_task=1 << 10)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    for net, vals in series.items():
        # Flatness: max/min within 2x across the whole locale axis.
        assert max(vals) < 2.0 * min(vals), f"{net} curve is not flat: {vals}"
    # Pin/unpin uses no network atomics, so the modes must coincide.
    for u, n in zip(series["ugni"], series["none"]):
        assert abs(u - n) < 0.25 * max(u, n) + 1e-12
