"""Ablation benchmarks: the design choices DESIGN.md Section 6 calls out.

Each test runs one ablation panel at reduced scale and asserts the
direction of the effect the paper's design argues for:

* pointer compression beats the DCAS fallback under ``ugni``;
* privatized handles beat by-reference proxies, increasingly with scale;
* the scatter list beats per-object remote frees at 100% remote;
* the FCFS election beats everyone-scans under dense ``tryReclaim``;
* the EpochManager's pin/unpin beats the hot-counter blocking reclaimer
  once more than one locale is involved.
"""

from __future__ import annotations

from repro.bench.ablations import (
    ablation_compression,
    ablation_election,
    ablation_privatization,
    ablation_reclaimers,
    ablation_scatter,
)

from conftest import record_panels


def test_ablation_compression(benchmark):
    """compressed < dcas at every locale count (ugni)."""

    def run():
        return ablation_compression(locales=(2, 4, 8), ops_per_task=1 << 8)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    for comp, dcas in zip(series["compressed"], series["dcas"]):
        assert comp < dcas
    # The descriptor extension stays on the RDMA path: closer to
    # compressed than to dcas at the largest point.
    gap_desc = series["descriptor"][-1] - series["compressed"][-1]
    gap_dcas = series["dcas"][-1] - series["compressed"][-1]
    assert gap_desc < gap_dcas


def test_ablation_privatization(benchmark):
    """Privatized resolution is flat; by-reference grows with locales."""

    def run():
        return ablation_privatization(locales=(2, 4, 8), ops_per_task=1 << 9)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    # Privatization must win by a wide margin at every locale count (the
    # by-reference proxy pays a metadata GET per resolution).
    for priv, byref in zip(series["privatized"], series["by-reference"]):
        assert byref > 5.0 * priv, (priv, byref)


def test_ablation_scatter(benchmark):
    """Bulk scatter-frees beat per-object remote frees at 100% remote."""

    def run():
        return ablation_scatter(locales=(2, 4, 8), ops_per_task=1 << 8)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    for scat, per in zip(series["scatter"], series["per-object free"]):
        assert scat < per


def test_ablation_election(benchmark):
    """The FCFS election slashes redundant communication per object.

    Metric: remote operations (forks + AMs + remote atomics + GETs/PUTs)
    per retired object under dense ``tryReclaim``.  Without the election,
    every caller's scan fans out to all locales, so the per-object remote
    traffic must be a multiple of the elected version's — and the gap must
    widen with the locale count.
    """

    def run():
        return ablation_election(locales=(2, 4, 8), ops_per_task=1 << 7)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    for el, noel in zip(series["election"], series["no election"]):
        assert el < noel
    ratio_large = series["no election"][-1] / series["election"][-1]
    assert ratio_large > 1.5, f"election saved too little at scale: {series}"


def test_ablation_reclaimers(benchmark):
    """EBR pin/unpin beats the hot-counter reclaimer beyond one locale."""

    def run():
        return ablation_reclaimers(locales=(1, 2, 4, 8), ops_per_task=1 << 9)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    # From 2 locales up, the global counter's remote atomics lose.
    for em, glr in zip(series["EpochManager"][1:], series["GlobalLockReclaimer"][1:]):
        assert em < glr
    # And the EpochManager curve is flat-ish while the baseline grows.
    em_vals = series["EpochManager"]
    assert max(em_vals) < 3.0 * min(em_vals)


def test_ablation_epoch_cycle(benchmark):
    """The hardened 4-epoch cycle costs ~nothing over the paper's 3.

    The extra limbo list is only touched during reclamation, so the time
    premium must be marginal (< 10%) — safety nearly for free.
    """
    from repro.bench.ablations import ablation_epoch_cycle

    def run():
        return ablation_epoch_cycle(locales=(2, 4, 8), ops_per_task=1 << 8)

    panel = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panel)
    series = {s.name: s.values for s in panel.series}
    for three, four in zip(series["3 epochs"], series["4 epochs"]):
        assert four < 1.10 * three, (three, four)
