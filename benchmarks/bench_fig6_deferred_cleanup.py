"""Figure 6 benchmark: deletion with reclamation only performed at the end.

The bounded-memory pattern: defer everything, one ``clear()`` afterwards.
Shape assertions: bounded growth across locales and a visible (but not
catastrophic) premium for remote objects — the scatter list keeps the
remote premium to bulk-transfer prices.
"""

from __future__ import annotations

from repro.bench.figures import figure6

from conftest import record_panels


def test_fig6_cleanup_at_end(benchmark, small_locales):
    """End-only-cleanup sweep over {0,50,100}% remote x {none,ugni}."""

    def run():
        return figure6(locales=small_locales, ops_per_task=1 << 9)

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panels)
    assert len(panels) == 3
    for panel in panels:
        series = {s.name: s.values for s in panel.series}
        for name, vals in series.items():
            assert vals[-1] < 8.0 * vals[0], f"{panel.title}/{name} exploded"

    # The remote premium exists but is amortized: 100% remote costs less
    # than 5x the 0% remote run at the largest tested locale count.
    p0 = {s.name: s.values for s in panels[0].series}
    p100 = {s.name: s.values for s in panels[2].series}
    for net in ("none", "ugni"):
        assert p100[net][-1] < 5.0 * p0[net][-1]
