#!/usr/bin/env python
"""Wall-clock benchmark of the execution engine (not the modelled system).

The paper's figures measure *virtual* seconds; this benchmark measures how
much *real* time the simulator burns producing them — the quantity the
engine overhaul (persistent worker pools, precompiled cost routes, striped
diagnostics, and now batch-compiled op streams) optimizes.  Five
workloads, all at 8 locales:

* ``fig3_atomics``   — the Figure 3 ``atomic int`` 25/25/25/25 mix (ugni).
* ``fig3_hotspot``   — the Zipf-skewed hotspot variant of the mix.
* ``fig7_readonly``  — the Figure 7 pin/unpin read-only epoch workload.
* ``reclaim_sparse`` — Figure 4's shape: sparse deferDelete traffic (25%
  of ops retire) with phased reclamation between rounds.
* ``reclaim_dense``  — Figure 5's shape: every op retires, the heaviest
  reclamation traffic the epoch rounds generate.

Every workload runs under **both execution engines** (``interpreted`` and
``compiled`` — see docs/ENGINE.md); the engines must agree bit-identically
on virtual time and comm totals (enforced here), and the report records
each engine's wall time plus the compiled-vs-interpreted speedup.  The
headline ``wall_s`` per workload is the *compiled* engine's — the engine a
throughput-bound sweep would use.

Labeling is honest about what actually ran: each entry's ``engine`` block
is the runtime's effective-engine record (configured engine, *effective*
engine, per-tier phase counts, and any per-phase fallbacks), plus a
``fallback_count`` — a workload whose every phase fell back to the
interpreter is reported as such, not as "compiled".

The script then compares against ``benchmarks/baseline_seed.json`` (the
thread-per-task seed engine measured on the same machine):

* **speedup** = baseline wall / current wall (the optimization target);
* **virtual_s and comm totals must match the baseline exactly** — the
  engine contract is that throughput work never changes simulated results.

Workloads without a seed entry (the hotspot and reclaim shapes postdate
the seed) report only the cross-engine speedup.

Output goes to ``BENCH_wallclock.json`` next to the repo root (or
``--out``).  Exit status is non-zero if virtual time or comm totals
diverge from the baseline or between engines; the speedup itself is
reported, not enforced (machines differ — see the baseline file for the
reference machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py           # full (7 reps)
    PYTHONPATH=src python benchmarks/bench_wallclock.py --quick   # smoke (3 reps)
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

from repro.engine import engine_summary
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import Runtime
from repro.bench.workloads import (
    run_atomic_hotspot,
    run_atomic_mix,
    run_epoch_mixed,
    run_epoch_workload,
)

BASELINE_PATH = Path(__file__).resolve().parent / "baseline_seed.json"
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"

NUM_LOCALES = 8
OPS_PER_TASK = 1 << 12

#: The two-engine comparison matrix.  ``compiled-strict`` is the same
#: engine as ``compiled`` with fallbacks turned into errors — CI runs it
#: over the scenario registry; timing it here would measure nothing new.
BENCH_ENGINES = ("interpreted", "compiled")


def calibration() -> float:
    """Wall seconds for a fixed pure-Python loop (lock cycles + float math).

    Engine-independent; comparing against the ``calibration_s`` recorded
    with the baseline estimates how loaded/slow the machine is *right
    now* relative to when the baseline was taken, so speedups can be
    reported load-adjusted as well as raw.  Do not change this loop
    without re-recording every baseline.
    """
    lk = threading.Lock()
    acc = 0.0
    t0 = time.perf_counter()
    for i in range(300000):
        with lk:
            acc += i * 0.5
    return time.perf_counter() - t0


def _runtime(engine: str) -> Runtime:
    return Runtime(
        config=RuntimeConfig(
            num_locales=NUM_LOCALES,
            network="ugni",
            tasks_per_locale=1,
            engine=engine,
        )
    )


def fig3_atomics(engine: str):
    """Figure 3 atomic-int mix at 8 locales under ugni."""
    rt = _runtime(engine)
    try:
        res = run_atomic_mix(
            rt, kind="atomic_int", ops_per_task=OPS_PER_TASK, tasks_per_locale=1
        )
        return res, engine_summary(rt)
    finally:
        rt.close()


def fig3_hotspot(engine: str):
    """Zipf-skewed hotspot mix at 8 locales under ugni."""
    rt = _runtime(engine)
    try:
        res = run_atomic_hotspot(
            rt, cell="atomic_int", ops_per_task=OPS_PER_TASK, tasks_per_locale=1
        )
        return res, engine_summary(rt)
    finally:
        rt.close()


def fig7_readonly(engine: str):
    """Figure 7 read-only pin/unpin workload at 8 locales under ugni.

    Lowers to the columnar replay (``run_epoch_workload_phase``): the
    token registration runs for real on a synthetic task context and the
    pin/unpin charge stream replays from the reclaimer's charge profile.
    """
    rt = _runtime(engine)
    try:
        res = run_epoch_workload(
            rt,
            ops_per_task=OPS_PER_TASK,
            tasks_per_locale=1,
            delete=False,
            reclaim_every=None,
            cleanup_at_end=False,
        )
        return res, engine_summary(rt)
    finally:
        rt.close()


def reclaim_sparse(engine: str):
    """Figure 4's shape: sparse reclaim traffic over phased epoch rounds.

    25% of ops retire; between rounds the root quiesces the epoch and
    reclaims — the deterministic analog of Figure 4's periodic
    ``tryReclaim`` cadence.  The rounds lower to the columnar replay.
    """
    rt = _runtime(engine)
    try:
        res = run_epoch_mixed(
            rt,
            ops_per_task=OPS_PER_TASK // 4,
            tasks_per_locale=1,
            write_percent=25,
            remote_percent=50,
            rounds=4,
        )
        return res, engine_summary(rt)
    finally:
        rt.close()


def reclaim_dense(engine: str):
    """Figure 5's shape: every op retires (the densest reclaim traffic)."""
    rt = _runtime(engine)
    try:
        res = run_epoch_mixed(
            rt,
            ops_per_task=OPS_PER_TASK // 4,
            tasks_per_locale=1,
            write_percent=100,
            remote_percent=50,
            rounds=4,
        )
        return res, engine_summary(rt)
    finally:
        rt.close()


WORKLOADS = {
    "fig3_atomics": fig3_atomics,
    "fig3_hotspot": fig3_hotspot,
    "fig7_readonly": fig7_readonly,
    "reclaim_sparse": reclaim_sparse,
    "reclaim_dense": reclaim_dense,
}


def measure(fn, reps: int):
    """Min wall seconds over ``reps`` runs (after one warm-up), plus the
    last run's result and effective-engine summary."""
    fn()  # warm up: route tables, pool threads, bytecode + column caches
    best = float("inf")
    result = summary = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result, summary = fn()
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, result, summary


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="3 reps instead of 7")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT, help="output JSON path")
    ap.add_argument(
        "--record-baseline",
        action="store_true",
        help="write measurements to benchmarks/baseline_seed.json instead of"
        " comparing (run this on a checkout of the seed engine)",
    )
    args = ap.parse_args(argv)
    reps = 3 if args.quick else 7

    baseline = None
    base_cal = None
    if BASELINE_PATH.exists() and not args.record_baseline:
        base_doc = json.loads(BASELINE_PATH.read_text())
        baseline = base_doc["workloads"]
        base_cal = base_doc.get("calibration_s")

    cal_now = min(calibration() for _ in range(3 if args.quick else 5))
    load_factor = (cal_now / base_cal) if base_cal else 1.0

    report = {
        "config": {
            "num_locales": NUM_LOCALES,
            "ops_per_task": OPS_PER_TASK,
            "reps": reps,
            "mode": "quick" if args.quick else "full",
            "engines": list(BENCH_ENGINES),
        },
        "calibration_s": cal_now,
        "load_factor_vs_baseline": load_factor,
        "workloads": {},
    }
    failures = []
    for name, fn in WORKLOADS.items():
        per_engine = {}
        results = {}
        summaries = {}
        for engine in BENCH_ENGINES:
            wall, res, summary = measure(lambda e=engine: fn(e), reps)
            per_engine[engine] = {
                "wall_s": wall,
                "effective_engine": summary["effective"],
            }
            results[engine] = res
            summaries[engine] = summary
        interp = results["interpreted"]
        comp = results["compiled"]
        if interp.elapsed != comp.elapsed or interp.comm != comp.comm:
            failures.append(
                f"{name}: compiled engine diverges from interpreted"
                f" (virtual {comp.elapsed!r} vs {interp.elapsed!r})"
            )
        # Headline numbers: the compiled engine (what a sweep would run);
        # virtual results are engine-independent by the check above.
        wall = per_engine["compiled"]["wall_s"]
        res = comp
        comp_summary = summaries["compiled"]
        entry = {
            # What the compiled run *actually* did, not what was asked
            # for: configured + effective engine, per-tier phase counts,
            # and each fallen-back phase with its reason.
            "engine": comp_summary,
            "fallback_count": len(comp_summary.get("fallbacks", [])),
            "wall_s": wall,
            "virtual_s": res.elapsed,
            "operations": res.operations,
            "comm": res.comm,
            "engines": per_engine,
            "compiled_vs_interpreted_speedup": (
                per_engine["interpreted"]["wall_s"] / wall
                if wall > 0
                else float("inf")
            ),
        }
        base = baseline.get(name) if baseline is not None else None
        if base is not None:
            entry["baseline_wall_s"] = base["wall_s"]
            entry["speedup"] = base["wall_s"] / wall if wall > 0 else float("inf")
            # Load-adjusted: what the baseline would measure on the machine
            # in its *current* state (per the calibration loop).
            entry["speedup_load_adjusted"] = (
                base["wall_s"] * load_factor / wall if wall > 0 else float("inf")
            )
            entry["virtual_matches_seed"] = res.elapsed == base["virtual_s"]
            entry["comm_matches_seed"] = res.comm == base["comm"]
            if not entry["virtual_matches_seed"]:
                failures.append(
                    f"{name}: virtual {res.elapsed!r} != seed {base['virtual_s']!r}"
                )
            if not entry["comm_matches_seed"]:
                failures.append(f"{name}: comm totals diverge from seed")
        report["workloads"][name] = entry
        line = (
            f"{name}: wall {wall*1e3:8.2f} ms  virtual {res.elapsed:.9f} s"
            f"  engine {entry['compiled_vs_interpreted_speedup']:.2f}x"
            f" [{comp_summary['effective']}"
        )
        if entry["fallback_count"]:
            line += f", {entry['fallback_count']} fallback(s)"
        line += "]"
        if base is not None:
            line += (
                f"  vs-seed {entry['speedup']:.2f}x"
                f" (load-adjusted {entry['speedup_load_adjusted']:.2f}x)"
            )
        print(line)

    if args.record_baseline:
        payload = {
            "comment": "Seed-engine reference recorded by --record-baseline.",
            "calibration_s": cal_now,
            "workloads": {
                name: {
                    "wall_s": e["wall_s"],
                    "virtual_s": e["virtual_s"],
                    "comm": e["comm"],
                }
                for name, e in report["workloads"].items()
            },
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline recorded to {BASELINE_PATH}")
        return 0

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {args.out}")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
