"""Figure 4 benchmark: deletion with ``tryReclaim`` once per 1024 iterations.

Three panels (0/50/100% remote objects), two series each (none/ugni).
Shape assertions: curves stay bounded (scalable) as locales grow, and more
remote objects never make reclamation cheaper.
"""

from __future__ import annotations

from repro.bench.figures import figure4

from conftest import record_panels


def test_fig4_sparse_tryreclaim(benchmark, small_locales):
    """Sparse-reclaim sweep over {0,50,100}% remote x {none,ugni}."""

    def run():
        return figure4(locales=small_locales, ops_per_task=1 << 9)

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    record_panels(benchmark, panels)
    assert len(panels) == 3  # one per remote percentage
    by_remote = {p.title.split("—")[1].strip(): p for p in panels}

    for panel in panels:
        series = {s.name: s.values for s in panel.series}
        for name, vals in series.items():
            # Scalability: quadrupling locales must not blow time up by
            # more than ~8x (the paper's curves grow gently on log axes).
            assert vals[-1] < 8.0 * vals[0], f"{panel.title}/{name} exploded"

    # More remote objects cost at least as much as fewer, per network.
    p0 = {s.name: s.values for s in by_remote["0% remote objects"].series}
    p100 = {s.name: s.values for s in by_remote["100% remote objects"].series}
    for net in ("none", "ugni"):
        for hi, lo in zip(p100[net], p0[net]):
            assert hi >= 0.9 * lo  # allow noise, forbid inversions
