"""Unit tests for the cost model and runtime configuration."""

from __future__ import annotations

import pytest

from repro.comm.costs import DEFAULT_COSTS
from repro.errors import LocaleError
from repro.runtime.config import NetworkType, RuntimeConfig


class TestCostModel:
    def test_defaults_encode_the_papers_ordering(self):
        """cpu atomic << NIC atomic << active message."""
        c = DEFAULT_COSTS
        assert c.cpu_atomic_latency < c.nic_atomic_local_latency
        assert c.nic_atomic_local_latency < c.nic_atomic_remote_latency
        assert c.nic_atomic_remote_latency < 2 * c.am_latency

    def test_ugni_local_penalty_is_about_an_order_of_magnitude(self):
        """The paper measures NIC-local atomics ~10x over CPU atomics."""
        c = DEFAULT_COSTS
        ratio = c.nic_atomic_local_latency / c.cpu_atomic_latency
        assert 5 <= ratio <= 30

    def test_dcas_costs_more_than_single_word(self):
        assert DEFAULT_COSTS.cpu_dcas_latency > DEFAULT_COSTS.cpu_atomic_latency

    def test_bulk_free_is_cheaper_than_individual_frees(self):
        c = DEFAULT_COSTS
        assert c.bulk_free_per_object < c.free_latency

    def test_scaled_multiplies_every_field(self):
        c = DEFAULT_COSTS.scaled(2.0)
        assert c.cpu_atomic_latency == 2 * DEFAULT_COSTS.cpu_atomic_latency
        assert c.am_latency == 2 * DEFAULT_COSTS.am_latency
        assert c.rdma_byte_cost == 2 * DEFAULT_COSTS.rdma_byte_cost

    def test_with_overrides_replaces_only_named_fields(self):
        c = DEFAULT_COSTS.with_overrides(am_latency=1.0)
        assert c.am_latency == 1.0
        assert c.cpu_atomic_latency == DEFAULT_COSTS.cpu_atomic_latency

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.am_latency = 0.0  # type: ignore[misc]


class TestNetworkType:
    def test_parse_strings(self):
        assert NetworkType.parse("ugni") is NetworkType.UGNI
        assert NetworkType.parse("none") is NetworkType.NONE
        assert NetworkType.parse("UGNI") is NetworkType.UGNI

    def test_parse_enum_passthrough(self):
        assert NetworkType.parse(NetworkType.NONE) is NetworkType.NONE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            NetworkType.parse("infiniband-magic")


class TestRuntimeConfig:
    def test_defaults(self):
        cfg = RuntimeConfig()
        assert cfg.num_locales == 4
        assert cfg.network is NetworkType.UGNI
        assert cfg.uses_network_atomics

    def test_string_network_is_normalized(self):
        cfg = RuntimeConfig(network="none")
        assert cfg.network is NetworkType.NONE
        assert not cfg.uses_network_atomics

    def test_rejects_zero_locales(self):
        with pytest.raises(LocaleError):
            RuntimeConfig(num_locales=0)

    def test_rejects_zero_tasks_per_locale(self):
        with pytest.raises(ValueError):
            RuntimeConfig(tasks_per_locale=0)

    def test_rejects_non_power_of_two_alignment(self):
        with pytest.raises(ValueError):
            RuntimeConfig(heap_alignment=12)

    def test_rejects_alignment_below_two(self):
        with pytest.raises(ValueError):
            RuntimeConfig(heap_alignment=1)

    def test_with_creates_modified_copy(self):
        cfg = RuntimeConfig()
        cfg2 = cfg.with_(num_locales=8)
        assert cfg2.num_locales == 8
        assert cfg.num_locales == 4

    def test_frozen(self):
        cfg = RuntimeConfig()
        with pytest.raises(Exception):
            cfg.num_locales = 8  # type: ignore[misc]
