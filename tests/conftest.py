"""Shared fixtures for the test suite.

Conventions:

* ``rt`` — a small default machine (4 locales, ugni, 2 tasks/locale).
* ``rt_none`` / ``rt_both`` — the no-network-atomics flavour / both.
* ``run`` — helper executing a callable inside a root task
  (``rt.run``), because every PGAS operation needs a task context.

Tests that exercise genuine concurrency spawn real threads through the
runtime's ``forall``/``coforall`` and assert invariants rather than
schedules; sizes are kept small so the whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.runtime import Runtime


@pytest.fixture
def rt() -> Runtime:
    """Default small machine: 4 locales, RDMA atomics."""
    return Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


@pytest.fixture
def rt_none() -> Runtime:
    """4 locales without network atomics (remote atomics become AMs)."""
    return Runtime(num_locales=4, network="none", tasks_per_locale=2)


@pytest.fixture(params=["ugni", "none"])
def rt_both(request) -> Runtime:
    """Parametrized over both network flavours."""
    return Runtime(num_locales=4, network=request.param, tasks_per_locale=2)


@pytest.fixture
def rt1() -> Runtime:
    """Single-locale machine (shared-memory scenarios)."""
    return Runtime(num_locales=1, network="none", tasks_per_locale=4)


def run_in_task(rt: Runtime, fn, *args):
    """Execute ``fn`` inside a root task context on locale 0."""
    return rt.run(fn, *args)


@pytest.fixture
def run():
    """The ``run(rt, fn)`` helper as a fixture."""
    return run_in_task
