"""Tests for the execution constructs: run/on/forall/coforall/timed."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    LocaleError,
    NoTaskContextError,
    RuntimeStateError,
)
from repro.runtime import current_context, maybe_context, snapshot


class TestRun:
    def test_run_installs_context(self, rt):
        def main():
            ctx = current_context()
            assert ctx.locale_id == 0
            assert ctx.clock.now == 0.0
            return "done"

        assert rt.run(main) == "done"

    def test_run_on_other_locale(self, rt):
        assert rt.run(lambda: rt.here(), locale=2) == 2

    def test_run_cannot_nest(self, rt):
        def main():
            rt.run(lambda: None)

        with pytest.raises(RuntimeStateError):
            rt.run(main)

    def test_context_cleared_after_run(self, rt):
        rt.run(lambda: None)
        assert maybe_context() is None

    def test_operations_outside_tasks_raise_where_required(self, rt):
        with pytest.raises(NoTaskContextError):
            rt.new_obj("x")  # no explicit locale and no task context

    def test_here_outside_task_raises(self, rt):
        with pytest.raises(NoTaskContextError):
            rt.here()


class TestOn:
    def test_on_rebinds_here_and_restores(self, rt):
        def main():
            assert rt.here() == 0
            with rt.on(3):
                assert rt.here() == 3
                with rt.on(1):
                    assert rt.here() == 1
                assert rt.here() == 3
            assert rt.here() == 0

        rt.run(main)

    def test_on_restores_after_exception(self, rt):
        def main():
            try:
                with rt.on(2):
                    raise ValueError("boom")
            except ValueError:
                pass
            assert rt.here() == 0

        rt.run(main)

    def test_on_validates_locale(self, rt):
        def main():
            with rt.on(99):
                pass

        with pytest.raises(LocaleError):
            rt.run(main)


class TestForall:
    def test_all_items_processed_exactly_once(self, rt):
        seen = []
        lock = threading.Lock()

        def body(i):
            with lock:
                seen.append(i)

        rt.run(lambda: rt.forall(range(100), body))
        assert sorted(seen) == list(range(100))

    def test_items_run_on_their_cyclic_owner(self, rt):
        owners = {}
        lock = threading.Lock()

        def body(i):
            with lock:
                owners[i] = rt.here()

        rt.run(lambda: rt.forall(range(16), body))
        for i, loc in owners.items():
            assert loc == i % rt.num_locales

    def test_owner_of_override(self, rt):
        owners = set()
        lock = threading.Lock()

        def body(i):
            with lock:
                owners.add(rt.here())

        rt.run(
            lambda: rt.forall(range(20), body, owner_of=lambda item, idx: 1)
        )
        assert owners == {1}

    def test_task_init_runs_once_per_task_on_task_locale(self, rt):
        created = []
        lock = threading.Lock()

        class Tls:
            def __init__(self):
                with lock:
                    created.append(rt.here())

        rt.run(
            lambda: rt.forall(range(32), lambda i, tls: None, task_init=Tls,
                              tasks_per_locale=2)
        )
        # 4 locales x 2 tasks = 8 task-private values, 2 per locale.
        assert len(created) == 8
        for lid in range(rt.num_locales):
            assert created.count(lid) == 2

    def test_task_init_close_called(self, rt):
        closed = []
        lock = threading.Lock()

        class Tls:
            def close(self):
                with lock:
                    closed.append(1)

        rt.run(lambda: rt.forall(range(8), lambda i, t: None, task_init=Tls,
                                 tasks_per_locale=1))
        assert len(closed) == rt.num_locales

    def test_task_init_close_called_even_on_error(self, rt):
        closed = []

        class Tls:
            def close(self):
                closed.append(1)

        def body(i, tls):
            raise RuntimeError("body failure")

        with pytest.raises(RuntimeError, match="body failure"):
            rt.run(lambda: rt.forall([1], body, task_init=Tls))
        assert closed == [1]

    def test_empty_iterable_is_a_noop(self, rt):
        rt.run(lambda: rt.forall([], lambda i: None))

    def test_exceptions_propagate(self, rt):
        def body(i):
            if i == 7:
                raise ValueError("seven")

        with pytest.raises(ValueError, match="seven"):
            rt.run(lambda: rt.forall(range(16), body))

    def test_forall_advances_parent_clock(self, rt):
        def main():
            before = current_context().clock.now
            rt.forall(range(8), lambda i: rt.atomic_int(0, locale=rt.here()).read())
            return current_context().clock.now - before

        assert rt.run(main) > 0.0


class TestCoforallLocales:
    def test_one_task_per_locale(self, rt):
        hits = []
        lock = threading.Lock()

        def body(lid):
            assert rt.here() == lid
            with lock:
                hits.append(lid)

        rt.run(lambda: rt.coforall_locales(body))
        assert sorted(hits) == list(range(rt.num_locales))

    def test_subset_of_locales(self, rt):
        hits = []
        lock = threading.Lock()

        def body(lid):
            with lock:
                hits.append(lid)

        rt.run(lambda: rt.coforall_locales(body, locales=[1, 3]))
        assert sorted(hits) == [1, 3]

    def test_parent_clock_absorbs_slowest_child(self, rt):
        def main():
            def body(lid):
                # Unequal work: locale 3 does extra atomic ops.
                n = 100 if lid == 3 else 1
                c = rt.atomic_int(0, locale=lid)
                for _ in range(n):
                    c.read()

            before = current_context().clock.now
            rt.coforall_locales(body)
            return current_context().clock.now - before

        elapsed = rt.run(main)
        # Must cover at least locale 3's 100 NIC-local atomics.
        assert elapsed >= 100 * rt.config.costs.nic_atomic_local_latency

    def test_exception_propagates(self, rt):
        def body(lid):
            if lid == 2:
                raise KeyError("locale two")

        with pytest.raises(KeyError):
            rt.run(lambda: rt.coforall_locales(body))


class TestTimedAndDiagnostics:
    def test_timed_measures_virtual_not_wall(self, rt):
        import time

        def main():
            with rt.timed() as t:
                time.sleep(0.01)  # real time must not count
            return t.elapsed

        assert rt.run(main) == 0.0

    def test_timed_nests(self, rt):
        def main():
            a = rt.atomic_int(0, locale=1)
            with rt.timed() as outer:
                a.read()
                with rt.timed() as inner:
                    a.read()
            return outer.elapsed, inner.elapsed

        outer, inner = rt.run(main)
        assert outer > inner > 0

    def test_snapshot_shape(self, rt):
        def main():
            rt.atomic_int(0, locale=1).read()

        rt.run(main)
        s = snapshot(rt)
        assert len(s.nic_busy) == rt.num_locales
        assert len(s.heap_stats) == rt.num_locales
        assert s.comm_totals["amo"] == 1
        assert s.imbalance() >= 1.0 or s.imbalance() == 1.0


class TestPrivatizationRegistry:
    def test_register_and_resolve(self, rt):
        insts = [f"inst{i}" for i in range(rt.num_locales)]
        pid = rt.register_privatized(insts)

        def main():
            with rt.on(2):
                assert rt.privatized_instance(pid) == "inst2"
            return rt.privatized_instance(pid)

        assert rt.run(main) == "inst0"

    def test_register_requires_one_instance_per_locale(self, rt):
        with pytest.raises(LocaleError):
            rt.register_privatized(["only-one"])

    def test_resolution_is_communication_free(self, rt):
        pid = rt.register_privatized(list(range(rt.num_locales)))

        def main():
            rt.reset_measurements()
            with rt.timed() as t:
                for _ in range(100):
                    rt.privatized_instance(pid)
            return t.elapsed

        assert rt.run(main) == 0.0
        assert rt.network.diags.remote_ops() == 0

    def test_drop_privatized(self, rt):
        pid = rt.register_privatized(list(range(rt.num_locales)))
        rt.drop_privatized(pid)

        def main():
            with pytest.raises(TypeError):
                rt.privatized_instance(pid)

        rt.run(main)
