"""Tests for the virtual-time flight recorder (src/repro/obs).

Five layers, mirroring the subsystem's contract (docs/OBSERVABILITY.md):

* **recorder unit semantics** — detail parsing, the power-of-two age
  bucketing, and the ``(t, loc, seq)`` merge order;
* **zero-cost off** — the default installs no recorder anywhere, and
  every shipped baseline still verifies bit-identically under both
  engines with tracing off (tier-1 already covers the latter; here we
  assert the hook surfaces stay ``None``);
* **determinism** — the hard requirement: the merged event stream is
  bit-identical across repeated runs, worker-pool sizes {1, 2, 4, 8},
  and execution engines, at both detail levels;
* **non-interference** — ``--trace full`` leaves virtual results exactly
  equal to the shipped trace-off baselines, and the metrics registry /
  report plumbing (``extra.obs``) survives ``_jsonable`` round-trips;
* **policy facts** — the satellite: per-distance-class crossings and
  limbo-age facts reach ``EpochFacts``, where a ``threshold`` policy can
  read them (no new policy behaviour).
"""

from __future__ import annotations

import json
import math

import pytest

from repro.bench.scenarios import get_scenario, load_baselines, run_scenario
from repro.core import EpochManager
from repro.obs import (
    TRACE_DETAILS,
    MetricsRegistry,
    TraceRecorder,
    age_bucket,
    parse_trace,
    progress_suffix,
    to_chrome_trace,
    to_jsonl,
    write_trace,
)
from repro.policy import EpochFacts, ThresholdEpochPolicy
from repro.runtime import Runtime
from repro.runtime.config import RuntimeConfig

BASELINES = "benchmarks/scenario_baselines.json"

#: Small-but-real scenarios the end-to-end tests run (lowered via
#: ops_scale where full-detail streams would get large).
CHEAP = "reclaim-hotspot-ebr"
UPLINK = "topo-hier-agg-ebr-w4"


def _traced(name, *, detail="full", engine=None, pool=None, ops_scale=0.25,
            repeats=1):
    spec = get_scenario(name)
    overrides = {"trace": detail}
    if engine is not None:
        overrides["engine"] = engine
    if pool is not None:
        overrides["worker_pool_size"] = pool
    spec = spec.with_topology(**overrides)
    spec = spec.with_measure(ops_scale=ops_scale, repeats=repeats)
    return run_scenario(spec)


# ----------------------------------------------------------------------
# recorder unit semantics
# ----------------------------------------------------------------------
class TestRecorder:
    def test_parse_trace_normalizes(self):
        assert parse_trace(None) == "off"
        assert parse_trace("") == "off"
        assert parse_trace(" FULL ") == "full"
        assert parse_trace("spans") == "spans"
        with pytest.raises(ValueError) as exc:
            parse_trace("verbose")
        for name in TRACE_DETAILS:
            assert name in str(exc.value)

    def test_recorder_rejects_off(self):
        with pytest.raises(ValueError, match="spans.*full|full.*spans"):
            TraceRecorder(4, "off")

    def test_age_bucket_is_floor_log2(self):
        assert age_bucket(1.0) == 0
        assert age_bucket(2.0) == 1
        assert age_bucket(3.999) == 1
        assert age_bucket(0.5) == -1
        assert age_bucket(1e-6) == math.floor(math.log2(1e-6))
        # Non-positive ages clamp into the lowest bucket, below every
        # representable positive float's exponent.
        assert age_bucket(0.0) == -1075
        assert age_bucket(-1.0) == -1075
        assert age_bucket(5e-324) >= -1075

    def test_events_merge_by_time_locale_seq(self):
        tr = TraceRecorder(3, "spans")
        # Emit out of order across locales (no task context -> locale 0
        # for span(); drive _emit directly for the cross-locale case).
        tr._emit(2, 5.0, "span", {"name": "c", "t1": 6.0})
        tr._emit(0, 5.0, "span", {"name": "a", "t1": 6.0})
        tr._emit(1, 1.0, "span", {"name": "b", "t1": 2.0})
        tr._emit(0, 5.0, "span", {"name": "a2", "t1": 7.0})
        evs = tr.events()
        assert [e["name"] for e in evs] == ["b", "a", "a2", "c"]
        assert [e["seq"] for e in evs] == [0, 0, 1, 0]
        assert tr.event_count() == 4

    def test_unit_ids_are_stable_small_ints(self):
        tr = TraceRecorder(1, "full")
        a, b = object(), object()
        assert tr.unit_id(a) == 0
        assert tr.unit_id(b) == 1
        assert tr.unit_id(a) == 0


# ----------------------------------------------------------------------
# zero-cost off
# ----------------------------------------------------------------------
class TestTraceOff:
    def test_default_installs_no_recorder(self, rt):
        assert rt._tracer is None
        assert rt._full_tracer is None
        assert not rt._inline_tasks
        for nic in rt.network.nic:
            assert nic._tracer is None

    def test_config_validates_trace(self):
        cfg = RuntimeConfig(num_locales=2, trace="SPANS")
        assert cfg.trace == "spans"
        with pytest.raises(ValueError, match="trace detail"):
            RuntimeConfig(num_locales=2, trace="everything")

    def test_topology_spec_omits_off_trace(self):
        spec = get_scenario(CHEAP)
        assert "trace" not in spec.topology.as_dict()
        traced = spec.with_topology(trace="full")
        assert traced.topology.as_dict()["trace"] == "full"


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    @pytest.mark.parametrize("detail", ["spans", "full"])
    def test_repeats_replay_identical_streams(self, detail):
        # run_scenario itself raises if any repeat's stream differs.
        run = _traced(CHEAP, detail=detail, repeats=2)
        assert run.trace_events

    @pytest.mark.parametrize("detail", ["spans", "full"])
    def test_pool_size_invariance(self, detail):
        reference = _traced(CHEAP, detail=detail)
        for pool in (1, 2, 4, 8):
            run = _traced(CHEAP, detail=detail, pool=pool)
            assert run.result.elapsed == reference.result.elapsed
            assert run.trace_events == reference.trace_events

    @pytest.mark.parametrize("detail", ["spans", "full"])
    def test_cross_engine_stream_equality(self, detail):
        interp = _traced(UPLINK, detail=detail, engine="interpreted")
        compiled = _traced(UPLINK, detail=detail, engine="compiled")
        assert compiled.result.elapsed == interp.result.elapsed
        assert compiled.result.comm == interp.result.comm
        assert compiled.trace_events == interp.trace_events


# ----------------------------------------------------------------------
# non-interference + export
# ----------------------------------------------------------------------
class TestNonInterference:
    def test_full_trace_matches_shipped_baseline(self):
        """Tracing observes the machine; it must never change it."""
        base = load_baselines(BASELINES)[CHEAP]
        run = _traced(CHEAP, detail="full", ops_scale=1.0)
        assert run.result.elapsed == base["elapsed_virtual_s"]
        assert run.result.operations == base["operations"]
        assert run.result.comm == base["comm"]

    def test_extra_obs_jsonable_round_trip(self):
        run = _traced(UPLINK, detail="full")
        entry = run.report_entry()
        obs = entry["extra"]["obs"]
        # The whole entry must survive a JSON round trip unchanged.
        assert json.loads(json.dumps(entry)) == entry
        assert obs["detail"] == "full"
        assert obs["events"] == len(run.trace_events)
        assert obs["kinds"]["serve"] > 0
        assert obs["points"]  # per-ServicePoint timelines
        for rec in obs["points"].values():
            assert 0.0 <= rec["utilization"] <= 1.0
        # The uplink scenario batches class-3 crossings and recovers
        # exact limbo ages from retire/drain pairing.
        assert obs["dclass_crossings"]
        assert obs["batch_occupancy"]
        assert obs["limbo_age"]["count"] > 0
        assert obs["limbo_age"]["buckets"]

    def test_spans_detail_keeps_registry_light(self):
        run = _traced(CHEAP, detail="spans")
        reg = MetricsRegistry.from_events(run.trace_events, "spans")
        d = reg.as_dict()
        assert d["kinds"].get("serve", 0) == 0
        assert d["kinds"].get("op", 0) == 0
        assert d["spans"]["timed"]["count"] == 1
        assert d["spans"]["forall"]["count"] >= 1

    def test_chrome_trace_schema(self, tmp_path):
        run = _traced(UPLINK, detail="full")
        doc = to_chrome_trace(run.trace_events, label="t")
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["clock"] == "virtual"
        evs = doc["traceEvents"]
        assert evs
        names = set()
        for ev in evs:
            assert ev["ph"] in ("X", "C", "i", "M")
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "M":
                names.add(ev["args"]["name"])
                continue
            assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
        # One track per locale plus one per uplink ServicePoint.
        for l in range(run.spec.topology.locales):
            assert f"locale {l}" in names
        assert any("uplink" in n for n in names)
        # write_trace picks the format from the suffix.
        p_json = tmp_path / "t.json"
        p_jsonl = tmp_path / "t.jsonl"
        assert write_trace(str(p_json), run.trace_events, label="t") == "chrome"
        assert write_trace(str(p_jsonl), run.trace_events, label="t") == "jsonl"
        assert json.loads(p_json.read_text())["traceEvents"]
        lines = p_jsonl.read_text().splitlines()
        assert [json.loads(l) for l in lines] == run.trace_events
        assert to_jsonl(run.trace_events).splitlines() == lines

    def test_progress_suffix_renders_reclaimer_blocks(self):
        extra = {
            "em": {
                "retired": 10,
                "freed": 8,
                "peak_pending": 5,
                "scan_batches": 2,
                "uplink_crossings": 3,
                "advances": 1,
                "policy_deferrals": 4,
                "window": 2,
            }
        }
        s = progress_suffix(extra, reclaimer="ebr", policy="threshold:64")
        assert " [ebr: retired=10 freed=8 peak=5]" in s
        assert " [agg: batches=2 crossings=3]" in s
        assert " [policy: advances=1 deferrals=4 window=2]" in s
        # fixed policy omits the policy block; no stats -> no suffix.
        assert "policy" not in progress_suffix(
            extra, reclaimer="ebr", policy="fixed"
        )
        assert progress_suffix({}, reclaimer="ebr", policy="fixed") == ""


# ----------------------------------------------------------------------
# policy facts (the EpochFacts satellite)
# ----------------------------------------------------------------------
class _RecordingThreshold(ThresholdEpochPolicy):
    """A stock threshold policy that remembers the facts it decided on."""

    def __init__(self, n):
        super().__init__(n)
        self.seen = []

    def decide(self, facts):
        self.seen.append(facts)
        return super().decide(facts)


class TestEpochFacts:
    def test_facts_fields_default_and_round_trip(self):
        facts = EpochFacts(now=1.0, pending=(3, 4), last_pin=None)
        assert facts.crossings == ()
        assert facts.oldest_retire is None
        assert facts.oldest_age is None
        rich = EpochFacts(
            now=2.0,
            pending=(1,),
            last_pin=None,
            crossings=(0, 0, 0, 5),
            oldest_retire=0.5,
        )
        assert rich.oldest_age == 1.5
        d = rich.as_dict()
        assert d["crossings"] == [0, 0, 0, 5]
        assert d["oldest_retire"] == 0.5
        assert json.loads(json.dumps(d)) == d

    def test_threshold_policy_reads_crossings_and_ages(self):
        """End to end: uplink crossings and limbo ages reach the facts a
        stock threshold policy decides on — same decisions, richer view."""
        from repro.runtime.context import current_context

        cfg = RuntimeConfig(
            num_locales=8,
            topology="hier:2x2",
            aggregation=4,
            trace="full",  # installs age tracking without a policy ask
        )
        rt = Runtime(config=cfg)
        policy = _RecordingThreshold(1)  # pending >= 1 always advances

        def main():
            em = EpochManager(rt)
            em.policy = policy
            with em.register() as tok:
                t_pin = None
                for _round in range(2):
                    tok.pin()
                    if t_pin is None:
                        t_pin = current_context().clock.now
                    for lid in range(rt.num_locales):
                        tok.defer_delete(rt.new_obj(lid, locale=lid))
                    tok.unpin()
                    assert em.try_reclaim()
            em.destroy()
            return t_pin

        t_pin = rt.run(main)
        assert len(policy.seen) == 2, "the policy gate did not run twice"
        first, second = policy.seen
        # Limbo-age facts: the oldest outstanding retire is the very first
        # one (EBR frees two advances later, so it is still pending), and
        # it happened after the round-1 pin but before the decision.
        assert first.oldest_retire is not None
        assert t_pin < first.oldest_retire < first.now
        assert second.oldest_retire == first.oldest_retire
        assert second.oldest_age == second.now - second.oldest_retire
        assert second.oldest_age > 0.0
        assert sum(first.pending) == rt.num_locales
        # The first advance's domain-ordered scan and remote drains ride
        # the shared node uplinks, so the second decision sees per-class
        # crossing counts (the batched class is the last one).
        assert first.crossings == ()
        assert second.crossings and second.crossings[-1] > 0
        assert second.as_dict()["crossings"] == list(second.crossings)

    def test_policy_decisions_land_in_trace(self):
        run = _traced("policy-sweep-hier-threshold", detail="spans",
                      ops_scale=0.25)
        decisions = [e for e in run.trace_events if e["kind"] == "policy"]
        assert decisions, "no policy events in the stream"
        for ev in decisions:
            assert ev["policy"] == "threshold"
            assert ev["decision"] in ("advance", "defer")
            facts = ev["facts"]
            assert set(facts) >= {
                "now", "pending", "last_pin", "crossings", "oldest_retire"
            }
        reg = MetricsRegistry.from_events(run.trace_events, "spans")
        assert reg.policy["deferrals"] == sum(
            1 for e in decisions if e["decision"] == "defer"
        )


# ----------------------------------------------------------------------
# serve/serve_locked dedup regression
# ----------------------------------------------------------------------
class TestServeDedup:
    def test_serve_matches_serve_locked(self):
        """The lock-wrapper and the locked body must stay one recurrence."""
        from repro.runtime.clock import ServicePoint

        a = ServicePoint("a")
        b = ServicePoint("b")
        # Exercise all three recurrence branches: idle arrival (banks the
        # gap), bank-covered overlap, and genuine saturation.
        requests = [
            (0.0, 1e-6),
            (5e-6, 1e-6),
            (5.5e-6, 1e-6),
            (5.6e-6, 1e-5),
            (5.7e-6, 1e-6),
        ]
        for arrival, service in requests:
            fa = a.serve(arrival, service)
            with b._lock:
                fb = b.serve_locked(arrival, service)
            assert fa == fb
            assert a.idle_bank == b.idle_bank
            assert a.next_free == b.next_free
            assert a.busy_time == b.busy_time
        assert a.served == b.served == len(requests)
