"""Tests for the distributed InterlockedHashTable."""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.structures import InterlockedHashTable


@pytest.fixture
def em(rt):
    return EpochManager(rt)


@pytest.fixture
def table(rt, em):
    return InterlockedHashTable(rt, buckets=16, manager=em)


class TestMapSemantics:
    def test_put_get(self, rt, table):
        def main():
            assert table.put("a", 1)  # new key
            assert not table.put("a", 2)  # update
            assert table.get("a") == 2

        rt.run(main)

    def test_get_missing_returns_default(self, rt, table):
        def main():
            assert table.get("nope") is None
            assert table.get("nope", 42) == 42

        rt.run(main)

    def test_contains(self, rt, table):
        def main():
            table.put("k", None)  # None values are real values
            assert table.contains("k")
            assert not table.contains("other")

        rt.run(main)

    def test_remove(self, rt, table):
        def main():
            table.put("k", 1)
            assert table.remove("k")
            assert not table.remove("k")
            assert not table.contains("k")

        rt.run(main)

    def test_idempotent_put_publishes_nothing(self, rt, table):
        """put(k, same_value) short-circuits without a CAS."""

        def main():
            table.put("k", 7)
            before = sum(loc.heap.live_count for loc in rt.locales)
            table.put("k", 7)
            after = sum(loc.heap.live_count for loc in rt.locales)
            assert after == before

        rt.run(main)

    def test_update_read_modify_write(self, rt, table):
        def main():
            assert table.update("n", lambda v: v + 1, default=0) == 1
            assert table.update("n", lambda v: v + 1, default=0) == 2
            assert table.get("n") == 2

        rt.run(main)

    def test_many_keys_and_items(self, rt, table):
        def main():
            for i in range(100):
                table.put(f"k{i}", i)
            assert table.size() == 100
            assert dict(table.items()) == {f"k{i}": i for i in range(100)}

        rt.run(main)

    def test_heterogeneous_key_types(self, rt, table):
        def main():
            table.put(1, "int")
            table.put("1", "str")
            table.put((1, 2), "tuple")
            assert table.get(1) == "int"
            assert table.get("1") == "str"
            assert table.get((1, 2)) == "tuple"

        rt.run(main)

    def test_bucket_count_rounds_to_power_of_two(self, rt, em):
        t = InterlockedHashTable(rt, buckets=20, manager=em)
        assert t.bucket_count == 32

    def test_buckets_distributed_cyclically(self, rt, em):
        t = InterlockedHashTable(rt, buckets=16, manager=em)
        homes = {h.home for h in t._headers}
        assert homes == set(range(rt.num_locales))

    def test_owner_locale_is_stable(self, rt, table):
        assert table.owner_locale("key") == table.owner_locale("key")


class TestResizeAndDestroy:
    def test_resize_preserves_contents(self, rt, em):
        def main():
            t = InterlockedHashTable(rt, buckets=4, manager=em)
            for i in range(50):
                t.put(i, i * i)
            t.resize(64)
            assert t.bucket_count == 64
            for i in range(50):
                assert t.get(i) == i * i
            assert t.size() == 50

        rt.run(main)

    def test_destroy_frees_snapshots(self, rt):
        def main():
            t = InterlockedHashTable(rt, buckets=8)
            tok = t.manager.register()
            tok.pin()
            for i in range(20):
                # With a token, replaced snapshots retire via the manager;
                # destroy() then drains both the headers and the manager.
                t.put(i, i, token=tok)
            tok.unpin()
            tok.unregister()
            before = sum(loc.heap.live_count for loc in rt.locales)
            assert before > 0
            t.destroy()
            after = sum(loc.heap.live_count for loc in rt.locales)
            assert after == 0

        rt.run(main)


class TestReclamation:
    def test_old_snapshots_retired_through_token(self, rt, em, table):
        def main():
            tok = em.register()
            tok.pin()
            table.put("k", 1, token=tok)
            table.put("k", 2, token=tok)  # retires the first snapshot
            tok.unpin()
            assert em.pending_count() >= 1
            em.clear()
            assert table.get("k") == 2

        rt.run(main)

    def test_without_token_old_snapshots_leak_safely(self, rt, table):
        def main():
            table.put("k", 1)
            table.put("k", 2)
            assert table.get("k") == 2  # correct, just leaky

        rt.run(main)


class TestConcurrent:
    def test_concurrent_disjoint_puts(self, rt, em, table):
        def main():
            def body(i, tok):
                tok.pin()
                table.put(i, i, token=tok)
                tok.unpin()

            rt.forall(range(300), body, task_init=em.register)
            assert table.size() == 300
            for i in range(300):
                assert table.get(i) == i
            em.clear()

        rt.run(main)

    def test_concurrent_counter_updates_are_linearizable(self, rt, em, table):
        """The RCU update loop must not lose increments."""

        def main():
            def body(i, tok):
                tok.pin()
                table.update("counter", lambda v: v + 1, default=0, token=tok)
                tok.unpin()

            rt.forall(range(256), body, task_init=em.register)
            em.clear()
            return table.get("counter")

        assert rt.run(main) == 256

    def test_concurrent_puts_and_removes(self, rt, em, table):
        def main():
            for i in range(100):
                table.put(i, "seed")

            def body(i, tok):
                tok.pin()
                if i % 2 == 0:
                    table.remove(i % 100, token=tok)
                else:
                    table.put(1000 + i, i, token=tok)
                tok.unpin()

            rt.forall(range(200), body, task_init=em.register)
            for k in range(0, 100, 2):
                assert not table.contains(k)
            for k in range(1, 100, 2):
                assert table.contains(k)
            em.clear()

        rt.run(main)

    def test_plain_cas_mode_with_ebr_is_correct(self, rt, em):
        """aba_protection=False + pinned tokens: the RDMA fast path."""

        def main():
            t = InterlockedHashTable(
                rt, buckets=8, manager=em, aba_protection=False
            )

            def body(i, tok):
                tok.pin()
                t.update("hot", lambda v: v + 1, default=0, token=tok)
                tok.unpin()
                if i % 64 == 0:
                    tok.try_reclaim()

            rt.forall(range(256), body, task_init=em.register)
            em.clear()
            return t.get("hot")

        assert rt.run(main) == 256

    def test_wait_free_reads_under_write_storm(self, rt, em, table):
        """Readers always see a consistent snapshot while writers churn."""

        def main():
            table.put("k", 0)
            seen_bad = []
            lock = threading.Lock()

            def body(i, tok):
                tok.pin()
                if i % 4 == 0:
                    table.put("k", i, token=tok)
                else:
                    v = table.get("k")
                    if not (isinstance(v, int) and 0 <= v < 400):
                        with lock:
                            seen_bad.append(v)
                tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            assert not seen_bad
            em.clear()

        rt.run(main)
