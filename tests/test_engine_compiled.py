"""The compiled-engine bit-identity gate (docs/ENGINE.md).

The ``engine = "compiled"`` axis must never change virtual results: for
every workload — whether it lowers to the batch executor or silently
falls back to the interpreter — virtual time, comm totals, and reclaim
stats must be bit-identical to an interpreted run, across the scenario
registry, all four reclaimers, and worker-pool sizes {1, 2, 4, 8}.

Alongside the end-to-end gate, the column lowerings of
:mod:`repro.engine.opstream` are pinned against the RNG streams the
interpreted task bodies consume — the "same bit stream" precondition the
executor's replay correctness rests on.
"""

import random

import pytest

from repro.bench import scenarios
from repro.bench.workloads import (
    run_atomic_hotspot,
    run_atomic_mix,
    run_epoch_mixed,
)
from repro.engine.opstream import fast_randbelow, mix_column, zipf_column
from repro.runtime.config import ENGINES, RECLAIMER_SCHEMES, RuntimeConfig
from repro.runtime.runtime import Runtime


def _fingerprint(result):
    """Everything the bit-identity contract pins for one workload run."""
    return (
        result.elapsed,
        result.operations,
        tuple(sorted(result.comm.items())),
        scenarios._jsonable(result.extra),
    )


def _run_scenario(name, engine, **topo_overrides):
    spec = scenarios.get_scenario(name).with_topology(
        engine=engine, **topo_overrides
    )
    spec = spec.with_measure(ops_scale=0.25)
    return _fingerprint(scenarios.run_scenario(spec).result)


# A slice of the registry covering every lowering path: the compiled
# atomic mix and hotspot (flat / hier / dragonfly / AM transport), the
# compiled EBR epoch rounds (open aggregation windows, ragged shapes),
# the hp fallback inside an otherwise-compilable epoch_mixed, and
# workload kinds with no lowering at all (churn, multi_structure).
SCENARIO_SAMPLE = [
    "paper-atomic-mix",
    "hotspot-zipf",
    "hotspot-zipf-am",
    "topo-dragonfly-hotspot",
    "write-heavy-reclaim",
    "topo-hier-agg-ebr-w16",
    "topo-hier-ragged",
    "topo-dragonfly-agg-ebr-w16",
    "topo-dragonfly-agg-hp-w16",
    "queue-churn",
    "multi-structure",
]


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name", SCENARIO_SAMPLE)
    def test_compiled_matches_interpreted(self, name):
        interpreted = _run_scenario(name, "interpreted")
        compiled = _run_scenario(name, "compiled")
        assert compiled == interpreted

    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    def test_all_reclaimers(self, scheme):
        # epoch_mixed under every scheme: EBR takes the batch replay,
        # the scan-based schemes must fall back without drift.
        name = f"reclaim-hotspot-{scheme}"
        interpreted = _run_scenario(name, "interpreted")
        compiled = _run_scenario(name, "compiled")
        assert compiled == interpreted

    @pytest.mark.parametrize("pool", [1, 2, 4, 8])
    @pytest.mark.parametrize(
        "name", ["paper-atomic-mix", "topo-hier-agg-ebr-w16"]
    )
    def test_pool_sizes(self, name, pool):
        # The compiled replay is one legal (pool-size-1) schedule; it
        # must agree with interpreted runs at every pool size, and a
        # compiled run's own pool size must be irrelevant.
        interpreted = _run_scenario(name, "interpreted", worker_pool_size=pool)
        compiled = _run_scenario(name, "compiled", worker_pool_size=pool)
        assert compiled == interpreted


class TestWorkloadEquivalence:
    """Direct workload-level equivalence on shapes the registry lacks."""

    @staticmethod
    def _results(fn, kwargs, **cfg):
        out = []
        for engine in ENGINES:
            rt = Runtime(config=RuntimeConfig(engine=engine, **cfg))
            out.append(_fingerprint(fn(rt, **kwargs)))
        return out

    @pytest.mark.parametrize("network", ["ugni", "none"])
    @pytest.mark.parametrize("nloc", [1, 3])
    def test_mix_small_machines(self, network, nloc):
        a, b = self._results(
            run_atomic_mix,
            dict(kind="atomic_int", ops_per_task=48, tasks_per_locale=2),
            num_locales=nloc,
            network=network,
            tasks_per_locale=2,
        )
        assert a == b

    def test_hotspot_skewed(self):
        a, b = self._results(
            run_atomic_hotspot,
            dict(
                cell="atomic_int",
                ops_per_task=64,
                tasks_per_locale=2,
                num_cells=8,
                zipf_exponent=2.0,
            ),
            num_locales=4,
            tasks_per_locale=2,
        )
        assert a == b

    def test_epoch_mixed_multi_round_reclaim(self):
        a, b = self._results(
            run_epoch_mixed,
            dict(
                ops_per_task=48,
                tasks_per_locale=1,
                write_percent=75,
                remote_percent=100,
                rounds=4,
            ),
            num_locales=4,
            tasks_per_locale=1,
        )
        assert a == b

    def test_epoch_mixed_endonly_multitask(self):
        a, b = self._results(
            run_epoch_mixed,
            dict(
                ops_per_task=48,
                tasks_per_locale=3,
                write_percent=25,
                remote_percent=0,
                rounds=2,
                reclaim_between_rounds=False,
            ),
            num_locales=4,
            tasks_per_locale=3,
        )
        assert a == b

    def test_object_mix_falls_back(self):
        # AtomicObject variants have no lowering; the compiled engine
        # must produce identical results by running the interpreter.
        a, b = self._results(
            run_atomic_mix,
            dict(kind="atomic_object", ops_per_task=32, tasks_per_locale=1),
            num_locales=2,
            tasks_per_locale=1,
        )
        assert a == b


class TestColumnLowerings:
    """The columns must consume the interpreted bodies' exact RNG streams."""

    def test_mix_column_pins_body_int_stream(self):
        seed, ncells, n_ops = 0xC0FFEE ^ 7, 24, 100
        rng = random.Random()
        rng.seed(seed)
        column = mix_column(rng, n_ops, ncells)
        # The interpreted body draws rng._randbelow(ncells) once per op.
        ref = random.Random()
        ref.seed(seed)
        assert column == [ref._randbelow(ncells) for _ in range(n_ops)]

    def test_zipf_column_pins_body_stream(self):
        import bisect

        seed, n_ops = 12345, 64
        weights = [1.0 / ((rank + 1) ** 1.2) for rank in range(16)]
        cdf, acc = [], 0.0
        for w in weights:
            acc += w
            cdf.append(acc)
        rng = random.Random()
        rng.seed(seed)
        column = zipf_column(rng, n_ops, cdf, cdf[-1])
        ref = random.Random()
        ref.seed(seed)
        assert column == [
            bisect.bisect_left(cdf, ref.random() * cdf[-1])
            for _ in range(n_ops)
        ]

    def test_fast_randbelow_matches_randrange_stream(self):
        # The dedup'd helper must consume randrange's exact bit stream.
        a = random.Random()
        a.seed(99)
        b = random.Random()
        b.seed(99)
        draw = fast_randbelow(a)
        assert [draw(17) for _ in range(200)] == [
            b.randrange(17) for _ in range(200)
        ]


class TestEngineAxis:
    def test_runtime_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RuntimeConfig(engine="vectorized")

    def test_topology_spec_rejects_unknown_engine(self):
        with pytest.raises(scenarios.ScenarioError, match="engine"):
            scenarios.TopologySpec(engine="vectorized")

    def test_engine_threads_through_topology_spec(self):
        topo = scenarios.TopologySpec(engine="compiled")
        assert topo.runtime_config().engine == "compiled"
        assert topo.as_dict()["engine"] == "compiled"
        # The default engine is omitted: it is not part of the simulated
        # machine, so baselines never record it.
        assert "engine" not in scenarios.TopologySpec().as_dict()

    def test_baseline_entry_never_records_engine(self):
        spec = scenarios.get_scenario("paper-atomic-mix").with_topology(
            engine="compiled"
        )
        spec = spec.with_measure(ops_scale=0.25)
        entry = scenarios.baseline_entry(scenarios.run_scenario(spec))
        assert "engine" not in entry
