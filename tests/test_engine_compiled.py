"""The compiled-engine bit-identity gate (docs/ENGINE.md).

The ``engine = "compiled"`` axis must never change virtual results: for
every workload — whether it lowers to the columnar replay, the serial
tier, or falls back to the interpreter — virtual time, comm totals,
reclaim stats and trace spans must be bit-identical to an interpreted
run, across the scenario registry, all four reclaimers, and worker-pool
sizes {1, 2, 4, 8}.

Alongside the end-to-end gate, the column lowerings of
:mod:`repro.engine.opstream` are pinned against the RNG streams the
interpreted task bodies consume — the "same bit stream" precondition the
executor's replay correctness rests on — and the compilation cache's
hit path is pinned against its cold path.
"""

import random

import pytest

from repro.bench import scenarios
from repro.bench.workloads import (
    run_atomic_hotspot,
    run_atomic_mix,
    run_epoch_mixed,
    run_epoch_workload,
    run_multi_structure,
    run_producer_consumer,
)
from repro.engine import COLUMN_CACHE, compiled_plan, engine_summary
from repro.engine.opstream import fast_randbelow, mix_column, zipf_column
from repro.errors import CompiledFallbackError
from repro.runtime.config import RECLAIMER_SCHEMES, RuntimeConfig
from repro.runtime.runtime import Runtime


def _fingerprint(result):
    """Everything the bit-identity contract pins for one workload run."""
    return (
        result.elapsed,
        result.operations,
        tuple(sorted(result.comm.items())),
        scenarios._jsonable(result.extra),
    )


def _run_scenario(name, engine, **topo_overrides):
    spec = scenarios.get_scenario(name).with_topology(
        engine=engine, **topo_overrides
    )
    spec = spec.with_measure(ops_scale=0.25)
    return _fingerprint(scenarios.run_scenario(spec).result)


def _run_workload(fn, kwargs, engine, **cfg):
    """One workload run; the fingerprint includes trace events if any."""
    rt = Runtime(config=RuntimeConfig(engine=engine, **cfg))
    fp = _fingerprint(fn(rt, **kwargs))
    events = rt._tracer.events() if rt._tracer is not None else None
    return fp + (events,)


# A slice of the registry covering every lowering path: the compiled
# atomic mix and hotspot (flat / hier / dragonfly / AM transport), the
# compiled epoch rounds under EBR and HP (open aggregation windows,
# ragged shapes), the serial tier (churn, multi_structure), and the
# multi-task token bank.
SCENARIO_SAMPLE = [
    "paper-atomic-mix",
    "hotspot-zipf",
    "hotspot-zipf-am",
    "topo-dragonfly-hotspot",
    "write-heavy-reclaim",
    "topo-hier-agg-ebr-w16",
    "topo-hier-ragged",
    "topo-dragonfly-agg-ebr-w16",
    "topo-dragonfly-agg-hp-w16",
    "queue-churn",
    "multi-structure",
]


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name", SCENARIO_SAMPLE)
    def test_compiled_matches_interpreted(self, name):
        interpreted = _run_scenario(name, "interpreted")
        compiled = _run_scenario(name, "compiled")
        assert compiled == interpreted

    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    def test_all_reclaimers(self, scheme):
        # epoch_mixed under every scheme: EBR and the scan-based schemes
        # all take the compiled replay now (hp/qsbr/ibr via the guard
        # lowering in run_guard_epoch_phase).
        name = f"reclaim-hotspot-{scheme}"
        interpreted = _run_scenario(name, "interpreted")
        compiled = _run_scenario(name, "compiled")
        assert compiled == interpreted

    @pytest.mark.parametrize("pool", [1, 2, 4, 8])
    @pytest.mark.parametrize(
        "name", ["paper-atomic-mix", "topo-hier-agg-ebr-w16"]
    )
    def test_pool_sizes(self, name, pool):
        # The compiled replay is one legal (pool-size-1) schedule; it
        # must agree with interpreted runs at every pool size, and a
        # compiled run's own pool size must be irrelevant.
        interpreted = _run_scenario(name, "interpreted", worker_pool_size=pool)
        compiled = _run_scenario(name, "compiled", worker_pool_size=pool)
        assert compiled == interpreted


class TestReclaimerMatrix:
    """Bit-identity pins for the fig4-7 epoch lowering and the guard
    epoch rounds: every reclaimer x pool size x trace detail."""

    @pytest.mark.parametrize("trace", ["off", "spans"])
    @pytest.mark.parametrize("pool", [1, 2, 4, 8])
    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    def test_epoch_workload(self, scheme, pool, trace):
        kwargs = dict(ops_per_task=24, remote_percent=50, delete=True)
        cfg = dict(
            num_locales=4,
            reclaimer=scheme,
            worker_pool_size=pool,
            trace=trace,
        )
        a = _run_workload(run_epoch_workload, kwargs, "interpreted", **cfg)
        b = _run_workload(run_epoch_workload, kwargs, "compiled", **cfg)
        assert a == b

    @pytest.mark.parametrize("trace", ["off", "spans"])
    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    def test_epoch_mixed_guard_rounds(self, scheme, trace):
        kwargs = dict(
            ops_per_task=48, write_percent=75, remote_percent=100, rounds=4
        )
        cfg = dict(num_locales=4, reclaimer=scheme, trace=trace)
        a = _run_workload(run_epoch_mixed, kwargs, "interpreted", **cfg)
        b = _run_workload(run_epoch_mixed, kwargs, "compiled", **cfg)
        assert a == b

    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    def test_epoch_readonly(self, scheme):
        # Figure 7's pin/unpin-only loop (delete=False).
        kwargs = dict(ops_per_task=24, remote_percent=0, delete=False)
        cfg = dict(num_locales=4, reclaimer=scheme)
        a = _run_workload(run_epoch_workload, kwargs, "interpreted", **cfg)
        b = _run_workload(run_epoch_workload, kwargs, "compiled", **cfg)
        assert a == b

    def test_hp_threshold_scans_fire_mid_phase(self):
        # >= scan_threshold retirements per guard: the value-dependent
        # hazard scan runs for real inside the replay, on the task clock.
        kwargs = dict(ops_per_task=200, remote_percent=50, delete=True)
        cfg = dict(num_locales=4, reclaimer="hp")
        a = _run_workload(run_epoch_workload, kwargs, "interpreted", **cfg)
        b = _run_workload(run_epoch_workload, kwargs, "compiled", **cfg)
        assert a == b
        # The scans actually fired (800 retirements, threshold 128).
        assert a[3]["em"]["scans"] > 0

    @pytest.mark.parametrize("scheme", RECLAIMER_SCHEMES)
    @pytest.mark.parametrize("structure", ["queue", "stack"])
    def test_churn_serial_tier(self, structure, scheme):
        kwargs = dict(structure=structure, items_per_task=24, rounds=2)
        cfg = dict(num_locales=4, reclaimer=scheme)
        a = _run_workload(run_producer_consumer, kwargs, "interpreted", **cfg)
        b = _run_workload(run_producer_consumer, kwargs, "compiled", **cfg)
        assert a == b

    def test_multi_structure_serial_tier(self):
        kwargs = dict(ops_per_slot=24)
        cfg = dict(num_locales=4)
        a = _run_workload(run_multi_structure, kwargs, "interpreted", **cfg)
        b = _run_workload(run_multi_structure, kwargs, "compiled", **cfg)
        assert a == b


class TestWorkloadEquivalence:
    """Direct workload-level equivalence on shapes the registry lacks."""

    @staticmethod
    def _results(fn, kwargs, **cfg):
        return [
            _run_workload(fn, kwargs, engine, **cfg)
            for engine in ("interpreted", "compiled")
        ]

    @pytest.mark.parametrize("network", ["ugni", "none"])
    @pytest.mark.parametrize("nloc", [1, 3])
    def test_mix_small_machines(self, network, nloc):
        a, b = self._results(
            run_atomic_mix,
            dict(kind="atomic_int", ops_per_task=48, tasks_per_locale=2),
            num_locales=nloc,
            network=network,
            tasks_per_locale=2,
        )
        assert a == b

    def test_hotspot_skewed(self):
        a, b = self._results(
            run_atomic_hotspot,
            dict(
                cell="atomic_int",
                ops_per_task=64,
                tasks_per_locale=2,
                num_cells=8,
                zipf_exponent=2.0,
            ),
            num_locales=4,
            tasks_per_locale=2,
        )
        assert a == b

    def test_epoch_mixed_multi_round_reclaim(self):
        a, b = self._results(
            run_epoch_mixed,
            dict(
                ops_per_task=48,
                tasks_per_locale=1,
                write_percent=75,
                remote_percent=100,
                rounds=4,
            ),
            num_locales=4,
            tasks_per_locale=1,
        )
        assert a == b

    def test_epoch_mixed_endonly_multitask(self):
        a, b = self._results(
            run_epoch_mixed,
            dict(
                ops_per_task=48,
                tasks_per_locale=3,
                write_percent=25,
                remote_percent=0,
                rounds=2,
                reclaim_between_rounds=False,
            ),
            num_locales=4,
            tasks_per_locale=3,
        )
        assert a == b

    @pytest.mark.parametrize("kind", ["atomic_object", "atomic_object_aba"])
    def test_object_mix_lowers(self, kind):
        # The AtomicObject variants lower now: the (1, 1, 2, 1) op-cycle
        # charges on the narrow (plain) or wide (ABA) route row.
        tier, _ = compiled_plan("atomic_mix")
        assert tier == "columnar"
        a, b = self._results(
            run_atomic_mix,
            dict(kind=kind, ops_per_task=32, tasks_per_locale=1),
            num_locales=2,
            tasks_per_locale=1,
        )
        assert a == b

    def test_object_hotspot_lowers(self):
        a, b = self._results(
            run_atomic_hotspot,
            dict(cell="atomic_object", ops_per_task=32, num_cells=8),
            num_locales=2,
        )
        assert a == b


class TestCompilationCache:
    """Cold-vs-hit paths of the cross-run column cache."""

    def test_hit_path_is_bit_identical_to_cold(self):
        kwargs = dict(kind="atomic_int", ops_per_task=48, tasks_per_locale=2)
        cfg = dict(num_locales=2, tasks_per_locale=2)
        COLUMN_CACHE.clear()
        cold = _run_workload(run_atomic_mix, kwargs, "compiled", **cfg)
        hits0, misses0, entries0 = COLUMN_CACHE.stats()
        assert misses0 >= 1 and entries0 >= 1
        warm = _run_workload(run_atomic_mix, kwargs, "compiled", **cfg)
        hits1, misses1, _ = COLUMN_CACHE.stats()
        assert hits1 > hits0  # the repeat run reused the lowered columns
        assert misses1 == misses0
        assert warm == cold

    def test_distinct_shapes_get_distinct_entries(self):
        COLUMN_CACHE.clear()
        cfg = dict(num_locales=2)
        _run_workload(
            run_atomic_mix, dict(kind="atomic_int", ops_per_task=32),
            "compiled", **cfg
        )
        _, misses_a, _ = COLUMN_CACHE.stats()
        _run_workload(
            run_atomic_mix, dict(kind="atomic_int", ops_per_task=64),
            "compiled", **cfg
        )
        _, misses_b, _ = COLUMN_CACHE.stats()
        assert misses_b > misses_a  # different shape, different key

    def test_columns_shared_across_cell_kinds(self):
        # The mix draw stream is kind-independent: the object variant
        # reuses the integer variant's columns.
        COLUMN_CACHE.clear()
        cfg = dict(num_locales=2)
        _run_workload(
            run_atomic_mix, dict(kind="atomic_int", ops_per_task=32),
            "compiled", **cfg
        )
        hits0, misses0, _ = COLUMN_CACHE.stats()
        _run_workload(
            run_atomic_mix, dict(kind="atomic_object", ops_per_task=32),
            "compiled", **cfg
        )
        hits1, misses1, _ = COLUMN_CACHE.stats()
        assert misses1 == misses0
        assert hits1 > hits0

    def test_scenario_repeats_share_columns(self):
        COLUMN_CACHE.clear()
        spec = scenarios.get_scenario("paper-atomic-mix").with_topology(
            engine="compiled"
        )
        spec = spec.with_measure(ops_scale=0.25, repeats=3)
        scenarios.run_scenario(spec)
        hits, misses, _ = COLUMN_CACHE.stats()
        assert misses >= 1
        assert hits >= misses  # repeats 2 and 3 hit what repeat 1 built


class TestStrictMode:
    """``compiled-strict``: any interpreter fallback is an error."""

    def test_strict_passes_on_lowered_shape(self):
        kwargs = dict(ops_per_task=24, remote_percent=50, delete=True)
        cfg = dict(num_locales=4, reclaimer="qsbr")
        a = _run_workload(run_epoch_workload, kwargs, "interpreted", **cfg)
        b = _run_workload(run_epoch_workload, kwargs, "compiled-strict", **cfg)
        assert a == b

    def test_strict_passes_on_serial_tier(self):
        kwargs = dict(structure="queue", items_per_task=16, rounds=2)
        cfg = dict(num_locales=2)
        a = _run_workload(run_producer_consumer, kwargs, "interpreted", **cfg)
        b = _run_workload(
            run_producer_consumer, kwargs, "compiled-strict", **cfg
        )
        assert a == b

    def test_strict_raises_on_fallback_shape(self):
        # Mid-phase tryReclaim elections are schedule-scoped: no lowering.
        rt = Runtime(
            config=RuntimeConfig(engine="compiled-strict", num_locales=2)
        )
        with pytest.raises(CompiledFallbackError, match="fell back"):
            run_epoch_workload(rt, ops_per_task=16, reclaim_every=8)

    def test_strict_raises_under_full_tracing(self):
        rt = Runtime(
            config=RuntimeConfig(
                engine="compiled-strict", num_locales=2, trace="full"
            )
        )
        with pytest.raises(CompiledFallbackError, match="trace=full"):
            run_atomic_mix(rt, kind="atomic_int", ops_per_task=16)

    def test_plain_compiled_still_falls_back_silently(self):
        # The reclaim_every shape is the one place results ARE allowed to
        # vary between runs (mid-phase tryReclaim elections follow the
        # real schedule — the documented reason it cannot lower), so this
        # asserts the fallback contract, not bit-equality: plain
        # ``compiled`` runs the shape without raising and records the
        # fallback in the engine log.
        rt = Runtime(config=RuntimeConfig(engine="compiled", num_locales=2))
        try:
            run_epoch_workload(rt, ops_per_task=16, reclaim_every=8)
            summary = engine_summary(rt)
        finally:
            rt.close()
        assert summary["configured"] == "compiled"
        assert summary["effective"] == "interpreted"
        assert summary["fallbacks"] == [
            {
                "workload": "epoch",
                "reason": "mid-phase tryReclaim elections are schedule-scoped",
            }
        ]


class TestEngineReporting:
    """The effective-engine record and the computed coverage column."""

    def test_compiled_run_reports_effective_engine(self):
        spec = scenarios.get_scenario("queue-churn").with_topology(
            engine="compiled"
        )
        spec = spec.with_measure(ops_scale=0.25)
        run = scenarios.run_scenario(spec)
        assert run.engine is not None
        assert run.engine["configured"] == "compiled"
        assert run.engine["effective"] == "compiled"
        assert run.engine["phases"].get("serial", 0) > 0
        assert "fallbacks" not in run.engine
        assert run.engine == run.report_entry()["engine"]
        # The effective-engine record must never leak into extra: extra
        # is part of the bit-identity fingerprint.
        assert "engine" not in run.result.extra

    def test_interpreted_run_reports_interpreted(self):
        spec = scenarios.get_scenario("queue-churn").with_measure(
            ops_scale=0.25
        )
        run = scenarios.run_scenario(spec)
        assert run.engine == {
            "configured": "interpreted",
            "effective": "interpreted",
        }

    def test_fallback_phases_are_recorded(self):
        rt = Runtime(config=RuntimeConfig(engine="compiled", num_locales=2))
        run_epoch_workload(rt, ops_per_task=16, reclaim_every=8)
        summary = engine_summary(rt)
        assert summary["effective"] == "interpreted"
        assert summary["phases"] == {"interpreted": 1}
        assert summary["fallbacks"] == [
            {
                "workload": "epoch",
                "reason": (
                    "mid-phase tryReclaim elections are schedule-scoped"
                ),
            }
        ]

    def test_compiled_coverage_is_computed(self):
        cov = {
            name: scenarios.compiled_coverage(scenarios.get_scenario(name))
            for name in scenarios.scenario_names()
        }
        assert cov["paper-atomic-mix"] == "columnar"
        assert cov["paper-reclaim-endonly"] == "columnar"
        assert cov["queue-churn"] == "serial"
        assert cov["multi-structure"] == "serial"
        # Pin-time-tracking policies need the serial tier (columnar
        # replay records no per-pin facts).
        assert cov["policy-sweep-hier-grace"] == "serial"
        assert set(cov.values()) <= {"columnar", "serial", "interpreted"}


class TestColumnLowerings:
    """The columns must consume the interpreted bodies' exact RNG streams."""

    def test_mix_column_pins_body_int_stream(self):
        seed, ncells, n_ops = 0xC0FFEE ^ 7, 24, 100
        rng = random.Random()
        rng.seed(seed)
        column = mix_column(rng, n_ops, ncells)
        # The interpreted body draws rng._randbelow(ncells) once per op.
        ref = random.Random()
        ref.seed(seed)
        assert column == [ref._randbelow(ncells) for _ in range(n_ops)]

    def test_zipf_column_pins_body_stream(self):
        import bisect

        seed, n_ops = 12345, 64
        weights = [1.0 / ((rank + 1) ** 1.2) for rank in range(16)]
        cdf, acc = [], 0.0
        for w in weights:
            acc += w
            cdf.append(acc)
        rng = random.Random()
        rng.seed(seed)
        column = zipf_column(rng, n_ops, cdf, cdf[-1])
        ref = random.Random()
        ref.seed(seed)
        assert column == [
            bisect.bisect_left(cdf, ref.random() * cdf[-1])
            for _ in range(n_ops)
        ]

    def test_fast_randbelow_matches_randrange_stream(self):
        # The dedup'd helper must consume randrange's exact bit stream.
        a = random.Random()
        a.seed(99)
        b = random.Random()
        b.seed(99)
        draw = fast_randbelow(a)
        assert [draw(17) for _ in range(200)] == [
            b.randrange(17) for _ in range(200)
        ]


class TestEngineAxis:
    def test_runtime_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="unknown engine"):
            RuntimeConfig(engine="vectorized")

    def test_runtime_config_accepts_strict(self):
        assert RuntimeConfig(engine="compiled-strict").engine == (
            "compiled-strict"
        )

    def test_topology_spec_rejects_unknown_engine(self):
        with pytest.raises(scenarios.ScenarioError, match="engine"):
            scenarios.TopologySpec(engine="vectorized")

    def test_engine_threads_through_topology_spec(self):
        topo = scenarios.TopologySpec(engine="compiled")
        assert topo.runtime_config().engine == "compiled"
        assert topo.as_dict()["engine"] == "compiled"
        # The default engine is omitted: it is not part of the simulated
        # machine, so baselines never record it.
        assert "engine" not in scenarios.TopologySpec().as_dict()

    def test_baseline_entry_never_records_engine(self):
        spec = scenarios.get_scenario("paper-atomic-mix").with_topology(
            engine="compiled"
        )
        spec = spec.with_measure(ops_scale=0.25)
        entry = scenarios.baseline_entry(scenarios.run_scenario(spec))
        assert "engine" not in entry
