"""Tests for the distributed EpochManager: tokens, epochs, reclamation."""

from __future__ import annotations


import pytest

from repro.core import EpochManager
from repro.errors import EpochManagerError, TokenStateError
from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


class TestTokenLifecycle:
    def test_register_pin_unpin_unregister(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            assert tok.is_registered
            assert not tok.is_pinned
            tok.pin()
            assert tok.is_pinned
            tok.unpin()
            assert not tok.is_pinned
            tok.unregister()
            assert not tok.is_registered

        rt.run(main)

    def test_tokens_are_recycled_through_the_free_list(self, rt):
        def main():
            em = EpochManager(rt)
            tok1 = em.register()
            tid = tok1.token_id
            tok1.unregister()
            tok2 = em.register()
            assert tok2 is tok1  # recycled, not re-allocated
            assert tok2.token_id == tid
            assert tok2.is_registered

        rt.run(main)

    def test_unregister_is_idempotent(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.unregister()
            tok.unregister()  # second call is a no-op
            # And the token is on the free list exactly once:
            t2 = em.register()
            t3 = em.register()
            assert t2 is tok
            assert t3 is not tok

        rt.run(main)

    def test_using_unregistered_token_raises(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.unregister()
            with pytest.raises(TokenStateError):
                tok.pin()

        rt.run(main)

    def test_defer_requires_pin(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            addr = rt.new_obj("x")
            with pytest.raises(TokenStateError):
                tok.defer_delete(addr)
            tok.pin()
            tok.defer_delete(addr)  # fine now
            tok.unpin()

        rt.run(main)

    def test_token_is_locale_bound(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()  # registered on locale 0
            with rt.on(1):
                with pytest.raises(TokenStateError):
                    tok.pin()

        rt.run(main)

    def test_context_manager_unregisters(self, rt):
        def main():
            em = EpochManager(rt)
            with em.register() as tok:
                tok.pin()
                tok.unpin()
            assert not tok.is_registered

        rt.run(main)

    def test_unregister_unpins(self, rt):
        """An unregistered token must never block epoch advancement."""

        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()
            tok.unregister()
            assert tok.local_epoch.peek() == 0
            # The manager can advance freely now.
            assert em.try_reclaim()

        rt.run(main)


class TestEpochAdvancement:
    def test_initial_epoch_is_one(self, rt):
        em = EpochManager(rt)
        assert em.current_epoch() == 1

    def test_epoch_cycles_1_2_3(self, rt):
        def main():
            em = EpochManager(rt)
            seen = [em.current_epoch()]
            for _ in range(6):
                assert em.try_reclaim()
                seen.append(em.current_epoch())
            assert seen == [1, 2, 3, 1, 2, 3, 1]

        rt.run(main)

    def test_pinned_token_in_current_epoch_allows_advance(self, rt):
        """A token pinned in the *current* epoch does not veto (Fig 1)."""

        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()  # pinned at epoch 1 == current
            assert em.try_reclaim()
            tok.unpin()
            tok.unregister()

        rt.run(main)

    def test_stale_pinned_token_blocks_advance(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()  # epoch 1
            assert em.try_reclaim()  # -> epoch 2; tok still shows 1
            assert not em.try_reclaim()  # vetoed by the stale pin
            assert em.stats.scans_unsafe == 1
            tok.unpin()
            assert em.try_reclaim()  # free to go again

        rt.run(main)

    def test_remote_locale_token_blocks_advance(self, rt):
        """The scan is global: a stale pin on any locale vetoes."""

        def main():
            em = EpochManager(rt)
            holder = {}

            def pin_on(lid):
                if lid == 3:
                    tok = em.register()
                    tok.pin()
                    holder["tok"] = tok

            rt.coforall_locales(pin_on)
            assert em.try_reclaim()  # token is in the current epoch: fine
            assert not em.try_reclaim()  # now it is stale: veto

        rt.run(main)

    def test_repin_refreshes_epoch(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()
            em.try_reclaim()
            tok.pin()  # re-pin picks up the new epoch
            assert tok.local_epoch.peek() == em.current_epoch()
            assert em.try_reclaim()

        rt.run(main)


class TestReclamation:
    def test_objects_wait_two_advances(self, rt):
        """An object deferred in epoch e is freed when advancing to e+2."""

        def main():
            em = EpochManager(rt)
            tok = em.register()
            addr = rt.new_obj("victim")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()
            assert em.try_reclaim()  # advance 1: still live
            assert rt.is_live(addr)
            assert em.try_reclaim()  # advance 2: now reclaimed
            assert not rt.is_live(addr)

        rt.run(main)

    def test_clear_reclaims_everything_immediately(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            addrs = [rt.new_obj(i) for i in range(10)]
            tok.pin()
            for a in addrs:
                tok.defer_delete(a)
            tok.unpin()
            freed = em.clear()
            assert freed == 10
            assert all(not rt.is_live(a) for a in addrs)
            assert em.pending_count() == 0

        rt.run(main)

    def test_remote_objects_reclaimed_via_scatter(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            # Defer objects living on every locale.
            addrs = [rt.new_obj(i, locale=i % rt.num_locales) for i in range(16)]
            tok.pin()
            for a in addrs:
                tok.defer_delete(a)
            tok.unpin()
            rt.reset_measurements()
            em.clear()
            assert all(not rt.is_live(a) for a in addrs)
            # Scatter uses bulk transfers, not per-object RPCs.
            totals = rt.comm_totals()
            assert totals["bulk"] >= 1

        rt.run(main)

    def test_stats_accumulate(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()
            tok.defer_delete(rt.new_obj("x"))
            tok.unpin()
            em.try_reclaim()
            em.try_reclaim()
            s = em.stats
            assert s.reclaim_attempts == 2
            assert s.advances == 2
            assert s.objects_reclaimed == 1

        rt.run(main)

    def test_token_try_reclaim_delegates(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            assert tok.try_reclaim()
            assert em.stats.advances == 1

        rt.run(main)

    def test_deferred_count_diagnostic(self, rt):
        def main():
            em = EpochManager(rt)
            tok = em.register()
            tok.pin()
            for _ in range(5):
                tok.defer_delete(rt.new_obj("x"))
            tok.unpin()
            inst = em.get_privatized_instance(0)
            assert inst.deferred_count == 5

        rt.run(main)


class TestElection:
    def test_local_flag_held_blocks_other_callers(self, rt):
        def main():
            em = EpochManager(rt)
            inst = em.get_privatized_instance(0)
            inst.is_setting_epoch.write(True)  # simulate a racing setter
            assert not em.try_reclaim()
            assert em.stats.elections_lost_local == 1
            inst.is_setting_epoch.clear()

        rt.run(main)

    def test_global_flag_held_blocks_and_clears_local(self, rt):
        def main():
            em = EpochManager(rt)
            em.global_epoch.is_setting_epoch.write(True)
            assert not em.try_reclaim()
            assert em.stats.elections_lost_global == 1
            # The local flag must have been cleared on the way out.
            inst = em.get_privatized_instance(0)
            assert not inst.is_setting_epoch.peek()
            em.global_epoch.is_setting_epoch.clear()

        rt.run(main)

    def test_flags_cleared_after_successful_reclaim(self, rt):
        def main():
            em = EpochManager(rt)
            assert em.try_reclaim()
            assert not em.global_epoch.is_setting_epoch.peek()
            assert not em.get_privatized_instance(0).is_setting_epoch.peek()

        rt.run(main)

    def test_no_election_mode_still_safe(self, rt):
        """Ablation mode: concurrent reclaimers must not double-free."""

        def main():
            em = EpochManager(rt, use_election=False)

            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()
                tok.try_reclaim()

            rt.forall(range(400), body, task_init=em.register)
            em.clear()
            return em.stats.objects_reclaimed

        assert rt.run(main) == 400  # every object freed exactly once


class TestLifecycle:
    def test_destroy_then_use_raises(self, rt):
        def main():
            em = EpochManager(rt)
            em.destroy()
            with pytest.raises(EpochManagerError):
                em.register()
            with pytest.raises(EpochManagerError):
                em.try_reclaim()
            em.destroy()  # idempotent

        rt.run(main)

    def test_no_scatter_mode_frees_everything(self, rt):
        def main():
            em = EpochManager(rt, use_scatter=False)
            tok = em.register()
            addrs = [rt.new_obj(i, locale=i % rt.num_locales) for i in range(12)]
            tok.pin()
            for a in addrs:
                tok.defer_delete(a)
            tok.unpin()
            em.clear()
            assert all(not rt.is_live(a) for a in addrs)

        rt.run(main)


class TestConcurrentWorkload:
    def test_forall_listing5_pattern_leaves_no_garbage(self, rt):
        """The paper's Listing 5 shape: every object freed exactly once."""

        def main():
            em = EpochManager(rt)
            objs = [rt.new_obj(i, locale=i % rt.num_locales) for i in range(600)]

            class St:
                def __init__(self):
                    self.tok = em.register()
                    self.m = 0

                def close(self):
                    self.tok.unregister()

            def body(i, st):
                st.tok.pin()
                st.tok.defer_delete(objs[i])
                st.tok.unpin()
                st.m += 1
                if st.m % 64 == 0:
                    st.tok.try_reclaim()

            rt.forall(range(600), body, task_init=St)
            em.clear()
            assert all(not rt.is_live(a) for a in objs)
            assert em.stats.objects_reclaimed == 600

        rt.run(main)

    def test_concurrent_try_reclaim_from_all_locales(self, rt):
        """Hammer try_reclaim from every locale at once: no corruption."""

        def main():
            em = EpochManager(rt)

            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()
                tok.try_reclaim()

            rt.forall(range(800), body, task_init=em.register)
            em.clear()
            return em.stats.objects_reclaimed

        assert rt.run(main) == 800


class TestEpochCycleExtension:
    def test_cycle_must_be_at_least_three(self, rt):
        with pytest.raises(ValueError):
            EpochManager(rt, epoch_cycle=2)

    def test_four_epoch_cycle_semantics(self, rt):
        """epoch_cycle=4: epochs run 1..4 and objects wait THREE advances."""

        def main():
            em = EpochManager(rt, epoch_cycle=4)
            seen = [em.current_epoch()]
            tok = em.register()
            addr = rt.new_obj("victim")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()
            assert em.try_reclaim()  # -> 2
            assert rt.is_live(addr)
            assert em.try_reclaim()  # -> 3: would free under cycle=3
            assert rt.is_live(addr)
            assert em.try_reclaim()  # -> 4: now quiesced one extra epoch
            assert not rt.is_live(addr)
            for _ in range(4):
                em.try_reclaim()
                seen.append(em.current_epoch())
            # Cycle wraps through 4 distinct epochs.
            assert max(seen) == 4 and min(seen) >= 1

        rt.run(main)

    def test_four_epoch_workload_leaves_no_garbage(self, rt):
        def main():
            em = EpochManager(rt, epoch_cycle=4)

            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()
                if i % 32 == 0:
                    tok.try_reclaim()

            rt.forall(range(400), body, task_init=em.register)
            em.clear()
            return em.stats.objects_reclaimed

        assert rt.run(main) == 400
