"""Tests for AtomicObject / LocalAtomicObject / ABA wrapper / descriptors."""

from __future__ import annotations

import pytest

from repro.core import ABA, AtomicObject, GlobalAtomicObject, LocalAtomicObject
from repro.core.atomic_object import DescriptorTable
from repro.errors import LocaleError, RuntimeStateError
from repro.memory import NIL, GlobalAddress
from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(num_locales=4, network="ugni")


def _addr(rt, locale=0, payload="obj"):
    return rt.locale(locale).heap.alloc(payload)


class TestABAWrapper:
    def test_value_and_count(self):
        a = ABA(GlobalAddress(1, 16), 7)
        assert a.value == GlobalAddress(1, 16)
        assert a.count == 7
        assert a.get_object() == GlobalAddress(1, 16)
        assert a.getObject() == GlobalAddress(1, 16)

    def test_equality_includes_counter(self):
        x = GlobalAddress(0, 32)
        assert ABA(x, 1) == ABA(x, 1)
        assert ABA(x, 1) != ABA(x, 2)

    def test_equality_against_bare_value_ignores_counter(self):
        x = GlobalAddress(0, 32)
        assert ABA(x, 5) == x

    def test_hashable(self):
        x = GlobalAddress(0, 32)
        assert len({ABA(x, 1), ABA(x, 1), ABA(x, 2)}) == 2

    def test_truthiness_forwards_nil(self):
        assert not ABA(NIL, 3)
        assert ABA(GlobalAddress(1, 16), 0)

    def test_attribute_forwarding(self):
        a = ABA(GlobalAddress(2, 16), 0)
        assert a.locale == 2  # forwarded to the wrapped GlobalAddress
        assert a.offset == 16


class TestAtomicObjectModes:
    def test_auto_mode_picks_compressed_for_small_machines(self, rt):
        assert AtomicObject(rt).mode == "compressed"

    def test_explicit_modes(self, rt):
        for mode in ("compressed", "dcas", "descriptor"):
            assert AtomicObject(rt, mode=mode).mode == mode

    def test_unknown_mode_rejected(self, rt):
        with pytest.raises(ValueError):
            AtomicObject(rt, mode="quantum")

    def test_global_alias(self):
        assert GlobalAtomicObject is AtomicObject

    @pytest.mark.parametrize("mode", ["compressed", "dcas", "descriptor"])
    def test_read_write_exchange_cas(self, rt, mode):
        obj = AtomicObject(rt, mode=mode)
        a, b = _addr(rt, 1), _addr(rt, 2)

        def main():
            assert obj.read() == NIL
            obj.write(a)
            assert obj.read() == a
            assert obj.exchange(b) == a
            assert obj.compare_and_swap(b, a)
            assert not obj.compare_and_swap(b, a)
            ok, seen = obj.compare_exchange(a, b)
            assert ok and seen == a

        rt.run(main)

    def test_rejects_non_address_values(self, rt):
        with pytest.raises(TypeError):
            AtomicObject(rt).write("not an address")  # type: ignore[arg-type]

    def test_compressed_mode_validates_representability(self, rt):
        obj = AtomicObject(rt, mode="compressed")
        bad = GlobalAddress(1 << 16, 0x1000)  # locale needs 17 bits
        from repro.errors import TooManyLocalesError

        with pytest.raises(TooManyLocalesError):
            obj.write(bad)

    def test_dcas_mode_accepts_any_locale_id(self, rt):
        obj = AtomicObject(rt, mode="dcas")
        big = GlobalAddress(1 << 20, 0x1000)
        obj.write(big)
        assert obj.peek() == big


class TestAtomicObjectABAOps:
    def test_read_aba_snapshot(self, rt):
        obj = AtomicObject(rt)
        a = _addr(rt)

        def main():
            snap = obj.read_aba()
            assert snap.value == NIL and snap.count == 0
            obj.write_aba(a)
            snap2 = obj.read_aba()
            assert snap2.value == a and snap2.count == 1

        rt.run(main)

    def test_cas_aba_requires_matching_counter(self, rt):
        obj = AtomicObject(rt)
        a, b = _addr(rt, 1), _addr(rt, 2)

        def main():
            stale = obj.read_aba()
            obj.write_aba(a)  # bumps the counter
            assert not obj.compare_and_swap_aba(stale, b)
            fresh = obj.read_aba()
            assert obj.compare_and_swap_aba(fresh, b)
            assert obj.read() == b

        rt.run(main)

    def test_aba_defeats_recycled_address(self, rt):
        """Same pointer bits, advanced counter: stale DCAS must fail."""
        obj = AtomicObject(rt)
        heap = rt.locale(0).heap
        a = heap.alloc("first")

        def main():
            obj.write_aba(a)
            stale = obj.read_aba()
            obj.exchange_aba(NIL)  # unlink
            heap.free(a.offset)
            again = heap.alloc("second")
            assert again == a  # LIFO recycling: identical bits
            obj.write_aba(again)
            assert not obj.compare_and_swap_aba(stale, NIL)

        rt.run(main)

    def test_exchange_aba_returns_snapshot_and_bumps(self, rt):
        obj = AtomicObject(rt)
        a = _addr(rt)

        def main():
            old = obj.exchange_aba(a)
            assert old.value == NIL and old.count == 0
            assert obj.read_aba().count == 1

        rt.run(main)

    def test_plain_cas_ignores_counter(self, rt):
        """Mixing normal and ABA variants is allowed (advanced users)."""
        obj = AtomicObject(rt)
        a = _addr(rt)

        def main():
            obj.write_aba(a)  # counter = 1
            assert obj.compare_and_swap(a, NIL)  # pointer-only CAS

        rt.run(main)

    def test_disabled_aba_raises(self, rt):
        obj = AtomicObject(rt, aba_protection=False)
        with pytest.raises(RuntimeStateError):
            obj.read_aba()
        with pytest.raises(RuntimeStateError):
            obj.write_aba(NIL)

    def test_chapel_spelling_aliases(self, rt):
        obj = AtomicObject(rt)
        a = _addr(rt)

        def main():
            snap = obj.readABA()
            assert obj.compareAndSwapABA(snap, a)
            assert obj.readABA().getObject() == a

        rt.run(main)


class TestAtomicObjectCosts:
    def test_compressed_remote_is_rdma_dcas_remote_is_am(self):
        rt = Runtime(num_locales=2, network="ugni")
        comp = AtomicObject(rt, locale=1, mode="compressed")
        dcas = AtomicObject(rt, locale=1, mode="dcas")

        def cost(fn):
            def main():
                with rt.timed() as t:
                    fn()
                return t.elapsed

            return rt.run(main)

        assert cost(dcas.read) > 3 * cost(comp.read)

    def test_aba_ops_cost_wide_even_in_compressed_mode(self):
        rt = Runtime(num_locales=2, network="ugni")
        obj = AtomicObject(rt, locale=1, mode="compressed")

        def cost(fn):
            def main():
                with rt.timed() as t:
                    fn()
                return t.elapsed

            return rt.run(main)

        assert cost(obj.read_aba) > 3 * cost(obj.read)


class TestDescriptorTable:
    def test_register_resolve_roundtrip(self, rt):
        table = DescriptorTable(rt, home=0)
        a = _addr(rt, 2)
        desc = table.register(a)
        assert desc != 0
        assert table.resolve(desc) == a

    def test_nil_is_descriptor_zero(self, rt):
        table = DescriptorTable(rt, home=0)
        assert table.register(NIL) == 0
        assert table.resolve(0) == NIL

    def test_unknown_descriptor_raises(self, rt):
        with pytest.raises(RuntimeStateError):
            DescriptorTable(rt, home=0).resolve(999)

    def test_resolution_cache_avoids_repeat_gets(self):
        rt = Runtime(num_locales=2, network="ugni")
        table = DescriptorTable(rt, home=1)
        a = rt.locale(1).heap.alloc("x")
        desc = table.register(a)

        def main():
            table.resolve(desc)  # miss: one GET
            rt.reset_measurements()
            table.resolve(desc)  # hit: free
            return rt.comm_totals()["get"]

        assert rt.run(main) == 0


class TestLocalAtomicObject:
    def test_basic_ops(self, rt):
        obj = LocalAtomicObject(rt, locale=1)
        a = _addr(rt, 1)

        def main():
            obj.write(a)
            assert obj.read() == a
            assert obj.exchange(NIL) == a
            assert obj.compare_and_swap(NIL, a)

        rt.run(main)

    def test_rejects_remote_objects(self, rt):
        obj = LocalAtomicObject(rt, locale=1)
        remote = _addr(rt, 2)
        with pytest.raises(LocaleError):
            obj.write(remote)

    def test_nil_is_always_acceptable(self, rt):
        obj = LocalAtomicObject(rt, locale=1)
        obj.write(NIL)
        assert obj.peek() == NIL

    def test_aba_variants(self, rt):
        obj = LocalAtomicObject(rt, locale=0)
        a = _addr(rt, 0)

        def main():
            snap = obj.read_aba()
            assert obj.compare_and_swap_aba(snap, a)
            assert not obj.compare_and_swap_aba(snap, NIL)  # counter moved

        rt.run(main)

    def test_opts_out_of_network_atomics(self):
        """LocalAtomicObject pays CPU prices even under ugni."""
        rt = Runtime(num_locales=1, network="ugni")
        local = LocalAtomicObject(rt, locale=0)
        netw = AtomicObject(rt, locale=0)

        def cost(fn):
            def main():
                with rt.timed() as t:
                    fn()
                return t.elapsed

            return rt.run(main)

        assert cost(netw.read) > 5 * cost(local.read)

    def test_disabled_aba_raises(self, rt):
        obj = LocalAtomicObject(rt, aba_protection=False)
        with pytest.raises(RuntimeStateError):
            obj.read_aba()
