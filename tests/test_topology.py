"""Tests for the multi-level topology model (repro.comm.topology).

Covers the distance-class ladder of each built-in topology, spec parsing
and its error surface, the per-class cost resolution
(``resolve_cost_model``'s ``class_scale`` axis, ``network_scaled``), the
flat-table precompilation exactness guarantee (per-class compile ≡ legacy
branchy compile, entry by entry), the runtime-level cost ordering
(coherent < NIC < uplink), shared-uplink contention, locality-aware
privatization helpers, and the scenario-layer threading
(``TopologySpec.topology``, baseline incomparability, churn pairing).
"""

from __future__ import annotations

import pytest

from repro.comm.costs import (
    DEFAULT_COSTS,
    DEGRADED_COSTS,
    NETWORK_FIELDS,
    resolve_cost_model,
)
from repro.comm.topology import (
    DistanceClass,
    DragonflyTopology,
    FlatTopology,
    HierarchicalTopology,
    Topology,
    parse_topology,
    topology_names,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.context import current_context
from repro.runtime.runtime import Runtime


# ---------------------------------------------------------------------------
# Distance ladders
# ---------------------------------------------------------------------------


class TestDistanceLadders:
    def test_flat_is_two_classes(self):
        topo = FlatTopology(8)
        assert topo.class_names() == ["self", "remote"]
        assert topo.distance(3, 3) == 0
        assert topo.distance(3, 4) == 1
        assert topo.distance(0, 7) == 1

    def test_hier_ladder(self):
        # 2 sockets/node x 2 locales/socket: nodes {0..3}, {4..7};
        # sockets {0,1}, {2,3}, {4,5}, {6,7}.
        topo = HierarchicalTopology(
            8, sockets_per_node=2, locales_per_socket=2
        )
        assert topo.class_names() == ["self", "socket", "node", "uplink"]
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 1) == 1  # same socket
        assert topo.distance(0, 2) == 2  # same node, other socket
        assert topo.distance(0, 3) == 2
        assert topo.distance(0, 4) == 3  # other node
        assert topo.distance(7, 6) == 1
        assert topo.distance(7, 0) == 3

    def test_hier_grouping_helpers(self):
        topo = HierarchicalTopology(
            8, sockets_per_node=2, locales_per_socket=2
        )
        assert [topo.socket_of(lid) for lid in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
        assert [topo.node_of(lid) for lid in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert topo.uplink_group(5) == 1
        assert topo.coherence_domain(5) == 2

    def test_dragonfly_ladder(self):
        topo = DragonflyTopology(8, group_size=4)
        assert topo.class_names() == ["self", "group", "global"]
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 3) == 1
        assert topo.distance(0, 4) == 2
        assert topo.uplink_group(6) == 1

    def test_distance_row_matches_distance_and_is_cached(self):
        topo = HierarchicalTopology(8)
        row = topo.distance_row(5)
        assert row == tuple(topo.distance(src, 5) for src in range(8))
        assert topo.distance_row(5) is row

    def test_distance_is_symmetric_for_builtins(self):
        for topo in (
            FlatTopology(8),
            HierarchicalTopology(8),
            DragonflyTopology(8, group_size=3),
        ):
            for a in range(8):
                for b in range(8):
                    assert topo.distance(a, b) == topo.distance(b, a)

    def test_class_zero_is_local(self):
        for topo in (FlatTopology(4), HierarchicalTopology(4), DragonflyTopology(4)):
            assert topo.classes[0].transport == "local"

    def test_distance_class_validation(self):
        with pytest.raises(ValueError, match="transport"):
            DistanceClass("x", "warp")
        with pytest.raises(ValueError, match="scale"):
            DistanceClass("x", "am", scale=0)
        with pytest.raises(ValueError, match="scale"):
            DistanceClass("x", "am", scale=True)


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


class TestParseTopology:
    def test_strings(self):
        assert isinstance(parse_topology("flat", 4), FlatTopology)
        hier = parse_topology("hier:4x2", 16)
        assert isinstance(hier, HierarchicalTopology)
        assert hier.sockets_per_node == 4
        assert hier.locales_per_socket == 2
        dfly = parse_topology("dragonfly:8", 16)
        assert isinstance(dfly, DragonflyTopology)
        assert dfly.group_size == 8

    def test_defaults_without_shape(self):
        assert parse_topology("hier", 8).spec() == "hier:2x2"
        assert parse_topology("dragonfly", 8).spec() == "dragonfly:4"

    def test_spec_round_trips(self):
        for spec in ("flat", "hier:2x2", "hier:1x4", "dragonfly:2"):
            topo = parse_topology(spec, 8)
            again = parse_topology(topo.spec(), 8)
            assert type(again) is type(topo)
            assert again.spec() == topo.spec()

    def test_spec_round_trips_scales(self):
        hier = HierarchicalTopology(8, uplink_scale=1.5)
        assert hier.spec() == "hier:2x2@1.5"
        again = parse_topology(hier.spec(), 8)
        assert again.uplink_scale == 1.5
        dfly = DragonflyTopology(8, global_scale=8.0)
        assert dfly.spec() == "dragonfly:4@8"
        assert parse_topology(dfly.spec(), 8).global_scale == 8.0
        # mapping form with a non-default scale round-trips via spec()
        m = parse_topology({"kind": "dragonfly", "group_size": 2,
                            "global_scale": 2.0}, 8)
        assert parse_topology(m.spec(), 8).global_scale == 2.0
        with pytest.raises(ValueError):
            parse_topology("hier:2x2@fast", 8)

    def test_unknown_kind_lists_valid_names(self):
        with pytest.raises(ValueError) as exc:
            parse_topology("torus", 8)
        for name in topology_names():
            assert name in str(exc.value)

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            parse_topology("hier:2", 8)
        with pytest.raises(ValueError):
            parse_topology("hier:axb", 8)
        with pytest.raises(ValueError):
            parse_topology("hier:0x2", 8)
        with pytest.raises(ValueError):
            parse_topology("dragonfly:many", 8)
        with pytest.raises(ValueError):
            parse_topology("flat:4", 8)

    def test_mapping_form(self):
        topo = parse_topology(
            {"kind": "hier", "sockets_per_node": 1, "locales_per_socket": 4}, 8
        )
        assert topo.spec() == "hier:1x4"
        with pytest.raises(ValueError):
            parse_topology({"kind": "mesh"}, 8)
        with pytest.raises(ValueError):
            parse_topology({"kind": "flat", "extra": 1}, 8)
        with pytest.raises(ValueError):
            parse_topology({"kind": "hier", "bogus": 1}, 8)

    def test_instance_passthrough_validates_locales(self):
        topo = FlatTopology(8)
        assert parse_topology(topo, 8) is topo
        with pytest.raises(ValueError):
            parse_topology(topo, 4)

    def test_non_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_topology(42, 8)

    def test_runtime_config_threading(self):
        cfg = RuntimeConfig(num_locales=8, topology="hier:2x2")
        assert cfg.resolved_topology().spec() == "hier:2x2"
        # replace() re-resolves
        cfg2 = cfg.with_(topology="dragonfly:4")
        assert cfg2.resolved_topology().spec() == "dragonfly:4"
        with pytest.raises(ValueError):
            RuntimeConfig(num_locales=8, topology="nope")

    def test_from_topology_learns_shape(self):
        cfg = RuntimeConfig.from_topology(locales=8, topology="hier:2x2")
        topo = cfg.resolved_topology()
        assert isinstance(topo, HierarchicalTopology)
        assert topo.node_size == 4


# ---------------------------------------------------------------------------
# Cost layer edges (satellite: resolve_cost_model / scaled immutability)
# ---------------------------------------------------------------------------


class TestCostLayerEdges:
    def test_unknown_profile_lists_choices(self):
        with pytest.raises(ValueError) as exc:
            resolve_cost_model("turbo")
        assert "default" in str(exc.value)

    def test_bad_overrides_list_fields(self):
        with pytest.raises(ValueError) as exc:
            resolve_cost_model("default", overrides={"warp_latency": 1.0})
        assert "warp_latency" in str(exc.value)

    @pytest.mark.parametrize("scale", [0, -1.0, "2", True])
    def test_non_positive_scale_rejected(self, scale):
        with pytest.raises(ValueError):
            resolve_cost_model("default", scale=scale)

    @pytest.mark.parametrize("scale", [0, -2, "x", False])
    def test_non_positive_class_scale_rejected(self, scale):
        with pytest.raises(ValueError):
            resolve_cost_model("default", class_scale=scale)

    def test_scaled_returns_new_frozen_instance(self):
        before = DEFAULT_COSTS.am_latency
        scaled = DEFAULT_COSTS.scaled(2.0)
        assert scaled is not DEFAULT_COSTS
        assert DEFAULT_COSTS.am_latency == before  # source untouched
        assert scaled.am_latency == 2 * before
        with pytest.raises(Exception):
            scaled.am_latency = 0.0  # type: ignore[misc]

    def test_network_scaled_touches_only_network_fields(self):
        scaled = DEFAULT_COSTS.network_scaled(3.0)
        for name in NETWORK_FIELDS:
            assert getattr(scaled, name) == 3.0 * getattr(DEFAULT_COSTS, name)
        for name in ("cpu_atomic_latency", "cpu_dcas_latency", "alloc_latency",
                     "free_latency", "task_spawn_local", "cpu_load_latency"):
            assert getattr(scaled, name) == getattr(DEFAULT_COSTS, name)

    def test_network_scaled_identity_returns_self(self):
        # Flat-topology routes are compiled from the very same object —
        # the bit-identity guarantee leans on this.
        assert DEFAULT_COSTS.network_scaled(1.0) is DEFAULT_COSTS

    def test_degraded_profile_is_network_scaled_8x(self):
        assert DEGRADED_COSTS == DEFAULT_COSTS.network_scaled(8.0)

    def test_class_scale_axis(self):
        model = resolve_cost_model("default", class_scale=4.0)
        assert model.am_latency == 4 * DEFAULT_COSTS.am_latency
        assert model.cpu_atomic_latency == DEFAULT_COSTS.cpu_atomic_latency
        # uniform scale then class scale compose
        both = resolve_cost_model("default", scale=2.0, class_scale=4.0)
        assert both.am_latency == 8 * DEFAULT_COSTS.am_latency
        assert both.cpu_atomic_latency == 2 * DEFAULT_COSTS.cpu_atomic_latency


# ---------------------------------------------------------------------------
# Route precompilation exactness (satellite: flat ≡ legacy, entry by entry)
# ---------------------------------------------------------------------------


def _route_facts(route):
    return (
        route.diag_index,
        route.latency,
        route.point.name if route.point is not None else None,
        route.point_service,
        route.line_service,
    )


class TestFlatTableExactness:
    @pytest.mark.parametrize("network", ["ugni", "none"])
    def test_flat_class_compile_equals_legacy_compile(self, network):
        rt = Runtime(num_locales=4, network=network)
        try:
            for home in range(4):
                table = rt.network.atomic_route_table(home)
                legacy = rt.network._compile_legacy_atomic_table(home)
                assert len(table) == len(legacy) == 8
                for idx, (got, want) in enumerate(zip(table, legacy)):
                    assert _route_facts(got) == _route_facts(want), (
                        f"home={home} entry={idx}"
                    )
        finally:
            rt.close()

    def test_flat_table_cached_per_home(self):
        rt = Runtime(num_locales=2)
        try:
            t0 = rt.network.atomic_route_table(0)
            assert rt.network.atomic_route_table(0) is t0
            assert rt.network.atomic_route_table(1) is not t0
        finally:
            rt.close()

    def test_legacy_view_refuses_multilevel_topologies(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            with pytest.raises(ValueError, match="atomic_class_routes"):
                rt.network.atomic_route_table(0)
        finally:
            rt.close()

    def test_class_rows_shape(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            rows = rt.network.atomic_class_routes(0)
            assert len(rows) == 4  # narrow/wide x plain/opt-out
            assert all(len(row) == 4 for row in rows)  # one per class
            # wide rows ignore opt_out
            assert rows[2] is rows[3]
        finally:
            rt.close()


# ---------------------------------------------------------------------------
# Runtime-level behaviour
# ---------------------------------------------------------------------------


def _atomic_cost_from(rt: Runtime, src: int, home: int) -> float:
    """Virtual cost of one narrow atomic against ``home`` issued at ``src``."""
    cost = {}

    def main():
        cell = rt.atomic_int(0, locale=home)
        with rt.on(src):
            clock = current_context().clock
            before = clock.now
            cell.add(1)
            cost["v"] = clock.now - before

    rt.run(main)
    return cost["v"]


class TestTopologyPricing:
    def test_hier_cost_ladder(self):
        """coherent << nic-local <= node < uplink — the distance ladder."""
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            coherent = _atomic_cost_from(rt, 1, 0)
            local = _atomic_cost_from(rt, 0, 0)
            node = _atomic_cost_from(rt, 2, 0)
            uplink = _atomic_cost_from(rt, 4, 0)
            assert coherent < local < node < uplink
        finally:
            rt.close()

    def test_dragonfly_intergroup_degradation(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="dragonfly:4"))
        try:
            intra = _atomic_cost_from(rt, 1, 0)
            inter = _atomic_cost_from(rt, 4, 0)
            assert inter > 2 * intra  # global_scale=4 on network terms
        finally:
            rt.close()

    def test_flat_explicit_matches_default(self):
        """topology='flat' is exactly the legacy (default) machine."""
        import repro.bench.workloads as wl

        r_default = wl.run_atomic_mix(
            Runtime(num_locales=4), kind="atomic_int", ops_per_task=128
        )
        r_flat = wl.run_atomic_mix(
            Runtime(config=RuntimeConfig(num_locales=4, topology="flat",
                                         tasks_per_locale=2)),
            kind="atomic_int",
            ops_per_task=128,
        )
        assert r_default.elapsed == r_flat.elapsed
        assert r_default.comm == r_flat.comm

    def test_coherent_data_ops_are_local_priced(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            def main():
                obj = rt.new_obj("payload", locale=1)
                rt.network.diags.reset()
                clock = current_context().clock
                before = clock.now
                rt.deref(obj)  # locale 0 reading locale 1: same socket
                same_socket = clock.now - before
                totals_mid = rt.comm_totals()
                before = clock.now
                obj2 = rt.new_obj("payload", locale=4)
                rt.deref(obj2)  # cross-node
                cross = clock.now - before
                return same_socket, cross, totals_mid

            same_socket, cross, mid = rt.run(main)
            # Same-socket GET is a local load: no GET counter, tiny cost.
            assert mid["get"] == 0
            assert cross > 10 * same_socket
        finally:
            rt.close()

    def test_coherent_fork_is_cheap_and_message_free(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            def main():
                clock = current_context().clock
                before = clock.now
                with rt.on(1):
                    pass
                socket_trip = clock.now - before
                before = clock.now
                with rt.on(4):
                    pass
                uplink_trip = clock.now - before
                return socket_trip, uplink_trip, rt.comm_totals()

            socket_trip, uplink_trip, totals = rt.run(main)
            # Only the cross-node hop sends messages; the same-socket hop
            # is a shared-memory spawn (consistent with every other
            # coherent-class charge recording nothing).
            assert totals["fork"] == 1
            assert totals["am"] == 1
            assert uplink_trip > 5 * socket_trip
        finally:
            rt.close()

    def test_uplink_is_shared_across_node(self):
        """Cross-node traffic to two different locales on one node shares
        one uplink service point; on flat they'd be independent NICs."""
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            assert rt.network.uplinks  # materialized
            p4 = rt.network.atomic_class_routes(4)[0][3].point
            p5 = rt.network.atomic_class_routes(5)[0][3].point
            p0 = rt.network.atomic_class_routes(0)[0][3].point
            assert p4 is p5          # same node => same uplink
            assert p4 is not p0      # different node => different uplink
        finally:
            rt.close()

    def test_single_group_dragonfly_keeps_lock_fast_path(self):
        """When every reachable narrow class rides the NIC (all locales in
        one dragonfly group under ugni), cells adopt the NIC lock exactly
        like flat ugni — the dead inter-group class must not defeat the
        one-lock-cycle fast path."""
        rt = Runtime(config=RuntimeConfig(num_locales=4, topology="dragonfly:8"))
        flat = Runtime(num_locales=4)
        multi = Runtime(config=RuntimeConfig(num_locales=8, topology="dragonfly:4"))
        try:
            cell = rt.atomic_int(0, locale=1)
            assert cell._lock is rt.network.nic[1]._lock
            fcell = flat.atomic_int(0, locale=1)
            assert fcell._lock is flat.network.nic[1]._lock
            # Genuinely multi-class homes fall back to the line lock.
            mcell = multi.atomic_int(0, locale=1)
            assert mcell._lock is mcell.line._lock
        finally:
            rt.close()
            flat.close()
            multi.close()

    def test_flat_has_no_uplinks(self):
        rt = Runtime(num_locales=4)
        try:
            assert rt.network.uplinks == {}
        finally:
            rt.close()

    def test_locale_distance_helper(self):
        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            assert rt.locale_distance(0, 1) == 1
            assert rt.locale_distance(0, 4) == 3
            assert rt.topology.spec() == "hier:2x2"
            with pytest.raises(Exception):
                rt.locale_distance(0, 99)
        finally:
            rt.close()


# ---------------------------------------------------------------------------
# Locality-aware privatization
# ---------------------------------------------------------------------------


class TestCoherentPrivatization:
    def test_coherence_domains(self):
        from repro.core.privatization import coherence_domains

        flat = Runtime(num_locales=4)
        hier = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            assert coherence_domains(flat) == [0, 1, 2, 3]
            assert coherence_domains(hier) == [0, 0, 1, 1, 2, 2, 3, 3]
        finally:
            flat.close()
            hier.close()

    def test_replicate_coherent_shares_per_socket(self):
        from repro.core.privatization import replicate_coherent

        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            built = []

            def factory(lid):
                built.append(lid)
                return {"home": lid}

            instances = replicate_coherent(rt, factory)
            assert len(instances) == 8
            assert built == [0, 2, 4, 6]  # first locale of each socket
            assert instances[0] is instances[1]
            assert instances[1] is not instances[2]
        finally:
            rt.close()

    def test_replicate_coherent_plugs_into_privatization(self):
        from repro.core.privatization import PrivatizedObject, replicate_coherent

        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2"))
        try:
            class Thing(PrivatizedObject):
                def __init__(self, runtime):
                    super().__init__(
                        runtime, replicate_coherent(runtime, lambda lid: [lid])
                    )

            def main():
                thing = Thing(rt)
                assert thing.get_privatized_instance(0) is thing.get_privatized_instance(1)
                assert thing.get_privatized_instance(2) is not thing.get_privatized_instance(1)

            rt.run(main)
        finally:
            rt.close()


# ---------------------------------------------------------------------------
# Scenario / workload threading
# ---------------------------------------------------------------------------


class TestScenarioThreading:
    def test_topology_spec_field_validated(self):
        from repro.bench.scenarios import ScenarioError, TopologySpec

        spec = TopologySpec(locales=8, topology="hier")
        assert spec.topology == "hier:2x2"  # normalized to canonical form
        assert spec.as_dict()["topology"] == "hier:2x2"
        with pytest.raises(ScenarioError) as exc:
            TopologySpec(locales=8, topology="torus")
        assert "dragonfly" in str(exc.value)
        with pytest.raises(ScenarioError):
            TopologySpec(locales=8, topology=42)

    def test_baseline_incomparable_on_machine_axes(self):
        from repro.bench import scenarios as sc

        spec = sc.get_scenario("queue-churn").with_measure(ops_scale=0.125)
        run = sc.run_scenario(spec)
        base = sc.baseline_entry(run)
        assert base["topology"] == "flat"
        assert base["cost_profile"] == "default"
        assert base["cost_scale"] == 1.0
        baselines = {spec.name: base}
        # identical spec: match
        status = sc._baseline_status(run, baselines)
        assert status["status"] == "match"
        # each machine axis flips the verdict to incomparable
        for axis, value in (
            ("topology", "hier:2x2"),
            ("cost_profile", "degraded"),
            ("cost_scale", 2.0),
            ("reclaimer", "hp"),
        ):
            other = sc.run_scenario(
                spec.with_topology(**{axis: value})
            )
            status = sc._baseline_status(other, baselines)
            assert status["status"] == "incomparable", axis
            assert axis in status["reason"]

    def test_churn_pairing_validation_and_locality(self):
        from repro.bench.workloads import _churn_partners, run_producer_consumer

        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2",
                                          tasks_per_locale=1))
        try:
            ring = _churn_partners(rt, 8, "ring")
            near = _churn_partners(rt, 8, "near")
            far = _churn_partners(rt, 8, "far")
            # every pairing is a bijection (single mutator per structure)
            for p in (ring, near, far):
                assert sorted(p) == list(range(8))
            assert ring == [1, 2, 3, 4, 5, 6, 7, 0]
            assert near == [1, 0, 3, 2, 5, 4, 7, 6]
            topo = rt.topology
            # near pairs are coherent; far pairs all cross nodes
            assert all(topo.distance(i, near[i]) == 1 for i in range(8))
            assert all(topo.distance(i, far[i]) == 3 for i in range(8))
            with pytest.raises(ValueError, match="pairing"):
                run_producer_consumer(rt, items_per_task=1, pairing="bogus")
        finally:
            rt.close()

    def test_far_pairing_on_flat_reduces_to_ring(self):
        from repro.bench.workloads import _churn_partners

        rt = Runtime(num_locales=4)
        try:
            assert _churn_partners(rt, 4, "far") == _churn_partners(rt, 4, "ring")
        finally:
            rt.close()

    def test_near_pairing_adapts_to_shapes_without_siblings(self):
        """hier:2x1 has no coherent socket siblings; 'near' must still
        pick the closest available rung (same node), not pretend."""
        from repro.bench.workloads import _churn_partners

        rt = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x1"))
        try:
            near = _churn_partners(rt, 8, "near")
            topo = rt.topology
            assert sorted(near) == list(range(8))
            # node size is 2, so the best possible pairing stays
            # same-node (class 2 — there is no coherent class occupied).
            assert all(topo.distance(i, near[i]) == 2 for i in range(8))
        finally:
            rt.close()

    def test_coforall_spawn_is_distance_aware(self):
        """A coforall spanning dragonfly groups pays the degraded spawn
        tree; coherent hier siblings are not counted as forks."""
        flat = Runtime(config=RuntimeConfig(num_locales=8, tasks_per_locale=1))
        dfly = Runtime(config=RuntimeConfig(num_locales=8, topology="dragonfly:4",
                                            tasks_per_locale=1))
        hier = Runtime(config=RuntimeConfig(num_locales=8, topology="hier:2x2",
                                            tasks_per_locale=1))
        try:
            def elapsed(rt):
                def main():
                    with rt.timed() as t:
                        rt.coforall_locales(lambda lid: None)
                    return t.elapsed, rt.comm_totals()["fork"]
                return rt.run(main)

            t_flat, forks_flat = elapsed(flat)
            t_dfly, forks_dfly = elapsed(dfly)
            t_hier, forks_hier = elapsed(hier)
            assert t_dfly > t_flat  # 4x-scaled spawn tree across groups
            assert forks_flat == 7
            assert forks_dfly == 7
            assert forks_hier == 6  # locale 1 is a coherent sibling
        finally:
            flat.close()
            dfly.close()
            hier.close()

    def test_coherent_only_spawn_tree_is_local_priced(self):
        """A coforall that never leaves the coherence domain spawns over
        shared memory: no forks counted, task_spawn_local per hop —
        consistent with remote_fork for the same peers."""
        flat = Runtime(config=RuntimeConfig(num_locales=4, tasks_per_locale=1))
        onenode = Runtime(config=RuntimeConfig(num_locales=4, topology="hier:1x4",
                                               tasks_per_locale=1))
        try:
            def elapsed(rt):
                def main():
                    with rt.timed() as t:
                        rt.coforall_locales(lambda lid: None)
                    return t.elapsed, rt.comm_totals()["fork"]
                return rt.run(main)

            t_flat, forks_flat = elapsed(flat)
            t_one, forks_one = elapsed(onenode)
            assert forks_flat == 3 and forks_one == 0
            assert t_one < t_flat  # local spawns beat the remote tree
        finally:
            flat.close()
            onenode.close()

    def test_rackaffine_beats_crossnode(self):
        """The headline locality effect: draining a socket sibling is much
        cheaper than draining across the node uplinks."""
        from repro.bench import scenarios as sc

        near = sc.run_scenario(
            sc.get_scenario("topo-hier-rackaffine").with_measure(ops_scale=0.125)
        )
        far = sc.run_scenario(
            sc.get_scenario("topo-hier-crossnode").with_measure(ops_scale=0.125)
        )
        assert near.result.elapsed * 3 < far.result.elapsed

    def test_topology_scenarios_deterministic_across_pools(self):
        """One representative new scenario, bit-identical across pool sizes
        (the full set is verified by the baseline regression in CI)."""
        from repro.bench import scenarios as sc

        spec = sc.get_scenario("topo-hier-reclaim-hp").with_measure(ops_scale=0.25)
        ref = None
        for pool in (1, 2, 4):
            run = sc.run_scenario(spec.with_topology(worker_pool_size=pool))
            key = (run.result.elapsed, run.result.operations, run.result.comm)
            if ref is None:
                ref = key
            else:
                assert key == ref, f"pool={pool}"

    def test_toml_spec_with_topology(self):
        from repro.bench.scenarios import ScenarioSpec

        pytest.importorskip("tomllib")
        spec = ScenarioSpec.from_toml(
            """
            [scenario]
            name = "t"

            [topology]
            locales = 8
            topology = "dragonfly:4"

            [workload]
            kind = "atomic_hotspot"
            """
        )
        assert spec.topology.topology == "dragonfly:4"
        assert isinstance(
            spec.topology.runtime_config().resolved_topology(), DragonflyTopology
        )

    def test_registered_topology_scenarios_exist(self):
        from repro.bench.scenarios import scenario_names

        names = scenario_names()
        for expected in (
            "topo-hier-hotspot",
            "topo-hier-rackaffine",
            "topo-hier-crossnode",
            "topo-dragonfly-churn",
            "topo-dragonfly-hotspot",
            "topo-hier-reclaim-ebr",
            "topo-hier-reclaim-hp",
        ):
            assert expected in names


class TestTopologyBase:
    def test_base_distance_abstract(self):
        topo = Topology(4)
        with pytest.raises(NotImplementedError):
            topo.distance(0, 1)

    def test_bad_locale_count(self):
        with pytest.raises(ValueError):
            FlatTopology(0)
        with pytest.raises(ValueError):
            HierarchicalTopology(-1)
