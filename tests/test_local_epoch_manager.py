"""Tests for the shared-memory LocalEpochManager variant."""

from __future__ import annotations

import pytest

from repro.core import LocalEpochManager
from repro.errors import EpochManagerError, TokenStateError
from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(num_locales=2, network="ugni", tasks_per_locale=4)


class TestBasics:
    def test_register_on_manager_locale(self, rt):
        def main():
            lem = LocalEpochManager(rt)
            tok = lem.register()
            tok.pin()
            tok.unpin()
            tok.unregister()

        rt.run(main)

    def test_register_from_other_locale_raises(self, rt):
        def main():
            lem = LocalEpochManager(rt, locale=0)
            with rt.on(1):
                with pytest.raises(TokenStateError):
                    lem.register()

        rt.run(main)

    def test_epoch_cycles(self, rt):
        def main():
            lem = LocalEpochManager(rt)
            assert lem.current_epoch() == 1
            for expect in (2, 3, 1, 2):
                assert lem.try_reclaim()
                assert lem.current_epoch() == expect

        rt.run(main)

    def test_two_advance_reclamation_rule(self, rt):
        def main():
            lem = LocalEpochManager(rt)
            tok = lem.register()
            addr = rt.new_obj("x")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()
            assert lem.try_reclaim()
            assert rt.is_live(addr)
            assert lem.try_reclaim()
            assert not rt.is_live(addr)

        rt.run(main)

    def test_stale_pin_blocks(self, rt):
        def main():
            lem = LocalEpochManager(rt)
            tok = lem.register()
            tok.pin()
            assert lem.try_reclaim()
            assert not lem.try_reclaim()  # stale pin vetoes
            tok.unpin()
            assert lem.try_reclaim()

        rt.run(main)

    def test_remote_objects_rejected(self, rt):
        def main():
            lem = LocalEpochManager(rt, locale=0)
            tok = lem.register()
            remote = rt.new_obj("x", locale=1)
            tok.pin()
            tok.defer_delete(remote)
            tok.unpin()
            with pytest.raises(TokenStateError):
                lem.clear()

        rt.run(main)

    def test_clear_and_destroy(self, rt):
        def main():
            lem = LocalEpochManager(rt)
            tok = lem.register()
            addrs = [rt.new_obj(i) for i in range(5)]
            tok.pin()
            for a in addrs:
                tok.defer_delete(a)
            tok.unpin()
            assert lem.clear() == 5
            lem.destroy()
            with pytest.raises(EpochManagerError):
                lem.register()

        rt.run(main)


class TestNoDistributedTraffic:
    def test_try_reclaim_never_leaves_the_locale(self, rt):
        """The whole point of the variant: zero remote operations."""

        def main():
            lem = LocalEpochManager(rt)
            tok = lem.register()
            tok.pin()
            tok.defer_delete(rt.new_obj("x"))
            tok.unpin()
            rt.reset_measurements()
            lem.try_reclaim()
            lem.try_reclaim()
            lem.clear()
            return rt.network.diags.remote_ops()

        assert rt.run(main) == 0

    def test_cheaper_than_distributed_manager_on_one_locale(self, rt):
        """Single-locale reclamation: the local variant wins (ablation)."""
        from repro.core import EpochManager

        def cost(make_mgr):
            def main():
                mgr = make_mgr()
                tok = mgr.register()
                with rt.timed() as t:
                    for i in range(64):
                        tok.pin()
                        tok.defer_delete(rt.new_obj(i))
                        tok.unpin()
                        tok.try_reclaim()
                    mgr.clear()
                return t.elapsed

            return rt.run(main)

        local = cost(lambda: LocalEpochManager(rt))
        dist = cost(lambda: EpochManager(rt))
        assert local < dist

    def test_concurrent_tasks_one_locale(self, rt):
        def main():
            lem = LocalEpochManager(rt, locale=0)

            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()
                if i % 16 == 0:
                    tok.try_reclaim()

            # All items forced onto locale 0 (the manager's home).
            rt.forall(
                range(300),
                body,
                task_init=lem.register,
                owner_of=lambda item, idx: 0,
            )
            lem.clear()
            return lem.stats.objects_reclaimed

        assert rt.run(main) == 300
