"""Tests for the pluggable virtual-time policy engine (src/repro/policy).

Four layers, mirroring the subsystem's contract:

* **spec parsing** — ``parse_policy`` / ``PolicySpec`` round-trips,
  canonical normalization, and the shared list-the-valid-names error
  idiom;
* **unit semantics** — each epoch policy (fixed/threshold/decay/grace)
  and window policy (static/adaptive) decided against hand-built
  virtual-time facts;
* **machine-axis layer** — ``parse_axis`` / ``MachineAxes`` round-trip
  every axis through one shape, and a policy-axis mismatch makes a
  baseline ``incomparable`` (never silently ``drift``);
* **end-to-end determinism** — the hard requirement: policy decisions
  are bit-identical across repeats and worker-pool sizes {1, 2, 4, 8},
  the engaged ``fixed``/``static`` default exactly reproduces the
  shipped baselines, and the adaptive sweep scenario beats its static
  twin on virtual time (the claim its baseline records).

The deprecation-alias tests for the ``token=`` → ``guard=`` and
``manager=`` → ``reclaimer=`` renames live here too: the rename shipped
in the same API redesign.
"""

from __future__ import annotations

import pytest

from repro.bench.scenarios import (
    baseline_entry,
    build_report,
    get_scenario,
    load_baselines,
    run_scenario,
)
from repro.core import EpochManager
from repro.policy import (
    AdaptiveWindowPolicy,
    DecayEpochPolicy,
    EpochFacts,
    FixedEpochPolicy,
    GraceEpochPolicy,
    PolicySpec,
    StaticWindowPolicy,
    ThresholdEpochPolicy,
    parse_policy,
)
from repro.runtime.axes import MACHINE_AXES, MachineAxes, axis_spec, parse_axis
from repro.structures import InterlockedHashTable, LockFreeStack

BASELINES = "benchmarks/scenario_baselines.json"


def _facts(pending=(), now=0.0, last_pin=None) -> EpochFacts:
    return EpochFacts(now=now, pending=tuple(pending), last_pin=last_pin)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_default_spellings_normalize_to_fixed(self):
        for raw in (None, "", "default", "fixed", "static", "fixed+static"):
            spec = parse_policy(raw)
            assert spec == PolicySpec()
            assert spec.spec() == "fixed"
            assert spec.is_default

    def test_round_trip_is_canonical(self):
        for raw in (
            "threshold:64",
            "decay:128",
            "decay:128:exponential:4",
            "grace:0.0001",
            "adaptive:4..64",
            "threshold:64+adaptive:4..64",
        ):
            spec = parse_policy(raw)
            assert parse_policy(spec.spec()) == spec

    def test_halves_commute(self):
        a = parse_policy("static+threshold:64")
        b = parse_policy("threshold:64+static")
        assert a == b
        assert a.spec() == "threshold:64"

    def test_bare_kinds_get_documented_defaults(self):
        assert parse_policy("threshold") == parse_policy("threshold:64")
        assert parse_policy("grace") == parse_policy("grace:0.0001")
        assert parse_policy("adaptive") == parse_policy("adaptive:2..64")
        assert parse_policy("decay") == parse_policy("decay:64:linear:8")

    def test_mapping_form(self):
        spec = parse_policy({"epoch": "threshold:32", "window": "adaptive:4..8"})
        assert spec.spec() == "threshold:32+adaptive:4..8"
        with pytest.raises(ValueError, match="accepted keys"):
            parse_policy({"epcoh": "threshold:32"})

    def test_passthrough_and_type_errors(self):
        spec = PolicySpec(epoch_kind="threshold", epoch_param=9)
        assert parse_policy(spec) is spec
        with pytest.raises(ValueError, match="string, mapping, or PolicySpec"):
            parse_policy(3.14)

    def test_unknown_kind_lists_valid_names(self):
        with pytest.raises(ValueError) as exc:
            parse_policy("bogus:3")
        for name in ("fixed", "threshold", "decay", "grace", "static", "adaptive"):
            assert name in str(exc.value)

    def test_duplicate_halves_rejected(self):
        with pytest.raises(ValueError, match="more than one epoch half"):
            parse_policy("threshold:4+grace:0.1")
        with pytest.raises(ValueError, match="more than one window half"):
            parse_policy("static+adaptive:2..4")

    def test_bad_knobs_rejected(self):
        for bad in (
            "fixed:3",  # fixed takes no parameters
            "threshold:0",  # n >= 1
            "threshold:1:2",  # too many knobs
            "grace:0",  # grace > 0
            "decay:64:sigmoid",  # unknown curve
            "decay:64:linear:0",  # horizon >= 1
            "adaptive:64..2",  # lo <= hi
            "adaptive:0..4",  # lo >= 1
            "adaptive:16",  # range must be lo..hi
        ):
            with pytest.raises(ValueError):
                parse_policy(bad)


# ----------------------------------------------------------------------
# epoch-policy unit semantics
# ----------------------------------------------------------------------
class TestEpochPolicies:
    def test_fixed_always_advances(self):
        pol = FixedEpochPolicy()
        assert pol.always_advance
        assert not pol.wants_pin_times
        for _ in range(3):
            assert pol.decide(_facts())
        assert pol.advances == 3 and pol.deferrals == 0

    def test_threshold_gates_on_max_pending(self):
        pol = ThresholdEpochPolicy(8)
        assert not pol.decide(_facts(pending=(7, 3)))
        assert pol.decide(_facts(pending=(3, 8)))  # max, not total
        assert (pol.advances, pol.deferrals) == (1, 1)

    def test_threshold_streak_resets_on_advance(self):
        pol = ThresholdEpochPolicy(10)
        for _ in range(4):
            pol.decide(_facts(pending=(1,)))
        assert pol.streak == 4
        pol.decide(_facts(pending=(10,)))
        assert pol.streak == 0

    def test_decay_linear_reaches_zero_at_horizon(self):
        pol = DecayEpochPolicy(100, "linear", 4)
        # Effective thresholds along the streak: 100, 75, 50, 25 — the
        # pending count of 30 first crosses at the fourth decision.
        decisions = [pol.decide(_facts(pending=(30,))) for _ in range(4)]
        assert decisions == [False, False, False, True]
        assert pol.streak == 0  # the advance reset the decay

    def test_decay_never_defers_past_horizon(self):
        pol = DecayEpochPolicy(10**9, "step", 3)
        decisions = [pol.decide(_facts(pending=(0,))) for _ in range(8)]
        # step holds the full threshold until t >= 1, then forces advance.
        assert decisions == [False, False, False, True, False, False, False, True]

    def test_decay_exponential_curve_shape(self):
        pol = DecayEpochPolicy(100, "exponential", 8)
        assert pol.effective_threshold() == 100
        pol.streak = 2  # t = 0.25 -> 2**-1
        assert pol.effective_threshold() == 50
        pol.streak = 8
        assert pol.effective_threshold() == 0

    def test_grace_holds_epoch_open(self):
        pol = GraceEpochPolicy(1e-3)
        assert pol.wants_pin_times
        assert pol.decide(_facts(now=0.0, last_pin=None))  # nothing pinned yet
        assert not pol.decide(_facts(now=1.0005, last_pin=1.0))
        assert pol.decide(_facts(now=1.002, last_pin=1.0))

    def test_decisions_are_pure_functions_of_facts(self):
        """Two instances fed the same fact sequence decide identically."""
        seq = [(i * 7 % 13,) for i in range(20)]
        a = DecayEpochPolicy(8, "linear", 4)
        b = DecayEpochPolicy(8, "linear", 4)
        da = [a.decide(_facts(pending=p)) for p in seq]
        db = [b.decide(_facts(pending=p)) for p in seq]
        assert da == db


# ----------------------------------------------------------------------
# window-policy unit semantics
# ----------------------------------------------------------------------
class TestWindowPolicies:
    def test_static_never_moves(self):
        pol = StaticWindowPolicy(16)
        pol.observe(count=16, window=16, queue_delay=9.9, marginal=0.1)
        assert pol.tick() == 16
        assert not pol.dynamic

    def test_adaptive_grows_on_any_full_batch(self):
        pol = AdaptiveWindowPolicy(16, 2, 64)
        # A never-fillable stream (free_grouped-shaped) must not veto growth.
        pol.observe(count=4, window=16, queue_delay=0.0, marginal=0.5)
        pol.observe(count=16, window=16, queue_delay=0.0, marginal=0.5)
        assert pol.tick() == 32
        assert pol.grows == 1

    def test_adaptive_shrinks_when_queueing_dominates(self):
        pol = AdaptiveWindowPolicy(16, 2, 64)
        pol.observe(count=16, window=16, queue_delay=2.0, marginal=0.5)
        assert pol.tick() == 8  # shrink wins over the full batch
        assert pol.shrinks == 1

    def test_adaptive_clamps_to_bounds(self):
        pol = AdaptiveWindowPolicy(64, 2, 64)
        pol.observe(count=64, window=64, queue_delay=0.0, marginal=0.5)
        assert pol.tick() == 64  # already at hi
        pol = AdaptiveWindowPolicy(2, 2, 64)
        pol.observe(count=1, window=2, queue_delay=2.0, marginal=0.5)
        assert pol.tick() == 2  # already at lo

    def test_adaptive_idle_tick_is_noop(self):
        pol = AdaptiveWindowPolicy(16, 2, 64)
        assert pol.tick() == 16
        assert pol.ticks == 0

    def test_adaptive_seed_clamped_into_bounds(self):
        assert AdaptiveWindowPolicy(128, 2, 64).current == 64
        assert AdaptiveWindowPolicy(1, 2, 64).current == 2
        with pytest.raises(ValueError, match="1 <= lo <= hi"):
            AdaptiveWindowPolicy(16, 8, 4)

    def test_observe_folds_commute(self):
        """Accumulation is order-independent (the concurrency contract)."""
        obs = [
            dict(count=16, window=16, queue_delay=0.5, marginal=0.2),
            dict(count=3, window=16, queue_delay=0.0, marginal=0.9),
            dict(count=16, window=16, queue_delay=0.1, marginal=0.4),
        ]
        a = AdaptiveWindowPolicy(16, 2, 64)
        b = AdaptiveWindowPolicy(16, 2, 64)
        for o in obs:
            a.observe(**o)
        for o in reversed(obs):
            b.observe(**o)
        assert a.tick() == b.tick()


# ----------------------------------------------------------------------
# the machine-axis layer
# ----------------------------------------------------------------------
class TestMachineAxes:
    def test_every_axis_round_trips(self):
        axes = MachineAxes.parse(
            num_locales=8,
            reclaimer="hp",
            topology="hier:2x2",
            aggregation=16,
            engine="compiled",
            policy="threshold:32+adaptive:4..32",
        )
        spec = axes.spec()
        again = MachineAxes.parse(num_locales=8, **spec)
        assert again.spec() == spec

    def test_defaults(self):
        spec = MachineAxes.parse(num_locales=4).spec()
        assert spec["reclaimer"] == "ebr"
        assert spec["engine"] == "interpreted"
        assert spec["policy"] == "fixed"

    def test_unknown_axis_name_lists_axes(self):
        with pytest.raises(ValueError) as exc:
            parse_axis("colour", "red")
        assert "unknown machine axis" in str(exc.value)
        for name in MACHINE_AXES:
            assert name in str(exc.value)

    def test_unknown_axis_value_lists_valid_names(self):
        with pytest.raises(ValueError, match="'ebr'"):
            parse_axis("reclaimer", "garbage")
        with pytest.raises(ValueError, match="'interpreted'"):
            parse_axis("engine", "jit")

    def test_topology_requires_locales(self):
        with pytest.raises(ValueError, match="num_locales"):
            parse_axis("topology", "flat")
        topo = parse_axis("topology", "hier:2x2", num_locales=8)
        assert axis_spec("topology", topo) == "hier:2x2"

    def test_policy_axis_parses_through_parse_policy(self):
        pol = parse_axis("policy", "grace:0.001")
        assert isinstance(pol, PolicySpec)
        assert axis_spec("policy", pol) == "grace:0.001"

    def test_policy_mismatch_makes_baseline_incomparable(self):
        run = run_scenario(
            get_scenario("queue-churn").with_measure(ops_scale=0.02)
        )
        baselines = {"queue-churn": baseline_entry(run)}
        baselines["queue-churn"]["policy"] = "threshold:64"
        report = build_report([run], baselines=baselines)
        entry = report["scenarios"]["queue-churn"]["regression"]
        assert entry["status"] == "incomparable"
        assert "policy" in str(entry)


# ----------------------------------------------------------------------
# end-to-end determinism (the acceptance criteria, full strength)
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize(
        "name",
        [
            "policy-sweep-hier-threshold",
            "policy-sweep-hier-decay",
            "policy-sweep-hier-grace",
            "policy-sweep-dragonfly-adaptive",
        ],
    )
    def test_decisions_identical_across_repeats_and_pools(self, name):
        """Bit-identical decisions across repeats and pools {1, 2, 4, 8}.

        ``repeats=2`` makes the runner itself verify run-to-run equality;
        the loop then checks the four pool sizes against each other,
        including the policy decision counters and the final window.
        """
        base = get_scenario(name).with_measure(ops_scale=0.25, repeats=2)
        results = []
        for pool in (1, 2, 4, 8):
            run = run_scenario(base.with_topology(worker_pool_size=pool))
            em = run.result.extra.get("em", {})
            results.append(
                (
                    run.result.elapsed,
                    run.result.operations,
                    dict(run.result.comm),
                    em.get("advances"),
                    em.get("policy_deferrals"),
                    em.get("window"),
                )
            )
        assert all(r == results[0] for r in results), (
            f"{name} decisions depend on pool size: {results}"
        )

    def test_engaged_default_reproduces_shipped_baseline(self):
        """``--policy fixed`` must be bit-identical to leaving it unset."""
        run = run_scenario(
            get_scenario("queue-churn").with_topology(policy="fixed+static")
        )
        report = build_report([run], baselines=load_baselines(BASELINES))
        entry = report["scenarios"]["queue-churn"]["regression"]
        assert entry["status"] == "match", entry

    @pytest.mark.parametrize(
        "name",
        ["policy-sweep-hier-threshold", "policy-sweep-dragonfly-adaptive"],
    )
    def test_policy_sweeps_reproduce_shipped_baselines(self, name):
        run = run_scenario(get_scenario(name))
        report = build_report([run], baselines=load_baselines(BASELINES))
        entry = report["scenarios"][name]["regression"]
        assert entry["status"] == "match", entry

    def test_adaptive_beats_its_static_twin(self):
        """The head-to-head the sweep baselines record: same machine, same
        workload, window free to grow — strictly less virtual time."""
        static = run_scenario(get_scenario("policy-sweep-dragonfly-w16"))
        adaptive = run_scenario(get_scenario("policy-sweep-dragonfly-adaptive"))
        assert adaptive.result.elapsed < static.result.elapsed
        assert adaptive.result.extra["em"]["window"] > 16

    def test_policy_decisions_change_behaviour(self):
        """A deferring threshold policy must actually skip root scans."""
        base = get_scenario("policy-sweep-hier-threshold")
        fixed = run_scenario(base.with_topology(policy="fixed"))
        gated = run_scenario(base)
        assert gated.result.extra["em"]["policy_deferrals"] > 0
        assert gated.result.extra["em"]["reclaims"] < fixed.result.extra["em"]["reclaims"]


# ----------------------------------------------------------------------
# deprecation aliases (the same API redesign's rename)
# ----------------------------------------------------------------------
class TestDeprecationAliases:
    def test_structures_token_alias_warns_and_works(self, rt):
        def main():
            em = EpochManager(rt)
            stack = LockFreeStack(rt)
            stack.push(1)
            tok = em.register()
            tok.pin()
            with pytest.warns(DeprecationWarning, match="'token'.*'guard'"):
                assert stack.pop(token=tok) == 1
            tok.unpin()
            tok.unregister()
            em.destroy()

        rt.run(main)

    def test_guard_spelling_is_silent(self, rt, recwarn):
        def main():
            em = EpochManager(rt)
            stack = LockFreeStack(rt)
            stack.push(2)
            tok = em.register()
            tok.pin()
            assert stack.pop(guard=tok) == 2
            tok.unpin()
            tok.unregister()
            em.destroy()

        rt.run(main)
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_both_spellings_rejected(self, rt):
        def main():
            em = EpochManager(rt)
            stack = LockFreeStack(rt)
            stack.push(3)
            tok = em.register()
            tok.pin()
            with pytest.raises(TypeError, match="deprecated alias"):
                stack.pop(tok, token=tok)
            tok.unpin()
            tok.unregister()
            em.destroy()

        rt.run(main)

    def test_hash_table_manager_alias_warns_and_wraps(self, rt):
        em = EpochManager(rt)
        with pytest.warns(DeprecationWarning, match="'manager'.*'reclaimer'"):
            table = InterlockedHashTable(rt, buckets=8, manager=em)
        assert table.manager is em  # legacy accessor still works

    def test_hash_table_both_spellings_rejected(self, rt):
        from repro.reclaim import EBRReclaimer

        em = EpochManager(rt)
        rec = EBRReclaimer(rt, manager=em)
        with pytest.raises(TypeError, match="deprecated alias"):
            InterlockedHashTable(rt, manager=em, reclaimer=rec)
