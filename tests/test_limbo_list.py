"""Tests for the wait-free limbo list and its node-recycling pool."""

from __future__ import annotations

import threading

import pytest

from repro.core.limbo_list import LimboList, NodePool
from repro.memory import GlobalAddress
from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(num_locales=1, network="none")


@pytest.fixture
def pool(rt):
    return NodePool(rt, 0)


@pytest.fixture
def limbo(rt, pool):
    return LimboList(rt, 0, pool)


def A(i: int) -> GlobalAddress:
    return GlobalAddress(0, 0x1000 + 16 * i)


class TestNodePool:
    def test_get_allocates_when_empty(self, pool):
        node = pool.get("v")
        assert node.val == "v"
        assert node.next is None
        assert pool.allocated == 1

    def test_put_then_get_recycles(self, pool):
        node = pool.get("a")
        pool.put(node)
        again = pool.get("b")
        assert again is node
        assert again.val == "b"
        assert pool.allocated == 1  # no second allocation

    def test_recycled_node_is_clean(self, pool):
        n1 = pool.get("a")
        n2 = pool.get("b")
        n1.next = n2  # simulate chain linkage
        pool.put(n1)
        got = pool.get("c")
        assert got.next is None  # stale link scrubbed

    def test_drain_count(self, pool):
        nodes = [pool.get(i) for i in range(5)]
        for n in nodes:
            pool.put(n)
        assert pool.drain_count() == 5

    def test_concurrent_get_put_conserves_nodes(self, pool):
        """No node is ever handed to two owners at once."""
        errors = []

        def worker(wid):
            try:
                mine = []
                for i in range(200):
                    n = pool.get((wid, i))
                    assert n.val == (wid, i)  # nobody else overwrote it
                    mine.append(n)
                    if len(mine) >= 4:
                        pool.put(mine.pop(0))
                for n in mine:
                    pool.put(n)
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        ts = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert not errors


class TestLimboListSequential:
    def test_push_then_collect(self, limbo):
        for i in range(10):
            limbo.push(A(i))
        got = limbo.collect()
        # LIFO order: last pushed first.
        assert got == [A(i) for i in reversed(range(10))]

    def test_pop_all_empties_the_list(self, limbo):
        limbo.push(A(0))
        assert limbo.pop_all() is not None
        assert limbo.pop_all() is None
        assert limbo.is_empty_snapshot()

    def test_drain_recycles_nodes(self, limbo, pool):
        for i in range(8):
            limbo.push(A(i))
        list(limbo.drain())
        # All 8 nodes back in the pool.
        assert pool.drain_count() == 8
        # The next 8 pushes allocate nothing new.
        before = pool.allocated
        for i in range(8):
            limbo.push(A(i))
        assert pool.allocated == before

    def test_push_is_one_exchange_no_retry(self, rt, limbo):
        """Wait-freedom witness: each push costs a bounded op count."""

        def main():
            rt.reset_measurements()
            limbo.push(A(1))
            return rt.comm_totals()["local_amo"]

        ops = rt.run(main)
        # pool get (<=2 atomics) + head exchange (1) — strictly bounded.
        assert ops <= 4

    def test_interleaved_push_collect_phases(self, limbo):
        limbo.push(A(0))
        assert limbo.collect() == [A(0)]
        limbo.push(A(1))
        limbo.push(A(2))
        assert limbo.collect() == [A(2), A(1)]


class TestLimboListConcurrent:
    def test_concurrent_pushes_lose_nothing(self, rt):
        """The disjoint-phase contract: push concurrently, drain after."""
        pool = NodePool(rt, 0)
        limbo = LimboList(rt, 0, pool)
        N, T = 300, 8

        def worker(wid):
            for i in range(N):
                limbo.push((wid, i))

        ts = [threading.Thread(target=worker, args=(w,)) for w in range(T)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        got = limbo.collect()
        assert len(got) == N * T
        assert set(got) == {(w, i) for w in range(T) for i in range(N)}

    def test_per_producer_lifo_order_is_preserved(self, rt):
        """Within one producer, later pushes appear earlier in the chain."""
        pool = NodePool(rt, 0)
        limbo = LimboList(rt, 0, pool)

        def worker(wid):
            for i in range(100):
                limbo.push((wid, i))

        ts = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        got = limbo.collect()
        for wid in range(4):
            seq = [i for (w, i) in got if w == wid]
            assert seq == sorted(seq, reverse=True)
