"""The pluggable reclamation subsystem: protocol conformance + semantics.

Three layers of coverage:

1. **Guard-protocol conformance**, parametrized over all four schemes:
   the lifecycle (register/pin/retire/unpin/reclaim/clear/destroy),
   unguarded-access detection (retire without a pin), double-retire
   surfacing as :class:`DoubleFreeError`, use-after-destroy raising
   :class:`ReclaimerError`, locale binding, context-manager cleanup, and
   orphan adoption on unregister.
2. **Scheme-specific semantics**: EBR-adapter bit-identity against the
   raw ``EpochManager``; hazard-pointer protection, bounded garbage and
   scan behaviour; QSBR quiescent-point gating; IBR's stalled-reader
   immunity (the property that distinguishes it from EBR).
3. **Factory plumbing**: ``make_reclaimer`` / ``default_reclaimer`` /
   ``RuntimeConfig.reclaimer`` / ``TopologySpec.reclaimer`` validation.
"""

from __future__ import annotations

import pytest

from repro.core import EpochManager
from repro.errors import (
    DoubleFreeError,
    ReclaimerError,
    TokenStateError,
)
from repro.reclaim import (
    RECLAIMER_SCHEMES,
    EBRReclaimer,
    HazardPointerReclaimer,
    IntervalReclaimer,
    QSBRReclaimer,
    default_reclaimer,
    make_reclaimer,
)
from repro.runtime import Runtime, RuntimeConfig

SCHEMES = list(RECLAIMER_SCHEMES)


@pytest.fixture
def rt():
    return Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


def _reclaim_hard(rec):
    """Drive any scheme through enough quiescent rounds to drain it."""
    for _ in range(4):
        rec.phase_boundary()
        rec.try_reclaim()


def _block(guard, addr=None):
    """Make ``guard`` protect ``addr`` in the scheme-appropriate way.

    Region-based schemes (ebr/qsbr/ibr) block via the pin alone; hazard
    pointers need the address published in a slot.
    """
    guard.pin()
    if guard.needs_protect and addr is not None:
        guard.protect(addr)


# ---------------------------------------------------------------------------
# 1. guard-protocol conformance
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scheme", SCHEMES)
class TestGuardProtocolConformance:
    def test_full_lifecycle_frees_everything(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            addrs = []
            guard.pin()
            for i in range(20):
                a = rt.new_obj(i)
                addrs.append(a)
                guard.defer_delete(a)
            guard.unpin()
            assert rec.pending_count() <= 20  # hp may have auto-scanned
            _reclaim_hard(rec)
            assert all(not rt.is_live(a) for a in addrs)
            assert rec.pending_count() == 0
            stats = rec.stats()
            assert stats["retired"] == 20
            assert stats["freed"] == 20
            guard.unregister()
            rec.destroy()

        rt.run(main)

    def test_defer_without_pin_is_detected(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            addr = rt.new_obj("x")
            with pytest.raises(TokenStateError):
                guard.defer_delete(addr)
            guard.pin()
            guard.defer_delete(addr)  # pinned: fine
            guard.unpin()
            rec.destroy()

        rt.run(main)

    def test_double_retire_surfaces_as_double_free(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            addr = rt.new_obj("victim")
            guard.pin()
            guard.defer_delete(addr)
            guard.defer_delete(addr)  # the protocol violation
            guard.unpin()
            with pytest.raises(DoubleFreeError):
                _reclaim_hard(rec)
                rec.clear()

        rt.run(main)

    def test_use_after_destroy_raises(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            rec.destroy()
            rec.destroy()  # idempotent
            with pytest.raises(ReclaimerError):
                rec.register()
            with pytest.raises(ReclaimerError):
                rec.try_reclaim()
            with pytest.raises(ReclaimerError):
                rec.clear()

        rt.run(main)

    def test_guard_unusable_after_unregister(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            guard.unregister()
            guard.unregister()  # idempotent
            with pytest.raises(TokenStateError):
                guard.pin()
            rec.destroy()

        rt.run(main)

    def test_context_manager_unregisters(self, rt, scheme):
        def main():
            rec = make_reclaimer(rt, scheme)
            with rec.register() as guard:
                guard.pin()
                guard.unpin()
            assert not guard.is_registered
            rec.destroy()

        rt.run(main)

    def test_unregister_adopts_pending_retirements(self, rt, scheme):
        """A dying guard's garbage is never leaked: clear() frees it."""

        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            addrs = []
            guard.pin()
            for i in range(5):
                a = rt.new_obj(i)
                addrs.append(a)
                guard.defer_delete(a)
            guard.unpin()
            guard.unregister()
            assert rec.clear() == 5
            assert all(not rt.is_live(a) for a in addrs)
            rec.destroy()

        rt.run(main)

    def test_locale_binding(self, rt, scheme):
        """Guards are locale-bound, exactly like EBR tokens."""

        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()  # registered on locale 0
            with rt.on(1):
                with pytest.raises(TokenStateError):
                    guard.pin()
            guard.pin()
            guard.unpin()
            rec.destroy()

        rt.run(main)

    def test_protect_returns_address(self, rt, scheme):
        """protect() chains for every scheme (no-op where not needed)."""

        def main():
            rec = make_reclaimer(rt, scheme)
            guard = rec.register()
            addr = rt.new_obj("p")
            guard.pin()
            assert guard.protect(addr) == addr
            guard.unpin()
            rt.free(addr)
            rec.destroy()

        rt.run(main)

    def test_blocked_while_protected_then_freed(self, rt, scheme):
        """The core safety property, scheme-appropriately provoked.

        A guard that still protects an object (pin for the region-based
        schemes, pin+hazard for HP) keeps it live through any number of
        reclaim attempts; dropping the protection lets it drain.
        """

        def main():
            rec = make_reclaimer(rt, scheme)
            blocker = rec.register()
            worker = rec.register()
            addr = rt.new_obj("victim")
            _block(blocker, addr)
            worker.pin()
            worker.defer_delete(addr)
            worker.unpin()
            for _ in range(4):
                rec.try_reclaim()
            assert rt.is_live(addr)
            blocker.unpin()
            _reclaim_hard(rec)
            assert not rt.is_live(addr)
            rec.destroy()

        rt.run(main)


# ---------------------------------------------------------------------------
# 2a. EBR adapter: bit-identical to the raw EpochManager
# ---------------------------------------------------------------------------


class TestEBRAdapterEquivalence:
    def _drive(self, rt, mgr):
        """A deterministic pin/defer/unpin workload with root reclaims.

        Follows the workload discipline (phase-exclusive, root-driven
        tryReclaim) so two runs of the *same* manager are bit-identical —
        which is what makes the raw-vs-adapted comparison meaningful.
        """

        def main():
            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()

            rt.reset_measurements()
            with rt.timed() as t:
                for phase in range(4):
                    rt.forall(range(phase * 128, (phase + 1) * 128), body,
                              task_init=mgr.register, tasks_per_locale=1)
                    mgr.try_reclaim()
                mgr.clear()
            return t.elapsed, rt.comm_totals()

        return rt.run(main)

    def test_virtual_results_identical_to_raw_manager(self):
        rt1 = Runtime(num_locales=4, network="ugni", tasks_per_locale=1)
        raw = self._drive(rt1, EpochManager(rt1))
        rt1.close()
        rt2 = Runtime(num_locales=4, network="ugni", tasks_per_locale=1)
        adapted = self._drive(rt2, EBRReclaimer(rt2))
        rt2.close()
        assert raw == adapted  # elapsed AND comm totals, bit-identical

    def test_adapter_reuses_existing_manager_without_owning_it(self, rt):
        def main():
            em = EpochManager(rt)
            rec = EBRReclaimer(rt, manager=em)
            tok = rec.register()
            holder = em.register()  # another user of the shared manager
            holder.pin()
            addr = rt.new_obj("x")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()
            rec.destroy()  # must NOT touch the shared em's limbo lists
            assert rt.is_live(addr)  # the holder's pin still guards it
            em.register()  # the shared manager is still fully usable
            holder.unpin()
            em.destroy()
            assert not rt.is_live(addr)

        rt.run(main)

    def test_stats_carry_epoch_manager_counters(self, rt):
        def main():
            rec = EBRReclaimer(rt)
            tok = rec.register()
            tok.pin()
            tok.defer_delete(rt.new_obj("x"))
            tok.unpin()
            rec.try_reclaim()
            stats = rec.stats()
            assert stats["scheme"] == "ebr"
            assert "advances" in stats and "reclaim_attempts" in stats
            assert stats["retired"] == 1
            rec.destroy()

        rt.run(main)


# ---------------------------------------------------------------------------
# 2b. hazard pointers
# ---------------------------------------------------------------------------


class TestHazardPointers:
    def test_hazard_slot_blocks_exactly_its_address(self, rt):
        def main():
            rec = HazardPointerReclaimer(rt, scan_threshold=1)
            reader = rec.register()
            worker = rec.register()
            protected = rt.new_obj("protected")
            bystander = rt.new_obj("bystander")
            reader.pin()
            reader.protect(protected)
            worker.pin()
            worker.defer_delete(protected)
            worker.defer_delete(bystander)
            worker.unpin()
            rec.try_reclaim()
            # Only the hazarded address survives: per-address protection,
            # not whole-region (the HP/EBR distinction).
            assert rt.is_live(protected)
            assert not rt.is_live(bystander)
            reader.unpin()  # clears the slot
            rec.try_reclaim()
            assert not rt.is_live(protected)
            rec.destroy()

        rt.run(main)

    def test_bounded_garbage(self, rt):
        """Unreclaimed garbage never exceeds threshold + live hazards."""

        def main():
            rec = HazardPointerReclaimer(rt, scan_threshold=16)
            guard = rec.register()
            guard.pin()
            peak = 0
            for i in range(400):
                guard.defer_delete(rt.new_obj(i))
                peak = max(peak, rec.pending_count())
            guard.unpin()
            assert peak <= 16 + rec.slots_per_guard
            rec.clear()
            rec.destroy()

        rt.run(main)

    def test_protect_requires_pin(self, rt):
        def main():
            rec = HazardPointerReclaimer(rt)
            guard = rec.register()
            addr = rt.new_obj("x")
            with pytest.raises(TokenStateError):
                guard.protect(addr)
            guard.pin()
            guard.protect(addr)
            guard.unpin()
            rt.free(addr)
            rec.destroy()

        rt.run(main)

    def test_stack_pop_protect_validate_survives_concurrent_churn(self, rt):
        """The refactored stack + HP under real concurrency: no UAF."""
        from repro.structures import LockFreeStack

        def main():
            rec = HazardPointerReclaimer(rt, scan_threshold=8)
            st = LockFreeStack(rt, aba_protection=True)

            def body(i, guard):
                guard.pin()
                if i % 2 == 0:
                    st.push(i)
                else:
                    st.try_pop(guard)
                guard.unpin()

            rt.forall(range(600), body, task_init=rec.register,
                      tasks_per_locale=4)
            st.drain()
            rec.clear()
            rec.destroy()

        rt.run(main)  # any use-after-free raises out of here

    def test_list_helping_preserves_predecessor_hazard(self, rt):
        """Unlinking a marked node must not clobber the prev hazard.

        Regression: the hand-over-hand parity used to flip on *every*
        protect, so the successor that replaces a helped-out marked node
        landed in the slot still guarding the predecessor — a concurrent
        scan could then free the predecessor mid-traversal.  The marked
        node's replacement must reuse the marked node's own slot.
        """
        from repro.memory.compression import compress
        from repro.structures import LockFreeOrderedList
        from repro.structures.harris_list import _pack, _unpack

        def main():
            rec = HazardPointerReclaimer(rt)
            lst = LockFreeOrderedList(rt)
            guard = rec.register()
            guard.pin()
            lst.insert(1, token=guard)
            lst.insert(2, token=guard)
            lst.insert(3, token=guard)
            # Stage a logically-deleted-but-not-unlinked node 2, as if a
            # remover stalled between its two phases.
            addr1, _ = _unpack(lst._head_node.next.peek())
            node1 = rt.deref(addr1)
            addr2, _ = _unpack(node1.next.peek())
            node2 = rt.deref(addr2)
            addr3, _ = _unpack(node2.next.peek())
            assert node2.next.compare_and_swap(
                _pack(addr3, False), _pack(addr3, True)
            )
            # A traversal past node 2 helps unlink it.  Afterwards the
            # final window is (prev=node1, cur=node3): BOTH must still be
            # hazard-protected, in different slots.
            assert lst.insert(4, token=guard)
            hazards = {cell.peek() for cell in guard.slots}
            assert compress(addr1) in hazards  # the predecessor survived
            assert compress(addr3) in hazards
            guard.unpin()
            rec.clear()
            rec.destroy()

        rt.run(main)

    def test_rcu_array_shrink_protects_dropped_blocks(self, rt):
        """A reader's block hazard keeps a shrink-dropped block live."""
        from repro.structures import RCUArray

        def main():
            rec = HazardPointerReclaimer(rt, scan_threshold=1)
            arr = RCUArray(rt, 8, block_size=2)
            reader = rec.register()
            writer = rec.register()
            reader.pin()
            arr.write(7, "tail", token=reader)
            # Reader resolves index 7 and (post-handshake) holds hazards
            # on the descriptor and its block; a concurrent shrink drops
            # that block and its threshold-1 scan runs immediately.
            assert arr.read(7, token=reader) == "tail"
            writer.pin()
            arr.resize(2, token=writer)
            writer.unpin()
            # The dropped block was retired but must still be pending:
            # the reader's slot-1 hazard names it.
            assert rec.pending_count() >= 1
            reader.unpin()
            rec.clear()
            arr.destroy()
            rec.destroy()

        rt.run(main)

    def test_scan_counter_and_stats(self, rt):
        def main():
            rec = HazardPointerReclaimer(rt, scan_threshold=4)
            guard = rec.register()
            guard.pin()
            for i in range(16):
                guard.defer_delete(rt.new_obj(i))
            guard.unpin()
            stats = rec.stats()
            assert stats["scheme"] == "hp"
            assert stats["scans"] >= 4
            assert stats["scan_threshold"] == 4
            rec.clear()
            rec.destroy()

        rt.run(main)

    def test_constructor_validation(self, rt):
        with pytest.raises(ValueError):
            HazardPointerReclaimer(rt, slots_per_guard=0)
        with pytest.raises(ValueError):
            HazardPointerReclaimer(rt, scan_threshold=0)


# ---------------------------------------------------------------------------
# 2c. QSBR
# ---------------------------------------------------------------------------


class TestQSBR:
    def test_nothing_frees_until_all_guards_quiesce(self, rt):
        def main():
            rec = QSBRReclaimer(rt)
            a = rec.register()
            b = rec.register()
            a.pin()
            addr = rt.new_obj("x")
            a.defer_delete(addr)
            a.unpin()
            a.quiesce()
            # b has not quiesced since the retirement: blocked.
            rec.try_reclaim()
            assert rt.is_live(addr)
            b.quiesce()
            a.quiesce()
            rec.try_reclaim()
            rec.try_reclaim()
            assert not rt.is_live(addr)
            rec.destroy()

        rt.run(main)

    def test_quiesce_while_pinned_is_rejected(self, rt):
        def main():
            rec = QSBRReclaimer(rt)
            guard = rec.register()
            guard.pin()
            with pytest.raises(TokenStateError):
                guard.quiesce()
            guard.unpin()
            guard.quiesce()
            rec.destroy()

        rt.run(main)

    def test_phase_boundary_skips_pinned_guards(self, rt):
        def main():
            rec = QSBRReclaimer(rt)
            stuck = rec.register()
            fine = rec.register()
            stuck.pin()
            addr = rt.new_obj("x")
            stuck.defer_delete(addr)
            rec.phase_boundary()  # marks `fine` quiescent, skips `stuck`
            rec.try_reclaim()
            assert rt.is_live(addr)  # the pinned guard blocks its garbage
            stuck.unpin()
            _reclaim_hard(rec)
            assert not rt.is_live(addr)
            rec.destroy()

        rt.run(main)


# ---------------------------------------------------------------------------
# 2d. IBR
# ---------------------------------------------------------------------------


class TestIntervalReclamation:
    def test_stalled_reader_does_not_block_older_garbage(self, rt):
        """The IBR selling point: eras advance past a stuck pin.

        Under EBR the same stuck pin freezes the epoch and blocks *all*
        reclamation; under IBR only garbage retired at-or-after the
        reader's birth era is held back.
        """

        def main():
            rec = IntervalReclaimer(rt)
            worker = rec.register()
            staller = rec.register()
            # Era 1: retire `old` (tag 1) while the worker stays pinned,
            # so the first advance cannot free it yet.
            worker.pin()
            old = rt.new_obj("old")
            worker.defer_delete(old)
            assert rec.try_reclaim()  # era 1 -> 2; old held (worker born 1)
            assert rt.is_live(old)
            # The staller pins at era 2 and never moves again.
            staller.pin()
            worker.unpin()
            # Era 2: new garbage arrives after the staller's birth.
            worker.pin()
            new = rt.new_obj("new")
            worker.defer_delete(new)
            worker.unpin()
            assert rec.try_reclaim()  # era 2 -> 3, despite the stall
            assert not rt.is_live(old)  # pre-birth garbage drained
            assert rt.is_live(new)  # post-birth garbage held
            for _ in range(3):
                rec.try_reclaim()
            assert rt.is_live(new)  # held indefinitely while pinned
            staller.unpin()
            rec.try_reclaim()
            assert not rt.is_live(new)
            rec.destroy()

        rt.run(main)

    def test_ebr_contrast_stuck_pin_blocks_everything(self, rt):
        """Companion to the above: EBR cannot advance past the stall."""

        def main():
            em = EpochManager(rt)
            stuck = em.register()
            worker = em.register()
            stuck.pin()
            em.try_reclaim()  # one advance is allowed (stuck is current)
            worker.pin()
            addr = rt.new_obj("x")
            worker.defer_delete(addr)
            worker.unpin()
            for _ in range(5):
                em.try_reclaim()
            assert rt.is_live(addr)  # EBR: frozen behind the stale pin
            stuck.unpin()
            em.destroy()

        rt.run(main)

    def test_era_advances_monotonically(self, rt):
        def main():
            rec = IntervalReclaimer(rt)
            before = rec.current_era()
            rec.try_reclaim()
            rec.try_reclaim()
            assert rec.current_era() == before + 2
            rec.destroy()

        rt.run(main)


# ---------------------------------------------------------------------------
# 3. factory / config plumbing
# ---------------------------------------------------------------------------


class TestFactoryPlumbing:
    def test_make_reclaimer_rejects_unknown_scheme(self, rt):
        with pytest.raises(ReclaimerError):
            make_reclaimer(rt, "nope")

    def test_default_reclaimer_follows_runtime_config(self):
        for scheme, cls in (
            ("ebr", EBRReclaimer),
            ("hp", HazardPointerReclaimer),
            ("qsbr", QSBRReclaimer),
            ("ibr", IntervalReclaimer),
        ):
            rt = Runtime(config=RuntimeConfig(num_locales=2, reclaimer=scheme))
            assert isinstance(default_reclaimer(rt), cls)
            rt.close()

    def test_runtime_config_validates_scheme(self):
        with pytest.raises(ValueError):
            RuntimeConfig(num_locales=2, reclaimer="bogus")

    def test_topology_spec_validates_scheme(self):
        from repro.bench.scenarios import ScenarioError, TopologySpec

        with pytest.raises(ScenarioError):
            TopologySpec(locales=2, reclaimer="bogus")
        assert TopologySpec(locales=2, reclaimer="hp").as_dict()["reclaimer"] == "hp"

    def test_hash_table_default_uses_configured_scheme(self):
        from repro.structures import InterlockedHashTable

        rt = Runtime(config=RuntimeConfig(num_locales=2, reclaimer="hp"))

        def main():
            table = InterlockedHashTable(rt, buckets=8)
            assert isinstance(table.reclaimer, HazardPointerReclaimer)
            guard = table.reclaimer.register()
            guard.pin()
            table.put("k", 1, guard)
            assert table.get("k", token=guard) == 1
            guard.unpin()
            table.destroy()

        rt.run(main)
        rt.close()

    def test_hash_table_rejects_both_manager_and_reclaimer(self, rt):
        from repro.structures import InterlockedHashTable

        def main():
            em = EpochManager(rt)
            rec = EBRReclaimer(rt, manager=em)
            with pytest.raises(TypeError):
                InterlockedHashTable(rt, manager=em, reclaimer=rec)

        rt.run(main)
