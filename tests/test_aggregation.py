"""Uplink message aggregation (repro.comm.aggregation; docs/AGGREGATION.md).

Covers the ISSUE 5 checklist:

* window validation errors (spec parsing, RuntimeConfig, TopologySpec);
* flat-topology exactness — the batched path is bit-identical to the
  legacy per-op path on flat machines (and with the window closed,
  everywhere), verified against the shipped scenario baselines;
* domain-ordered scan equivalence — same frees, fewer uplink crossings,
  lower virtual time under hierarchy;
* determinism of aggregated runs across repeats and worker-pool sizes
  {1, 2, 4, 8};
* socket-shared limbo accounting exactness (one EpochManager instance
  per coherence domain);
* ragged shapes — partial-node uplink grouping (hier:2x3 over 8
  locales) on the aggregated path;
* the scenario/CLI surface (baseline comparability axis, --filter,
  --aggregation x --update-baselines exclusion).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench import scenarios
from repro.bench.__main__ import scenario_main
from repro.bench.workloads import run_epoch_mixed
from repro.comm.aggregation import AggregationSpec, parse_aggregation
from repro.core.epoch_manager import EpochManager
from repro.errors import TokenStateError
from repro.reclaim import make_reclaimer
from repro.runtime.config import RuntimeConfig
from repro.runtime.runtime import Runtime

BASELINES = Path(__file__).resolve().parents[1] / "benchmarks" / "scenario_baselines.json"


def _hier_runtime(window: int, *, topology: str = "hier:2x2", **kw) -> Runtime:
    return Runtime(
        config=RuntimeConfig.from_topology(
            locales=8, topology=topology, aggregation=window, **kw
        )
    )


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_parse_accepted_forms(self):
        assert parse_aggregation(None).window == 1
        assert parse_aggregation("off").window == 1
        assert parse_aggregation(1).window == 1
        assert parse_aggregation(8).window == 8
        assert parse_aggregation("8").window == 8
        assert parse_aggregation({"window": 4}).window == 4
        spec = AggregationSpec(4)
        assert parse_aggregation(spec) is spec
        assert not AggregationSpec(1).enabled
        assert AggregationSpec(2).enabled

    @pytest.mark.parametrize(
        "bad", [0, -3, True, False, 1.5, "nope", "1.5", {"win": 3}, {}, [4]]
    )
    def test_parse_rejections(self, bad):
        with pytest.raises(ValueError):
            parse_aggregation(bad)

    def test_mapping_rejects_extra_keys(self):
        with pytest.raises(ValueError, match="unknown aggregation key"):
            parse_aggregation({"window": 4, "flush": "eager"})

    def test_runtime_config_validates_eagerly(self):
        with pytest.raises(ValueError, match="aggregation window"):
            RuntimeConfig(num_locales=4, aggregation=0)
        cfg = RuntimeConfig(num_locales=4, aggregation="8")
        assert cfg.resolved_aggregation().window == 8

    def test_from_topology_threads_the_window(self):
        cfg = RuntimeConfig.from_topology(
            locales=8, topology="hier:2x2", aggregation=4
        )
        rt = Runtime(config=cfg)
        try:
            assert rt.aggregation.window == 4
            assert rt.network.aggregator.active
        finally:
            rt.close()

    def test_flat_machine_is_never_active(self):
        rt = Runtime(config=RuntimeConfig(num_locales=4, aggregation=16))
        try:
            assert rt.aggregation.window == 16
            # No shared uplinks anywhere on a flat machine: the
            # aggregator is inert by construction.
            assert not rt.network.aggregator.active
        finally:
            rt.close()

    def test_topology_spec_normalizes_and_rejects(self):
        spec = scenarios.TopologySpec(aggregation="off")
        assert spec.aggregation == 1
        spec = scenarios.TopologySpec(aggregation="8")
        assert spec.aggregation == 8
        assert spec.as_dict()["aggregation"] == 8
        assert "aggregation" not in scenarios.TopologySpec().as_dict()
        with pytest.raises(scenarios.ScenarioError, match="topology.aggregation"):
            scenarios.TopologySpec(aggregation=0)
        with pytest.raises(scenarios.ScenarioError, match="topology.aggregation"):
            scenarios.TopologySpec(aggregation="wide")


# ---------------------------------------------------------------------------
# flat-topology exactness
# ---------------------------------------------------------------------------


class TestFlatExactness:
    #: Flat-machine scenarios spanning all four schemes and both the
    #: epoch and churn generators — the batched path must reproduce
    #: their shipped baselines bit-exactly even with the window open.
    FLAT_SCENARIOS = (
        "paper-reclaim-endonly",
        "reclaim-hotspot-hp",
        "reclaim-read-mostly-qsbr",
        "reclaim-churn-ibr",
    )

    @pytest.mark.parametrize("name", FLAT_SCENARIOS)
    def test_window_open_matches_shipped_baseline(self, name):
        with open(BASELINES) as fh:
            base = json.load(fh)["scenarios"][name]
        spec = scenarios.get_scenario(name).with_topology(aggregation=8)
        run = scenarios.run_scenario(spec)
        assert run.result.elapsed == base["elapsed_virtual_s"]
        assert run.result.operations == base["operations"]
        assert run.result.comm == base["comm"]

    def test_window_open_equals_window_closed_on_flat(self):
        # A quick cross-kind sweep at reduced scale: enabling the window
        # on a flat machine changes nothing at all.
        for name in ("multi-structure", "queue-churn"):
            spec = scenarios.get_scenario(name).with_measure(ops_scale=0.25)
            off = scenarios.run_scenario(spec)
            on = scenarios.run_scenario(spec.with_topology(aggregation=16))
            assert on.result.elapsed == off.result.elapsed
            assert on.result.comm == off.result.comm

    def test_window_closed_is_legacy_under_hierarchy(self):
        # window == 1 on a hierarchical machine: the plan is off, the
        # aggregator inert — the pre-aggregation baselines stay pinned.
        with open(BASELINES) as fh:
            base = json.load(fh)["scenarios"]["topo-hier-reclaim-ebr"]
        run = scenarios.run_scenario(
            scenarios.get_scenario("topo-hier-reclaim-ebr")
        )
        assert run.result.elapsed == base["elapsed_virtual_s"]
        assert run.result.comm == base["comm"]


# ---------------------------------------------------------------------------
# domain-ordered scan equivalence
# ---------------------------------------------------------------------------


def _run_hier_mixed(window: int, reclaimer: str):
    """One epoch_mixed run on hier:2x2; returns (result, uplink serves)."""
    rt = _hier_runtime(window, reclaimer=reclaimer)
    try:
        result = run_epoch_mixed(
            rt,
            ops_per_task=256,
            tasks_per_locale=1,
            write_percent=50,
            remote_percent=50,
            rounds=2,
        )
        serves = sum(p.served for p in rt.network.uplinks.values())
        return result, serves
    finally:
        rt.close()


class TestDomainOrderedEquivalence:
    @pytest.mark.parametrize("scheme", ["ebr", "hp"])
    def test_same_frees_fewer_crossings(self, scheme):
        legacy, legacy_serves = _run_hier_mixed(1, scheme)
        agg, agg_serves = _run_hier_mixed(16, scheme)
        # Same reclamation outcome...
        assert agg.extra["em"]["freed"] == legacy.extra["em"]["freed"]
        assert agg.operations == legacy.operations
        # ...with strictly fewer uplink traversals.
        assert agg_serves < legacy_serves
        # The batching shows up in the per-scheme diagnostics.
        em = agg.extra["em"]
        assert em["uplink_crossings"] > 0
        assert legacy.extra["em"]["uplink_crossings"] == 0

    @pytest.mark.parametrize("scheme", ["ebr", "hp"])
    def test_agg_scenarios_beat_their_pr4_baselines(self, scheme):
        # The acceptance bar: at the registered workload scale the
        # aggregated successors post lower virtual time than the
        # aggregation-off twins (at small scale the domain-ordered
        # traversal's fixed overheads can outweigh the volume-scaled
        # savings — the when-to-tune discipline of docs/AGGREGATION.md —
        # which is why this asserts against the shipped full-scale
        # baselines).
        with open(BASELINES) as fh:
            base = json.load(fh)["scenarios"]
        legacy = base[f"topo-hier-reclaim-{scheme}"]["elapsed_virtual_s"]
        for window in (4, 16):
            agg = base[f"topo-hier-agg-{scheme}-w{window}"]["elapsed_virtual_s"]
            assert agg < legacy

    @pytest.mark.parametrize("scheme", ["qsbr", "ibr"])
    def test_scan_paths_batch_for_every_scheme(self, scheme):
        legacy, legacy_serves = _run_hier_mixed(1, scheme)
        agg, agg_serves = _run_hier_mixed(16, scheme)
        assert agg.extra["em"]["freed"] == legacy.extra["em"]["freed"]
        assert agg_serves < legacy_serves
        assert agg.elapsed < legacy.elapsed
        assert agg.extra["em"]["scan_batches"] > 0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("name", ["topo-hier-agg-ebr-w4", "topo-hier-agg-hp-w4"])
    def test_identical_across_repeats_and_pool_sizes(self, name):
        spec = scenarios.get_scenario(name).with_measure(ops_scale=0.5, repeats=2)
        reference = None
        for pool in (1, 2, 4, 8):
            run = scenarios.run_scenario(
                spec.with_topology(worker_pool_size=pool)
            )
            facts = (run.result.elapsed, run.result.operations, run.result.comm)
            if reference is None:
                reference = facts
            else:
                assert facts == reference, f"pool={pool} diverged for {name}"


# ---------------------------------------------------------------------------
# socket-shared limbo accounting
# ---------------------------------------------------------------------------


class TestSocketSharedAccounting:
    def test_one_instance_per_domain_and_exact_accounting(self):
        rt = _hier_runtime(4)
        try:
            def main():
                em = EpochManager(rt)
                assert em.share_coherent
                # hier:2x2 over 8 locales: sockets {0,1},{2,3},{4,5},{6,7}.
                assert em.instance_locales() == (0, 2, 4, 6)
                assert em.get_privatized_instance(1) is em.get_privatized_instance(0)
                assert em.get_privatized_instance(2) is not em.get_privatized_instance(0)
                # Retire a known count from several locales, then clear:
                # the shared lists must account every object exactly once.
                total = 0
                for lid in (0, 1, 2, 5):
                    with rt.on(lid):
                        tok = em.register()
                        tok.pin()
                        for _ in range(10):
                            tok.defer_delete(rt.new_obj(object()))
                            total += 1
                        tok.unpin()
                        tok.unregister()
                assert em.pending_count() == total
                freed = em.clear()
                assert freed == total
                assert em.pending_count() == 0
                em.destroy()

            rt.run(main)
        finally:
            rt.close()

    def test_ebr_adapter_counts_shared_instances_once(self):
        rt = _hier_runtime(4)
        try:
            def main():
                rec = make_reclaimer(rt, "ebr")
                guard = rec.register()
                guard.pin()
                for _ in range(5):
                    guard.defer_delete(rt.new_obj(object()))
                guard.unpin()
                stats = rec.stats()
                assert stats["retired"] == 5
                assert stats["pending"] == 5
                rec.clear()
                stats = rec.stats()
                assert stats["freed"] == 5
                assert stats["pending"] == 0
                guard.unregister()
                rec.destroy()

            rt.run(main)
        finally:
            rt.close()

    def test_tokens_work_from_socket_siblings_only(self):
        rt = _hier_runtime(4)
        try:
            def main():
                em = EpochManager(rt)
                tok = em.register()  # on locale 0 (socket {0, 1})
                with rt.on(1):
                    tok.pin()  # coherent sibling: allowed
                    tok.unpin()
                with rt.on(2):
                    with pytest.raises(TokenStateError):
                        tok.pin()  # different socket: locale-bound error
                tok.unregister()
                em.destroy()

            rt.run(main)
        finally:
            rt.close()

    def test_share_coherent_off_without_aggregation(self):
        rt = _hier_runtime(1)
        try:
            def main():
                em = EpochManager(rt)
                assert not em.share_coherent
                assert em.instance_locales() == tuple(range(8))
                assert em._plan is None
                # Explicit opt-in works even with the window closed.
                shared = EpochManager(rt, share_coherent=True)
                assert shared.share_coherent
                assert shared._plan is not None
                em.destroy()
                shared.destroy()

            rt.run(main)
        finally:
            rt.close()


# ---------------------------------------------------------------------------
# ragged shapes
# ---------------------------------------------------------------------------


class TestRaggedShapes:
    def test_partial_node_uplink_grouping(self):
        rt = _hier_runtime(4, topology="hier:2x3")
        try:
            topo = rt.topology
            # hier:2x3 over 8 locales: node 0 holds 0-5, node 1 only 6-7
            # (a partial node whose single socket is itself partial).
            assert [topo.uplink_group(lid) for lid in range(8)] == [0] * 6 + [1] * 2
            assert [topo.coherence_domain(lid) for lid in range(8)] == [
                0, 0, 0, 1, 1, 1, 2, 2,
            ]

            def main():
                em = EpochManager(rt)
                assert em.share_coherent
                # Plan: one group per node; the short node is its own
                # group with its partial socket as the only instance.
                assert em._plan == ((0, (0, 3), (0, 1, 2, 3, 4, 5)), (6, (6,), (6, 7)))
                em.destroy()

            rt.run(main)

            result = run_epoch_mixed(
                rt,
                ops_per_task=128,
                tasks_per_locale=1,
                write_percent=50,
                remote_percent=50,
                rounds=2,
            )
            # Both uplinks — including the partial node's — carried
            # aggregated scan traffic.
            assert set(rt.network.uplinks) == {0, 1}
            assert all(p.served > 0 for p in rt.network.uplinks.values())
            assert result.extra["em"]["uplink_crossings"] > 0
        finally:
            rt.close()

    def test_ragged_scenario_registered_and_deterministic(self):
        spec = scenarios.get_scenario("topo-hier-ragged")
        assert spec.topology.topology == "hier:2x3"
        assert spec.topology.aggregation == 4
        run = scenarios.run_scenario(
            spec.with_measure(ops_scale=0.25, repeats=2)
        )
        assert run.result.extra["em"]["uplink_crossings"] > 0


# ---------------------------------------------------------------------------
# scenario & CLI surface
# ---------------------------------------------------------------------------


class TestScenarioSurface:
    def test_aggregation_mismatch_is_incomparable(self):
        spec = scenarios.get_scenario("reclaim-hotspot-ebr").with_topology(
            aggregation=8
        )
        run = scenarios.run_scenario(spec)
        baselines = scenarios.load_baselines(str(BASELINES))
        report = scenarios.build_report([run], baselines=baselines)
        verdict = report["scenarios"]["reclaim-hotspot-ebr"]["regression"]
        assert verdict["status"] == "incomparable"
        assert "aggregation" in verdict["reason"]

    def test_new_scenarios_record_their_window(self):
        baselines = scenarios.load_baselines(str(BASELINES))
        assert baselines["topo-hier-agg-ebr-w4"]["aggregation"] == 4
        assert baselines["topo-hier-agg-hp-w16"]["aggregation"] == 16
        assert baselines["topo-hier-ragged"]["aggregation"] == 4

    def test_list_filter(self, capsys):
        assert scenario_main(["--list", "--filter", "topo-hier-agg"]) == 0
        out = capsys.readouterr().out
        assert "topo-hier-agg-ebr-w4" in out
        assert "agg=w4" in out
        assert "queue-churn" not in out

    def test_filter_requires_list(self, capsys):
        with pytest.raises(SystemExit):
            scenario_main(["--run", "queue-churn", "--filter", "x"])

    def test_aggregation_forbidden_with_update_baselines(self):
        with pytest.raises(SystemExit):
            scenario_main(
                ["--all", "--update-baselines", "--aggregation", "8"]
            )
