"""Tests for the generic sweep driver."""

from __future__ import annotations

import csv

import pytest

from repro.bench.sweep import Sweep, SweepRow
from repro.bench.workloads import WorkloadResult, run_epoch_workload
from repro.runtime import Runtime


def _fake_run(params):
    return WorkloadResult(
        elapsed=params["x"] * 0.5,
        operations=params["x"] * 10,
        comm={"get": params["x"]},
    )


class TestSweep:
    def test_points_are_cartesian_product(self):
        s = Sweep("t", {"a": [1, 2], "b": ["x", "y"]}, _fake_run)
        pts = list(s.points())
        assert len(pts) == s.size == 4
        assert {"a": 1, "b": "y"} in pts

    def test_execute_collects_rows_in_order(self):
        s = Sweep("t", {"x": [1, 2, 3]}, _fake_run)
        rows = s.execute()
        assert [r.params["x"] for r in rows] == [1, 2, 3]
        assert rows[1].elapsed == 1.0
        assert rows[1].operations == 20
        assert rows[1].throughput == 20.0
        assert rows[1].comm == {"get": 2}

    def test_progress_callback(self):
        seen = []
        s = Sweep("t", {"x": [1, 2]}, _fake_run, progress=seen.append)
        s.execute()
        assert len(seen) == 2
        assert all(isinstance(r, SweepRow) for r in seen)

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Sweep("t", {}, _fake_run)
        with pytest.raises(ValueError):
            Sweep("t", {"a": []}, _fake_run)

    def test_flat_rows_include_params_and_comm(self):
        s = Sweep("t", {"x": [2]}, _fake_run)
        flat = s.execute()[0].flat()
        assert flat["x"] == 2
        assert flat["comm_get"] == 2
        assert "elapsed_s" in flat and "throughput_ops_s" in flat

    def test_write_csv(self, tmp_path):
        s = Sweep("t", {"x": [1, 2]}, _fake_run)
        rows = s.execute()
        path = tmp_path / "out.csv"
        Sweep.write_csv(str(path), rows)
        with open(path) as fh:
            got = list(csv.DictReader(fh))
        assert len(got) == 2
        assert got[0]["x"] == "1"
        assert got[1]["comm_get"] == "2"

    def test_write_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            Sweep.write_csv(str(tmp_path / "x.csv"), [])

    def test_parallel_execute_matches_serial(self):
        """max_workers changes wall time only: same rows, same order."""
        s = Sweep("t", {"x": [1, 2, 3, 4]}, _fake_run)
        serial = s.execute()
        parallel = s.execute(max_workers=3)
        assert [r.params for r in parallel] == [r.params for r in serial]
        assert [r.elapsed for r in parallel] == [r.elapsed for r in serial]
        assert [r.comm for r in parallel] == [r.comm for r in serial]

    def test_parallel_execute_fires_progress_per_point(self):
        seen = []
        s = Sweep("t", {"x": [1, 2, 3]}, _fake_run, progress=seen.append)
        s.execute(max_workers=2)
        assert len(seen) == 3

    def test_parallel_execute_rejects_bad_worker_count(self):
        s = Sweep("t", {"x": [1]}, _fake_run)
        with pytest.raises(ValueError):
            s.execute(max_workers=0)

    def test_parallel_execute_with_real_runtimes(self):
        """Scenario-style usage: one runtime per point, concurrent points."""
        s = Sweep(
            "mini-par",
            {"locales": [1, 2], "net": ["ugni", "none"]},
            lambda p: run_epoch_workload(
                Runtime(num_locales=p["locales"], network=p["net"]),
                ops_per_task=8,
            ),
        )
        serial = s.execute()
        parallel = s.execute(max_workers=4)
        assert [r.elapsed for r in parallel] == [r.elapsed for r in serial]

    def test_end_to_end_with_real_workload(self):
        """A miniature real sweep: two locale counts, one net."""
        s = Sweep(
            "mini",
            {"locales": [1, 2]},
            lambda p: run_epoch_workload(
                Runtime(num_locales=p["locales"], network="ugni"),
                ops_per_task=16,
            ),
        )
        rows = s.execute()
        assert len(rows) == 2
        assert all(r.elapsed > 0 for r in rows)
        assert all(r.wall_seconds >= 0 for r in rows)
