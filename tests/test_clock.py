"""Unit tests for the virtual-time engine: TaskClock and ServicePoint."""

from __future__ import annotations

import threading

import pytest

from repro.runtime.clock import ServicePoint, TaskClock


class TestTaskClock:
    def test_starts_at_zero_by_default(self):
        assert TaskClock().now == 0.0

    def test_starts_at_given_time(self):
        assert TaskClock(2.5).now == 2.5

    def test_advance_accumulates(self):
        c = TaskClock()
        c.advance(1.0)
        c.advance(0.5)
        assert c.now == 1.5

    def test_advance_returns_new_time(self):
        c = TaskClock(1.0)
        assert c.advance(2.0) == 3.0

    def test_advance_to_moves_forward(self):
        c = TaskClock(1.0)
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_to_never_moves_backward(self):
        c = TaskClock(5.0)
        c.advance_to(1.0)
        assert c.now == 5.0

    def test_fork_seeds_child_with_overhead(self):
        parent = TaskClock(10.0)
        child = parent.fork(overhead=2.0)
        assert child.now == 12.0
        assert parent.now == 10.0  # fork does not advance the parent

    def test_join_takes_max_of_children(self):
        parent = TaskClock(0.0)
        a, b, c = TaskClock(3.0), TaskClock(7.0), TaskClock(5.0)
        parent.join(a, b, c)
        assert parent.now == 7.0

    def test_join_adds_overhead(self):
        parent = TaskClock(0.0)
        parent.join(TaskClock(4.0), overhead=1.0)
        assert parent.now == 5.0

    def test_join_with_no_children_keeps_time(self):
        parent = TaskClock(9.0)
        parent.join()
        assert parent.now == 9.0

    def test_join_never_moves_backward(self):
        parent = TaskClock(10.0)
        parent.join(TaskClock(2.0))
        assert parent.now == 10.0


class TestServicePoint:
    def test_idle_server_serves_immediately(self):
        p = ServicePoint("t")
        assert p.serve(arrival=10.0, service=1.0) == 11.0

    def test_back_to_back_requests_queue(self):
        p = ServicePoint("t")
        assert p.serve(0.0, 1.0) == 1.0
        # Arrives while busy, no banked idle: queues at the tail.
        assert p.serve(0.5, 1.0) == 2.0

    def test_idle_gap_is_banked_for_late_real_arrivals(self):
        """An op that is virtually early slots into a banked gap."""
        p = ServicePoint("t")
        p.serve(0.0, 1.0)  # busy [0,1]
        p.serve(10.0, 1.0)  # busy [10,11]; banks 9s of idle
        # A virtually-early request (arrival 2.0) fits in the 1..10 gap.
        assert p.serve(2.0, 1.0) == 3.0

    def test_capacity_is_conserved_under_saturation(self):
        """N ops of service s arriving at once finish no earlier than N*s."""
        p = ServicePoint("t")
        finish = 0.0
        for _ in range(100):
            finish = max(finish, p.serve(0.0, 1.0))
        assert finish >= 100.0

    def test_bank_drains_before_queueing(self):
        p = ServicePoint("t")
        p.serve(0.0, 1.0)  # busy [0,1]
        p.serve(3.0, 1.0)  # busy [3,4]; bank = 2
        # service 3 > bank 2: the bank is consumed and the deficit queues,
        # but completion can never precede arrival + service (6.5).
        assert p.serve(3.5, 3.0) == 6.5
        assert p.idle_bank == 0.0

    def test_deficit_queueing_without_physical_floor(self):
        p = ServicePoint("t")
        p.serve(0.0, 10.0)  # busy [0,10], bank 0
        # Arrives early, no bank: queues at the tail for its full service.
        assert p.serve(1.0, 2.0) == 12.0

    def test_busy_time_and_served_counters(self):
        p = ServicePoint("t")
        p.serve(0.0, 1.0)
        p.serve(5.0, 2.0)
        assert p.busy_time == pytest.approx(3.0)
        assert p.served == 2

    def test_reset_zeroes_everything(self):
        p = ServicePoint("t")
        p.serve(0.0, 5.0)
        p.reset()
        assert p.next_free == 0.0
        assert p.busy_time == 0.0
        assert p.served == 0
        assert p.idle_bank == 0.0

    def test_utilization_bounded_by_one(self):
        p = ServicePoint("t")
        for _ in range(10):
            p.serve(0.0, 1.0)
        assert p.utilization() == pytest.approx(1.0)

    def test_utilization_with_horizon(self):
        p = ServicePoint("t")
        p.serve(0.0, 1.0)
        assert p.utilization(horizon=4.0) == pytest.approx(0.25)

    def test_utilization_of_fresh_server_is_zero(self):
        assert ServicePoint("t").utilization() == 0.0

    def test_thread_safety_of_serve(self):
        """Concurrent serves never lose capacity accounting."""
        p = ServicePoint("t")
        N, T = 200, 8

        def hammer():
            for _ in range(N):
                p.serve(0.0, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(T)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert p.served == N * T
        assert p.busy_time == pytest.approx(N * T * 0.001)
        # Capacity conservation: the tail is at least total work.
        assert p.next_free + p.idle_bank >= N * T * 0.001 - 1e-9
