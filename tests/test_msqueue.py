"""Tests for the distributed Michael-Scott lock-free queue."""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.errors import EmptyStructureError
from repro.structures import LockFreeQueue


@pytest.fixture
def em(rt):
    return EpochManager(rt)


@pytest.fixture(params=[True, False], ids=["aba", "plain+ebr"])
def make_queue(rt, request):
    """Queue factory covering both ABA strategies."""

    def make():
        return LockFreeQueue(rt, aba_protection=request.param)

    return make


class TestSequentialSemantics:
    def test_fifo_order(self, rt, make_queue):
        def main():
            q = make_queue()
            for i in range(6):
                q.enqueue(i)
            assert [q.dequeue() for _ in range(6)] == list(range(6))

        rt.run(main)

    def test_dequeue_empty_raises(self, rt, make_queue):
        def main():
            with pytest.raises(EmptyStructureError):
                make_queue().dequeue()

        rt.run(main)

    def test_try_dequeue_empty_returns_none(self, rt, make_queue):
        def main():
            assert make_queue().try_dequeue() is None

        rt.run(main)

    def test_is_empty_transitions(self, rt, make_queue):
        def main():
            q = make_queue()
            assert q.is_empty()
            q.enqueue("a")
            assert not q.is_empty()
            q.dequeue()
            assert q.is_empty()

        rt.run(main)

    def test_interleaved_enqueue_dequeue(self, rt, make_queue):
        def main():
            q = make_queue()
            q.enqueue(1)
            q.enqueue(2)
            assert q.dequeue() == 1
            q.enqueue(3)
            assert q.dequeue() == 2
            assert q.dequeue() == 3

        rt.run(main)

    def test_unsafe_len(self, rt, make_queue):
        def main():
            q = make_queue()
            assert q.unsafe_len() == 0
            for i in range(5):
                q.enqueue(i)
            assert q.unsafe_len() == 5

        rt.run(main)

    def test_values_can_be_arbitrary_objects(self, rt, make_queue):
        def main():
            q = make_queue()
            payload = {"k": [1, 2, 3]}
            q.enqueue(payload)
            assert q.dequeue() is payload

        rt.run(main)


class TestReclamation:
    def test_dequeue_with_token_defers_the_old_dummy(self, rt, em):
        def main():
            q = LockFreeQueue(rt)
            q.enqueue("v")
            tok = em.register()
            tok.pin()
            assert q.dequeue(tok) == "v"
            tok.unpin()
            assert em.pending_count() == 1  # exactly one node retired
            em.clear()

        rt.run(main)

    def test_drain_then_queue_still_usable(self, rt, em):
        def main():
            q = LockFreeQueue(rt)
            tok = em.register()
            for i in range(8):
                q.enqueue(i)
            tok.pin()
            assert q.drain(tok) == list(range(8))
            tok.unpin()
            q.enqueue("after")
            assert q.dequeue() == "after"
            em.clear()

        rt.run(main)


class TestConcurrent:
    def test_concurrent_enqueues_lose_nothing(self, rt, em, make_queue):
        def main():
            q = make_queue()

            def body(i, tok):
                tok.pin()
                q.enqueue(i, tok)
                tok.unpin()

            rt.forall(range(300), body, task_init=em.register)
            got = q.drain()
            assert sorted(got) == list(range(300))
            em.clear()

        rt.run(main)

    def test_per_producer_fifo_order(self, rt, em):
        """MS queue guarantee: each producer's items stay in order."""

        def main():
            q = LockFreeQueue(rt)
            from repro.runtime.context import current_context

            def body(i, tok):
                tok.pin()
                q.enqueue((current_context().task_id, i), tok)
                tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            got = q.drain()
            assert len(got) == 400
            by_task = {}
            for tid, i in got:
                by_task.setdefault(tid, []).append(i)
            for seq in by_task.values():
                assert seq == sorted(seq)
            em.clear()

        rt.run(main)

    def test_concurrent_mixed_conserves_elements(self, rt, em, make_queue):
        def main():
            q = make_queue()
            got = []
            lock = threading.Lock()

            def body(i, tok):
                tok.pin()
                if i % 2 == 0:
                    q.enqueue(i, tok)
                else:
                    v = q.try_dequeue(tok)
                    if v is not None:
                        with lock:
                            got.append(v)
                tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            rest = q.drain()
            pushed = [i for i in range(400) if i % 2 == 0]
            assert sorted(got + rest) == pushed
            assert len(set(got)) == len(got)
            em.clear()

        rt.run(main)

    def test_helping_keeps_queue_consistent_under_contention(self, rt, em):
        """Hammer a single queue from all locales; verify count + order."""

        def main():
            q = LockFreeQueue(rt)

            def producer(i, tok):
                tok.pin()
                q.enqueue(i, tok)
                tok.unpin()

            rt.forall(range(256), producer, task_init=em.register,
                      tasks_per_locale=4)
            assert q.unsafe_len() == 256
            got = q.drain()
            assert sorted(got) == list(range(256))
            em.clear()

        rt.run(main)
