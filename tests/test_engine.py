"""Execution-engine tests: pool lifecycle, route tables, striped counters.

Covers the engine-overhaul invariants:

* ``ServicePoint`` idle-bank edge cases (arrival exactly at the tail,
  zero-service requests, bank exactly consumed) and the ``serve`` /
  ``serve_locked`` equivalence the one-lock-cycle cell design relies on.
* Virtual-time determinism: seeded workloads produce bit-identical
  ``timed()`` results and comm totals run-to-run and across worker-pool
  sizes (the "independent of real-thread scheduling" contract).
* Worker-pool behaviour: lazy creation, thread reuse across constructs,
  bounded growth, join-helping for nested fork/join, teardown on close.
* Diagnostics: exact counts under concurrency (striping), the stopped
  fast path, and single-point rejection of unknown op names.
"""

from __future__ import annotations

import threading

import pytest

from repro.comm.counters import CommDiagnostics, CommOp
from repro.core.epoch_manager import EpochManagerStats
from repro.runtime import Runtime, RuntimeConfig, ServicePoint
from repro.bench.workloads import run_atomic_mix, run_epoch_workload
from repro.errors import RuntimeStateError


# ---------------------------------------------------------------------------
# ServicePoint idle-bank edges
# ---------------------------------------------------------------------------


class TestServicePointEdges:
    def test_arrival_exactly_at_next_free_banks_nothing(self):
        sp = ServicePoint("x")
        assert sp.serve(0.0, 2.0) == 2.0
        # Arrival == next_free: no idle gap to bank, runs immediately.
        assert sp.serve(2.0, 1.0) == 3.0
        assert sp.idle_bank == 0.0
        assert sp.next_free == 3.0

    def test_zero_service_request_is_free_but_counted(self):
        sp = ServicePoint("x")
        assert sp.serve(5.0, 0.0) == 5.0
        assert sp.served == 1
        assert sp.busy_time == 0.0
        # The pre-arrival idle time was banked.
        assert sp.idle_bank == 5.0
        # A zero-service request behind the tail completes at its arrival.
        sp2 = ServicePoint("y")
        sp2.serve(0.0, 4.0)  # tail at 4
        assert sp2.serve(1.0, 0.0) == 1.0

    def test_bank_exactly_equals_service_consumes_bank_not_tail(self):
        sp = ServicePoint("x")
        sp.serve(3.0, 1.0)  # banks 3 idle seconds, tail at 4
        assert sp.idle_bank == 3.0
        # Early arrival wanting exactly the banked capacity: fits in the
        # past gap, tail untouched, bank drained to zero.
        assert sp.serve(0.0, 3.0) == 3.0
        assert sp.idle_bank == 0.0
        assert sp.next_free == 4.0

    def test_bank_deficit_queues_only_the_remainder(self):
        sp = ServicePoint("x")
        sp.serve(2.0, 1.0)  # bank 2, tail 3
        # Early arrival needing 5: 2 from the bank, 3 queued at the tail.
        finish = sp.serve(0.0, 5.0)
        assert finish == 6.0  # tail 3 + deficit 3
        assert sp.idle_bank == 0.0
        assert sp.next_free == 6.0

    def test_saturated_finish_never_precedes_arrival_plus_service(self):
        sp = ServicePoint("x")
        sp.serve(0.0, 1.0)  # tail 1, no bank
        finish = sp.serve(10.0, 2.0)
        assert finish == 12.0  # not 3.0: capacity after the gap is banked
        # ... and a follow-up early arrival can use that banked gap.
        assert sp.idle_bank == 9.0

    def test_serve_locked_equals_serve(self):
        a, b = ServicePoint("a"), ServicePoint("b")
        seq = [(0.0, 2.0), (2.0, 1.0), (1.0, 3.0), (9.0, 0.5), (4.0, 2.0)]
        for arrival, service in seq:
            ra = a.serve(arrival, service)
            with b._lock:
                rb = b.serve_locked(arrival, service)
            assert ra == rb
        assert (a.next_free, a.idle_bank, a.busy_time, a.served) == (
            b.next_free,
            b.idle_bank,
            b.busy_time,
            b.served,
        )


# ---------------------------------------------------------------------------
# Virtual-time determinism across runs and pool sizes
# ---------------------------------------------------------------------------


def _fig3_sample(pool_size):
    cfg = RuntimeConfig(
        num_locales=4, network="ugni", tasks_per_locale=2, worker_pool_size=pool_size
    )
    rt = Runtime(config=cfg)
    try:
        res = run_atomic_mix(rt, kind="atomic_int", ops_per_task=256, tasks_per_locale=2)
        return res.elapsed, res.comm
    finally:
        rt.close()


def _fig7_sample(pool_size):
    cfg = RuntimeConfig(
        num_locales=4, network="ugni", tasks_per_locale=1, worker_pool_size=pool_size
    )
    rt = Runtime(config=cfg)
    try:
        res = run_epoch_workload(
            rt,
            ops_per_task=256,
            tasks_per_locale=1,
            delete=False,
            reclaim_every=None,
            cleanup_at_end=False,
        )
        return res.elapsed, res.comm
    finally:
        rt.close()


class TestVirtualTimeDeterminism:
    def test_fig3_identical_across_runs(self):
        assert _fig3_sample(2) == _fig3_sample(2)

    def test_fig3_independent_of_pool_size(self):
        assert _fig3_sample(1) == _fig3_sample(3)

    def test_fig7_identical_across_runs(self):
        assert _fig7_sample(2) == _fig7_sample(2)

    def test_fig7_independent_of_pool_size(self):
        assert _fig7_sample(1) == _fig7_sample(4)


# ---------------------------------------------------------------------------
# Worker pool lifecycle
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_pool_created_lazily(self):
        rt = Runtime(num_locales=2, network="none")
        assert rt._pool is None
        rt.run(lambda: rt.forall(range(4), lambda i: None))
        assert rt._pool is not None
        rt.close()

    def test_threads_reused_and_bounded_across_constructs(self):
        cfg = RuntimeConfig(num_locales=4, network="none", worker_pool_size=2)
        rt = Runtime(config=cfg)

        def main():
            for _ in range(10):
                rt.coforall_locales(lambda lid: None)
                rt.forall(range(32), lambda i: None)

        rt.run(main)
        pool = rt._pool
        assert pool is not None
        assert pool.thread_count <= 2
        rt.close()

    def test_close_shuts_down_pool_and_is_idempotent(self):
        rt = Runtime(num_locales=2, network="none")
        rt.run(lambda: rt.forall(range(4), lambda i: None))
        pool = rt._pool
        rt.close()
        assert pool.is_shutdown
        rt.close()  # idempotent

    def test_context_manager_closes(self):
        with Runtime(num_locales=2, network="none") as rt:
            rt.run(lambda: rt.forall(range(4), lambda i: None))
            pool = rt._pool
        assert pool.is_shutdown

    def test_nested_coforall_completes_on_single_worker(self):
        """Join-helping: nested fork/join can't deadlock a bounded pool."""
        cfg = RuntimeConfig(num_locales=4, network="none", worker_pool_size=1)
        rt = Runtime(config=cfg)
        hits = []
        lock = threading.Lock()

        def inner(lid):
            with lock:
                hits.append(lid)

        def outer(lid):
            rt.coforall_locales(inner)

        rt.run(lambda: rt.coforall_locales(outer))
        assert len(hits) == 16  # 4 outer x 4 inner
        rt.close()

    def test_nested_exception_propagates_through_pool(self):
        cfg = RuntimeConfig(num_locales=2, network="none", worker_pool_size=1)
        rt = Runtime(config=cfg)

        def inner(lid):
            if lid == 1:
                raise KeyError("inner boom")

        def outer(lid):
            rt.coforall_locales(inner)

        with pytest.raises(KeyError):
            rt.run(lambda: rt.coforall_locales(outer))
        rt.close()

    def test_worker_pool_size_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(num_locales=2, worker_pool_size=0)
        assert RuntimeConfig(num_locales=2).resolved_worker_pool_size() >= 1


# ---------------------------------------------------------------------------
# Striped diagnostics & stats
# ---------------------------------------------------------------------------


class TestStripedDiagnostics:
    def test_unknown_op_rejected_in_one_place(self):
        diags = CommDiagnostics(2)
        with pytest.raises(ValueError):
            diags.record(0, "teleport")
        with pytest.raises(ValueError):
            CommDiagnostics.op_index("teleport")
        with pytest.raises(ValueError):
            diags.total("teleport")

    def test_stopped_record_is_a_noop_without_validation(self):
        """stop() gates the record path before any work (satellite #1)."""
        diags = CommDiagnostics(2)
        diags.stop()
        diags.record(0, CommOp.GET)
        diags.record(0, "not-an-op")  # dropped before name resolution
        assert diags.totals()["get"] == 0
        diags.start()
        diags.record(0, CommOp.GET)
        assert diags.totals()["get"] == 1

    def test_concurrent_records_are_exact(self):
        """Per-thread striping loses no increments under contention."""
        diags = CommDiagnostics(1)
        n_threads, per_thread = 8, 5000

        def hammer():
            for _ in range(per_thread):
                diags.record(0, CommOp.AMO)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert diags.totals()["amo"] == n_threads * per_thread
        assert diags.total(CommOp.AMO) == n_threads * per_thread

    def test_bulk_bytes_accumulate(self):
        diags = CommDiagnostics(1)
        diags.record(0, CommOp.BULK, nbytes=100)
        diags.record(0, CommOp.BULK, nbytes=28)
        t = diags.totals()
        assert t["bulk"] == 2 and t["bulk_bytes"] == 128

    def test_reset_zeroes_all_stripes(self):
        diags = CommDiagnostics(2)
        diags.record(1, CommOp.PUT)
        other = threading.Thread(target=lambda: diags.record(0, CommOp.GET))
        other.start()
        other.join()
        diags.reset()
        assert all(v == 0 for v in diags.totals().values())

    def test_fork_diagnostic_uses_symbolic_op(self):
        """coforall records CommOp.FORK (satellite #2 regression guard)."""
        rt = Runtime(num_locales=3, network="none")
        rt.run(lambda: rt.coforall_locales(lambda lid: None))
        assert rt.comm_totals()["fork"] == 2  # both non-initiating locales
        rt.close()


class TestStripedEpochStats:
    def test_concurrent_incs_are_exact_and_readable_as_attributes(self):
        stats = EpochManagerStats()
        n_threads, per_thread = 6, 4000

        def bump():
            for _ in range(per_thread):
                stats.inc("reclaim_attempts")
            stats.inc("objects_reclaimed", 7)

        threads = [threading.Thread(target=bump) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.reclaim_attempts == n_threads * per_thread
        assert stats.objects_reclaimed == 7 * n_threads
        d = stats.as_dict()
        assert d["reclaim_attempts"] == n_threads * per_thread
        assert d["advances"] == 0


# ---------------------------------------------------------------------------
# Route precompilation
# ---------------------------------------------------------------------------


class TestRoutePrecompilation:
    def test_route_tables_cached_per_home(self):
        rt = Runtime(num_locales=2, network="ugni")
        t0 = rt.network.atomic_route_table(0)
        assert rt.network.atomic_route_table(0) is t0
        assert rt.network.atomic_route_table(1) is not t0
        rt.close()

    def test_wrapper_atomic_op_matches_cell_charge(self):
        """The branchy reference wrapper and the cell fast path agree."""
        rt_a = Runtime(num_locales=2, network="ugni")
        rt_b = Runtime(num_locales=2, network="ugni")

        def cost_cell(rt):
            cell = rt.atomic_uint(0, locale=1)

            def main():
                with rt.timed() as t:
                    cell.read()
                return t.elapsed

            return rt.run(main)

        def cost_wrapper(rt):
            cell = rt.atomic_uint(0, locale=1)

            def main():
                from repro.runtime.context import current_context

                ctx = current_context()
                with rt.timed() as t:
                    rt.network.atomic_op(ctx, cell.home, cell.line)
                return t.elapsed

            return rt.run(main)

        assert cost_cell(rt_a) == cost_wrapper(rt_b)
        assert rt_a.comm_totals() == rt_b.comm_totals()
        rt_a.close()
        rt_b.close()

    def test_spawn_after_pool_shutdown_raises(self):
        rt = Runtime(num_locales=2, network="none")
        rt.run(lambda: rt.forall(range(2), lambda i: None))
        rt.close()
        with pytest.raises(RuntimeStateError):
            rt.run(lambda: rt.forall(range(2), lambda i: None))
