"""Tests for the RCUArray extension (reference [15]'s construction)."""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.errors import StructureError
from repro.structures import RCUArray


@pytest.fixture
def em(rt):
    return EpochManager(rt)


class TestBasics:
    def test_initial_length_and_fill(self, rt):
        def main():
            arr = RCUArray(rt, 10, fill=0)
            assert len(arr) == 10
            assert arr.snapshot() == [0] * 10

        rt.run(main)

    def test_read_write(self, rt):
        def main():
            arr = RCUArray(rt, 8)
            arr.write(3, "x")
            assert arr.read(3) == "x"
            assert arr.read(0) is None

        rt.run(main)

    def test_out_of_range_raises(self, rt):
        def main():
            arr = RCUArray(rt, 4)
            with pytest.raises(StructureError):
                arr.read(4)
            with pytest.raises(StructureError):
                arr.write(-1, 0)
            with pytest.raises(StructureError):
                arr.read(-1)

        rt.run(main)

    def test_blocks_distributed_round_robin(self, rt):
        def main():
            arr = RCUArray(rt, 4 * 16, block_size=16)
            assert arr.block_locales() == [0, 1, 2, 3]

        rt.run(main)

    def test_block_size_validation(self, rt):
        with pytest.raises(ValueError):
            RCUArray(rt, 4, block_size=0)

    def test_zero_length_array(self, rt):
        def main():
            arr = RCUArray(rt)
            assert len(arr) == 0
            assert arr.snapshot() == []

        rt.run(main)


class TestResize:
    def test_grow_preserves_contents(self, rt):
        def main():
            arr = RCUArray(rt, 5, block_size=4, fill=0)
            for i in range(5):
                arr.write(i, i)
            arr.resize(11)
            assert len(arr) == 11
            assert arr.snapshot()[:5] == [0, 1, 2, 3, 4]
            arr.write(10, "tail")
            assert arr.read(10) == "tail"

        rt.run(main)

    def test_shrink_drops_tail(self, rt):
        def main():
            arr = RCUArray(rt, 10, block_size=4)
            for i in range(10):
                arr.write(i, i)
            arr.resize(3)
            assert len(arr) == 3
            assert arr.snapshot() == [0, 1, 2]
            with pytest.raises(StructureError):
                arr.read(3)

        rt.run(main)

    def test_resize_retires_old_metadata_through_token(self, rt, em):
        def main():
            arr = RCUArray(rt, 8, block_size=4)
            tok = em.register()
            tok.pin()
            arr.resize(4, token=tok)  # drops one block + old descriptor
            tok.unpin()
            assert em.pending_count() >= 2
            em.clear()
            # The array still works after reclamation.
            arr.write(0, "ok")
            assert arr.read(0) == "ok"

        rt.run(main)

    def test_shared_blocks_survive_old_descriptor_reclaim(self, rt, em):
        """Blocks reused by the new descriptor must NOT be retired."""

        def main():
            arr = RCUArray(rt, 8, block_size=4)
            arr.write(1, "keep")
            tok = em.register()
            tok.pin()
            arr.resize(12, token=tok)  # grows: all old blocks survive
            tok.unpin()
            em.clear()
            assert arr.read(1) == "keep"

        rt.run(main)

    def test_append_returns_indices(self, rt):
        def main():
            arr = RCUArray(rt, 0, block_size=2)
            for i in range(7):
                assert arr.append(i * 10) == i
            assert arr.snapshot() == [i * 10 for i in range(7)]

        rt.run(main)

    def test_negative_resize_rejected(self, rt):
        def main():
            with pytest.raises(ValueError):
                RCUArray(rt, 1).resize(-1)

        rt.run(main)

    def test_destroy_frees_everything(self, rt):
        def main():
            before = sum(loc.heap.live_count for loc in rt.locales)
            arr = RCUArray(rt, 20, block_size=4)
            arr.destroy()
            after = sum(loc.heap.live_count for loc in rt.locales)
            assert after == before

        rt.run(main)


class TestConcurrent:
    def test_readers_survive_concurrent_resizes(self, rt, em):
        """RCU's whole point: readers never see a torn structure."""

        def main():
            arr = RCUArray(rt, 64, block_size=8, fill=0)
            errors = []
            lock = threading.Lock()

            def body(i, tok):
                tok.pin()
                try:
                    if i % 16 == 0:
                        arr.resize(64 + (i % 64), token=tok)
                    else:
                        v = arr.read(i % 32)  # always within bounds
                        if not (v == 0 or isinstance(v, int)):
                            with lock:
                                errors.append(v)
                except StructureError:
                    pass  # racing a shrink below our index is legal
                finally:
                    tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            assert not errors
            em.clear()

        rt.run(main)

    def test_concurrent_disjoint_writes(self, rt, em):
        def main():
            arr = RCUArray(rt, 256, block_size=16)

            def body(i, tok):
                tok.pin()
                arr.write(i, i * 3)
                tok.unpin()

            rt.forall(range(256), body, task_init=em.register)
            assert arr.snapshot() == [i * 3 for i in range(256)]
            em.clear()

        rt.run(main)

    def test_wait_free_reads_cost_constant_ops(self, rt):
        """A read is one root atomic + two GETs, independent of history."""

        def main():
            arr = RCUArray(rt, 64, block_size=8)
            for _ in range(10):
                arr.resize(len(arr) + 8)
            rt.reset_measurements()
            arr.read(0)
            t = rt.comm_totals()
            # Bounded op count: the root DCAS read plus <= 2 GETs.
            return t["get"] + t["amo"] + t["local_amo"] + t["am"]

        assert rt.run(main) <= 4
