"""Property-based tests (hypothesis) for the core data-plane invariants.

These cover the algebraic substrate — the things every higher layer leans
on silently: pointer compression is a bijection, the heap is an exact
allocator, atomics implement modular 64-bit arithmetic, and the wait-free
limbo list is a permutation-preserving buffer.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.memory import (
    ADDRESS_MASK,
    MAX_COMPRESSIBLE_LOCALES,
    GlobalAddress,
    Heap,
    compress,
    decompress,
)
from repro.runtime import Runtime

# Offsets are nonzero (0 is nil) and 48-bit bounded.
offsets = st.integers(min_value=1, max_value=ADDRESS_MASK)
locales = st.integers(min_value=0, max_value=MAX_COMPRESSIBLE_LOCALES - 1)
words64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
ints64 = st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1)


def _rt() -> Runtime:
    return Runtime(num_locales=1, network="none")


class TestCompressionProperties:
    @given(locale=locales, offset=offsets)
    def test_compress_roundtrips(self, locale, offset):
        a = GlobalAddress(locale, offset)
        assert decompress(compress(a)) == a

    @given(locale=locales, offset=offsets)
    def test_compressed_word_fits_64_bits(self, locale, offset):
        word = compress(GlobalAddress(locale, offset))
        assert 0 <= word < (1 << 64)

    @given(
        a1=st.tuples(locales, offsets),
        a2=st.tuples(locales, offsets),
    )
    def test_compression_is_injective(self, a1, a2):
        g1, g2 = GlobalAddress(*a1), GlobalAddress(*a2)
        if g1 != g2:
            assert compress(g1) != compress(g2)

    @given(locale=locales, offset=offsets)
    def test_nil_never_collides(self, locale, offset):
        assert compress(GlobalAddress(locale, offset)) != 0


class TestHeapProperties:
    @given(ops=st.lists(st.sampled_from(["alloc", "free"]), max_size=120))
    def test_alloc_free_accounting_is_exact(self, ops):
        """live == allocs - frees under any alloc/free interleaving."""
        h = Heap(0)
        live = []
        allocs = frees = 0
        for op in ops:
            if op == "alloc" or not live:
                live.append(h.alloc(object()))
                allocs += 1
            else:
                h.free(live.pop().offset)
                frees += 1
        assert h.live_count == allocs - frees == len(live)
        for a in live:
            assert h.is_live(a.offset)

    @given(n=st.integers(min_value=1, max_value=60))
    def test_distinct_live_addresses(self, n):
        h = Heap(0)
        addrs = [h.alloc(i) for i in range(n)]
        assert len({a.offset for a in addrs}) == n

    @given(
        payloads=st.lists(
            st.one_of(st.integers(), st.text(max_size=10), st.none()),
            min_size=1,
            max_size=40,
        )
    )
    def test_load_returns_exactly_what_was_stored(self, payloads):
        h = Heap(0)
        pairs = [(h.alloc(p), p) for p in payloads]
        for addr, p in pairs:
            assert h.load(addr.offset) == p

    @given(n=st.integers(min_value=1, max_value=40))
    def test_free_then_alloc_reuses_lifo(self, n):
        h = Heap(0)
        addrs = [h.alloc(i) for i in range(n)]
        for a in addrs:
            h.free(a.offset)
        # Reallocation hands back the same offsets in reverse free order.
        again = [h.alloc(i) for i in range(n)]
        assert [a.offset for a in again] == [a.offset for a in reversed(addrs)]


class TestAtomicArithmeticProperties:
    @given(start=words64, deltas=st.lists(words64, max_size=20))
    def test_uint_fetch_add_is_mod_2_64(self, start, deltas):
        rt = _rt()
        a = rt.atomic_uint(start)
        expect = start
        for d in deltas:
            assert a.fetch_add(d) == expect
            expect = (expect + d) & ((1 << 64) - 1)
        assert a.peek() == expect

    @given(start=ints64, deltas=st.lists(ints64, max_size=20))
    def test_int_arithmetic_wraps_two_complement(self, start, deltas):
        rt = _rt()
        a = rt.atomic_int(start)
        expect = start
        for d in deltas:
            a.add(d)
            expect = (expect + d + (1 << 63)) % (1 << 64) - (1 << 63)
        assert a.peek() == expect

    @given(v=words64, w=words64)
    def test_exchange_returns_previous(self, v, w):
        rt = _rt()
        a = rt.atomic_uint(v)
        assert a.exchange(w) == v
        assert a.exchange(v) == w

    @given(v=words64, exp=words64, des=words64)
    def test_cas_succeeds_iff_expected_matches(self, v, exp, des):
        rt = _rt()
        a = rt.atomic_uint(v)
        ok = a.compare_and_swap(exp, des)
        assert ok == (v == exp)
        assert a.peek() == (des if ok else v)

    @given(
        lo=words64, hi=words64, elo=words64, ehi=words64, dlo=words64, dhi=words64
    )
    def test_dcas_succeeds_iff_both_halves_match(self, lo, hi, elo, ehi, dlo, dhi):
        rt = _rt()
        w = rt.atomic_wide((lo, hi))
        ok = w.compare_and_swap((elo, ehi), (dlo, dhi))
        assert ok == ((lo, hi) == (elo, ehi))
        assert w.peek() == ((dlo, dhi) if ok else (lo, hi))


class TestLimboListProperties:
    @given(vals=st.lists(st.integers(), max_size=80))
    def test_collect_is_reversed_pushes(self, vals):
        from repro.core.limbo_list import LimboList, NodePool

        rt = _rt()
        pool = NodePool(rt, 0)
        lst = LimboList(rt, 0, pool)
        for v in vals:
            lst.push(v)
        assert lst.collect() == list(reversed(vals))

    @given(
        batches=st.lists(st.lists(st.integers(), max_size=20), max_size=8)
    )
    def test_phased_push_drain_never_loses_values(self, batches):
        from repro.core.limbo_list import LimboList, NodePool

        rt = _rt()
        pool = NodePool(rt, 0)
        lst = LimboList(rt, 0, pool)
        for batch in batches:
            for v in batch:
                lst.push(v)
            assert lst.collect() == list(reversed(batch))
        assert lst.pop_all() is None


class TestStackProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("push"), st.integers()),
                st.tuples(st.just("pop"), st.none()),
            ),
            max_size=60,
        )
    )
    @settings(deadline=None)
    def test_stack_matches_list_model(self, ops):
        """Differential test: LockFreeStack vs a plain Python list."""
        from repro.structures import LockFreeStack

        rt = _rt()

        def main():
            st_ = LockFreeStack(rt)
            model = []
            for op, arg in ops:
                if op == "push":
                    st_.push(arg)
                    model.append(arg)
                else:
                    got = st_.try_pop()
                    want = model.pop() if model else None
                    assert got == want
            assert list(st_.unsafe_iter()) == list(reversed(model))

        rt.run(main)


class TestQueueProperties:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("enq"), st.integers()),
                st.tuples(st.just("deq"), st.none()),
            ),
            max_size=60,
        )
    )
    @settings(deadline=None)
    def test_queue_matches_deque_model(self, ops):
        from collections import deque

        from repro.structures import LockFreeQueue

        rt = _rt()

        def main():
            q = LockFreeQueue(rt)
            model = deque()
            for op, arg in ops:
                if op == "enq":
                    q.enqueue(arg)
                    model.append(arg)
                else:
                    got = q.try_dequeue()
                    want = model.popleft() if model else None
                    assert got == want
            assert q.unsafe_len() == len(model)

        rt.run(main)


class TestOrderedListProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "remove", "contains"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=50,
        )
    )
    @settings(deadline=None)
    def test_list_matches_set_model(self, ops):
        from repro.structures import LockFreeOrderedList

        rt = _rt()

        def main():
            lst = LockFreeOrderedList(rt)
            model = set()
            for op, k in ops:
                if op == "insert":
                    assert lst.insert(k) == (k not in model)
                    model.add(k)
                elif op == "remove":
                    assert lst.remove(k) == (k in model)
                    model.discard(k)
                else:
                    assert lst.contains(k) == (k in model)
            assert lst.unsafe_keys() == sorted(model)

        rt.run(main)


class TestHashTableProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "remove", "get"]),
                st.integers(min_value=0, max_value=20),
                st.integers(),
            ),
            max_size=50,
        )
    )
    @settings(deadline=None)
    def test_table_matches_dict_model(self, ops):
        from repro.structures import InterlockedHashTable

        rt = _rt()

        def main():
            t = InterlockedHashTable(rt, buckets=8)
            model = {}
            for op, k, v in ops:
                if op == "put":
                    assert t.put(k, v) == (k not in model)
                    model[k] = v
                elif op == "remove":
                    assert t.remove(k) == (k in model)
                    model.pop(k, None)
                else:
                    assert t.get(k, "missing") == model.get(k, "missing")
            assert dict(t.items()) == model

        rt.run(main)
