"""Heavier concurrency stress and failure-injection tests.

These push the building blocks harder than the per-module unit tests:
more tasks per locale, hotter contention, mixed operations, and deliberate
faults (rug-pulled memory, dying workloads) to verify the manager's
election flags and limbo state survive exceptions.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import AtomicObject, EpochManager
from repro.errors import DoubleFreeError, MemoryError_
from repro.runtime import Runtime
from repro.structures import InterlockedHashTable, LockFreeQueue, LockFreeStack


@pytest.fixture
def rt():
    return Runtime(num_locales=4, network="ugni", tasks_per_locale=4)


class TestHotContention:
    def test_single_atomic_object_hammered_from_all_locales(self, rt):
        """CAS-increment a counter-through-pointer 600 times: exact count."""

        def main():
            em = EpochManager(rt)
            cell = AtomicObject(rt, locale=0)
            first = rt.new_obj(0, locale=0)
            cell.write(first)

            def body(i, tok):
                tok.pin()
                while True:
                    snap = cell.read_aba()
                    cur = rt.deref(snap.get_object())
                    nxt = rt.new_obj(cur + 1)
                    if cell.compare_and_swap_aba(snap, nxt):
                        tok.defer_delete(snap.get_object())
                        break
                    rt.free(nxt)  # lost the race; our candidate never escaped
                tok.unpin()
                if i % 128 == 0:
                    tok.try_reclaim()

            rt.forall(range(600), body, task_init=em.register)
            final = rt.deref(cell.read())
            em.clear()
            return final

        assert rt.run(main) == 600

    def test_stack_and_queue_ping_pong(self, rt):
        """Elements bounce stack->queue->stack; nothing lost or duplicated."""

        def main():
            em = EpochManager(rt)
            st = LockFreeStack(rt)
            q = LockFreeQueue(rt)
            for i in range(120):
                st.push(i)

            def body(i, tok):
                tok.pin()
                if i % 2 == 0:
                    v = st.try_pop(tok)
                    if v is not None:
                        q.enqueue(v, tok)
                else:
                    v = q.try_dequeue(tok)
                    if v is not None:
                        st.push(v)
                tok.unpin()

            rt.forall(range(480), body, task_init=em.register)
            everything = sorted(st.drain() + q.drain())
            em.clear()
            return everything

        assert rt.run(main) == list(range(120))

    def test_hash_table_mixed_churn_with_reclaim(self, rt):
        def main():
            em = EpochManager(rt)
            t = InterlockedHashTable(rt, buckets=8, manager=em)

            def body(i, tok):
                tok.pin()
                k = i % 25
                if i % 3 == 0:
                    t.put(k, i, token=tok)
                elif i % 3 == 1:
                    t.get(k)
                else:
                    t.remove(k, token=tok)
                tok.unpin()
                if i % 100 == 0:
                    tok.try_reclaim()

            rt.forall(range(600), body, task_init=em.register)
            # Table must still be internally consistent.
            items = dict(t.items())
            for k in items:
                assert t.get(k) == items[k]
            em.clear()

        rt.run(main)


class TestFailureInjection:
    def test_reclaim_survives_rug_pulled_memory(self, rt):
        """A double-free during the drain must not wedge the manager.

        We defer an address and then free it behind the manager's back;
        the drain raises DoubleFreeError — and the election flags must
        still be cleared (the finally path), leaving the manager usable.
        """

        def main():
            em = EpochManager(rt)
            tok = em.register()
            addr = rt.new_obj("x")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()
            rt.free(addr)  # rug pull

            with pytest.raises(DoubleFreeError):
                # Two advances bring the poisoned limbo list up for drain.
                em.try_reclaim()
                em.try_reclaim()

            # Flags must be clear: a healthy reclaim can run again.
            assert not em.global_epoch.is_setting_epoch.peek()
            assert not em.get_privatized_instance(0).is_setting_epoch.peek()
            assert em.try_reclaim()

        rt.run(main)

    def test_worker_exception_does_not_leak_tokens(self, rt):
        """Dying workers' tokens are auto-unregistered (close hook)."""

        def main():
            em = EpochManager(rt)

            def body(i, tok):
                tok.pin()
                tok.unpin()
                if i == 13:
                    raise RuntimeError("worker died")

            with pytest.raises(RuntimeError):
                rt.forall(range(64), body, task_init=em.register)
            # Every token was released: nothing can block advancement.
            for _ in range(3):
                assert em.try_reclaim()

        rt.run(main)

    def test_worker_dying_while_pinned_blocks_but_does_not_corrupt(self, rt):
        """The documented EBR liveness caveat, exercised."""

        def main():
            em = EpochManager(rt)
            zombie = em.register()
            zombie.pin()  # simulates a task that died mid-operation
            em.try_reclaim()  # ok: zombie is in the current epoch

            tok = em.register()
            addr = rt.new_obj("x")
            tok.pin()
            tok.defer_delete(addr)
            tok.unpin()

            # The zombie (now stale) pins the epoch forever...
            for _ in range(4):
                assert not em.try_reclaim()
            assert rt.is_live(addr)
            # ...but other tasks' operations still complete (no blocking),
            # and an operator clear() can reclaim after quiescing.
            zombie.unregister()
            assert em.try_reclaim()

        rt.run(main)

    def test_heap_errors_propagate_out_of_forall(self, rt):
        def main():
            addr = rt.new_obj("x", locale=0)
            rt.free(addr)

            def body(i):
                rt.deref(addr)  # guaranteed UAF

            with pytest.raises(MemoryError_):
                rt.forall(range(4), body)

        rt.run(main)


class TestManyTasksPerLocale:
    def test_oversubscribed_forall(self, rt):
        """More worker tasks than items per locale still terminates clean."""

        def main():
            hits = []
            lock = threading.Lock()

            def body(i):
                with lock:
                    hits.append(i)

            rt.forall(range(6), body, tasks_per_locale=8)
            return sorted(hits)

        assert rt.run(main) == list(range(6))

    def test_sixteen_tasks_per_locale_epoch_churn(self, rt):
        def main():
            em = EpochManager(rt)

            def body(i, tok):
                tok.pin()
                tok.defer_delete(rt.new_obj(i))
                tok.unpin()
                if i % 64 == 0:
                    tok.try_reclaim()

            rt.forall(range(512), body, task_init=em.register,
                      tasks_per_locale=16)
            em.clear()
            return em.stats.objects_reclaimed

        assert rt.run(main) == 512
