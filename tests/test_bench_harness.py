"""Tests for the benchmark harness: workloads, figures, reporting, CLI."""

from __future__ import annotations

import pytest

from repro.bench.figures import (
    figure3_distributed,
    figure3_shared,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.bench.report import Panel, render_figure, render_panel
from repro.bench.workloads import WorkloadResult, run_atomic_mix, run_epoch_workload
from repro.runtime import Runtime


class TestWorkloadResult:
    def test_ops_per_second(self):
        r = WorkloadResult(elapsed=2.0, operations=100)
        assert r.ops_per_second == 50.0

    def test_zero_elapsed_is_infinite_throughput(self):
        assert WorkloadResult(elapsed=0.0, operations=1).ops_per_second == float("inf")


class TestAtomicMixWorkload:
    def test_counts_operations(self):
        rt = Runtime(num_locales=2, network="none")
        res = run_atomic_mix(rt, kind="atomic_int", ops_per_task=32)
        assert res.operations == 2 * 32
        assert res.elapsed > 0

    def test_rejects_unknown_kind(self):
        rt = Runtime(num_locales=2, network="none")
        with pytest.raises(ValueError):
            run_atomic_mix(rt, kind="nonsense", ops_per_task=1)

    @pytest.mark.parametrize(
        "kind", ["atomic_int", "atomic_object", "atomic_object_aba"]
    )
    def test_all_kinds_run(self, kind):
        rt = Runtime(num_locales=2, network="ugni")
        res = run_atomic_mix(rt, kind=kind, ops_per_task=16)
        assert res.elapsed > 0

    def test_aba_kind_is_slowest(self):
        """The constant DCAS overhead from Figure 3."""
        times = {}
        for kind in ("atomic_object", "atomic_object_aba"):
            rt = Runtime(num_locales=2, network="ugni")
            times[kind] = run_atomic_mix(rt, kind=kind, ops_per_task=64).elapsed
        assert times["atomic_object_aba"] > times["atomic_object"]

    def test_deterministic_given_seed(self):
        def once():
            rt = Runtime(num_locales=2, network="ugni", seed=42)
            return run_atomic_mix(rt, kind="atomic_int", ops_per_task=64).elapsed

        assert once() == once()


class TestEpochWorkload:
    def test_all_objects_reclaimed(self):
        rt = Runtime(num_locales=2, network="ugni")
        res = run_epoch_workload(rt, ops_per_task=64, remote_percent=0)
        assert res.extra["em"]["objects_reclaimed"] == res.operations
        live = sum(loc.heap.live_count for loc in rt.locales)
        assert live == 0

    def test_remote_percent_validated(self):
        rt = Runtime(num_locales=2, network="ugni")
        with pytest.raises(ValueError):
            run_epoch_workload(rt, ops_per_task=1, remote_percent=150)

    def test_read_only_mode_allocates_nothing(self):
        rt = Runtime(num_locales=2, network="ugni")
        res = run_epoch_workload(
            rt, ops_per_task=32, delete=False, cleanup_at_end=False
        )
        assert res.extra["em"]["objects_reclaimed"] == 0
        assert sum(loc.heap.stats.allocations for loc in rt.locales) == 0

    def test_reclaim_every_triggers_attempts(self):
        rt = Runtime(num_locales=2, network="ugni")
        res = run_epoch_workload(rt, ops_per_task=64, reclaim_every=8)
        assert res.extra["em"]["reclaim_attempts"] >= 64 * 2 // 8

    def test_remote_objects_cost_more(self):
        def elapsed(rp):
            rt = Runtime(num_locales=4, network="ugni")
            return run_epoch_workload(
                rt, ops_per_task=128, remote_percent=rp
            ).elapsed

        assert elapsed(100) > elapsed(0)


class TestFigureDrivers:
    def test_figure3_shared_panel_shape(self):
        p = figure3_shared(tasks=(1, 2), total_ops=256)
        assert p.xs == [1, 2]
        assert {s.name for s in p.series} == {
            "atomic int",
            "AtomicObject",
            "AtomicObject (ABA)",
        }
        for s in p.series:
            assert len(s.values) == 2

    def test_figure3_distributed_panel_shape(self):
        p = figure3_distributed(locales=(1, 2), ops_per_task=16)
        assert len(p.series) == 5
        assert all(len(s.values) == 2 for s in p.series)

    @pytest.mark.parametrize("fn", [figure4, figure5, figure6])
    def test_epoch_figures_have_three_panels(self, fn):
        panels = fn(locales=(2,), ops_per_task=16)
        assert len(panels) == 3
        for p in panels:
            assert {s.name for s in p.series} == {"none", "ugni"}

    def test_figure7_flat_shape(self):
        p = figure7(locales=(2, 4), ops_per_task=64)
        series = {s.name: s.values for s in p.series}
        for vals in series.values():
            assert max(vals) < 3 * min(vals)


class TestReport:
    def test_render_panel_contains_all_cells(self):
        p = Panel(title="T", xlabel="locales", xs=[2, 4])
        p.add("a", [0.5, 1.5])
        p.add("b", [0.001, 100.0])
        text = render_panel(p)
        assert "T" in text
        assert "locales" in text
        for token in ("2", "4", "a", "b", "0.5", "1.5", "0.001", "100.0"):
            assert token in text

    def test_render_handles_missing_values(self):
        p = Panel(title="T", xlabel="x", xs=[1, 2])
        p.add("short", [1.0])  # one value missing
        assert "-" in render_panel(p)

    def test_render_figure_joins_panels(self):
        p1 = Panel(title="P1", xlabel="x", xs=[1])
        p2 = Panel(title="P2", xlabel="x", xs=[1])
        out = render_figure("Fig", [p1, p2])
        assert "== Fig ==" in out
        assert "P1" in out and "P2" in out

    def test_panel_as_dict(self):
        p = Panel(title="T", xlabel="x", xs=[1])
        p.add("s", [2.0])
        d = p.as_dict()
        assert d["series"]["s"] == [2.0]
        assert d["xs"] == [1]


class TestCli:
    def test_cli_runs_figure7_quickly(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--figure", "7", "--ops", "32", "--max-locales", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "locales" in out

    def test_cli_rejects_unknown_figure(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--figure", "99"])

    def test_cli_figure3a(self, capsys):
        from repro.bench.__main__ import main

        rc = main(["--figure", "3a", "--ops", "16"])
        assert rc == 0
        assert "shared memory" in capsys.readouterr().out

    def test_cli_json_export(self, capsys, tmp_path):
        import json

        from repro.bench.__main__ import main

        out = tmp_path / "series.json"
        rc = main(["--figure", "7", "--ops", "16", "--max-locales", "4",
                   "--json", str(out)])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert "7" in doc
        panel = doc["7"][0]
        assert panel["xs"] == [2, 4]
        assert set(panel["series"]) == {"none", "ugni"}
