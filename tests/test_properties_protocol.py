"""Property-based tests for the protocol layers (hypothesis).

Where ``test_properties.py`` covers the data plane, these cover behaviours
with internal state machines: the virtual-time service point's capacity
invariants, the RCUArray against a plain-list model, and — the important
one — the epoch protocol itself: under *any* sequence of pin/unpin/defer/
advance steps, no object is freed while a token that might still reach it
is pinned, and every object is freed at most once.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import EpochManager
from repro.runtime import Runtime
from repro.runtime.clock import ServicePoint


class TestServicePointProperties:
    @given(
        reqs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0.001, max_value=5, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_capacity_conservation(self, reqs):
        """Total work never exceeds the span the server had available.

        Invariant maintained by the idle-bank design: the server performs
        at most one second of service per virtual second —
        ``busy_time <= next_free - idle_bank`` — and no request ever
        completes before its own ``arrival + service``.  (The inequality
        is not tight: when a queued request's tail slot would finish
        before its physical minimum, the gap is *discarded*, never
        re-used — conservative by construction.)
        """
        p = ServicePoint("prop")
        for arrival, service in reqs:
            finish = p.serve(arrival, service)
            assert finish >= arrival + service - 1e-12  # never early
        assert p.busy_time <= (p.next_free - p.idle_bank) + 1e-9

    @given(
        reqs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10, allow_nan=False),
                st.floats(min_value=0.001, max_value=2, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_monotone_counters(self, reqs):
        p = ServicePoint("prop")
        last_busy = 0.0
        for arrival, service in reqs:
            p.serve(arrival, service)
            assert p.busy_time > last_busy
            last_busy = p.busy_time
        assert p.served == len(reqs)


class TestRCUArrayModel:
    @given(
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("write"), st.integers(0, 127), st.integers()),
                st.tuples(st.just("read"), st.integers(0, 127), st.none()),
                st.tuples(st.just("resize"), st.integers(0, 40), st.none()),
                st.tuples(st.just("append"), st.none(), st.integers()),
            ),
            max_size=40,
        )
    )
    @settings(deadline=None, max_examples=40)
    def test_matches_list_model(self, ops):
        from repro.structures import RCUArray

        rt = Runtime(num_locales=2, network="none")

        def main():
            arr = RCUArray(rt, 8, block_size=4, fill=0)
            model = [0] * 8
            for op, a, b in ops:
                if op == "write":
                    if a < len(model):
                        arr.write(a, b)
                        model[a] = b
                elif op == "read":
                    if a < len(model):
                        got = arr.read(a)
                        # None in the model = unspecified (slot appeared via
                        # a grow; it reads as fill or stale block content).
                        if model[a] is not None:
                            assert got == model[a]
                elif op == "resize":
                    arr.resize(a)
                    if a <= len(model):
                        model = model[:a]
                    else:
                        # grown slots read as stale block contents or fill;
                        # the model only tracks what the API guarantees:
                        # indices < old length keep their values.
                        model = model + [None] * (a - len(model))
                else:  # append
                    idx = arr.append(b)
                    assert idx == len(model)
                    model.append(b)
            assert len(arr) == len(model)
            snap = arr.snapshot()
            for i, want in enumerate(model):
                if want is not None:
                    assert snap[i] == want

        rt.run(main)


class TestEpochProtocolProperty:
    @given(
        steps=st.lists(
            st.sampled_from(["pin0", "pin1", "unpin0", "unpin1", "defer0",
                             "defer1", "advance"]),
            max_size=50,
        )
    )
    @settings(deadline=None, max_examples=60)
    def test_no_premature_free_under_any_schedule(self, steps):
        """The EBR safety invariant as a random-walk state machine.

        Two tokens take arbitrary pin/unpin/defer steps interleaved with
        reclaim attempts.  After every step we check:

        * an object deferred by a *currently pinned* token while pinned in
          epoch e is never freed while that token has stayed pinned since
          (it could still hold a reference);
        * no object is ever freed twice (the heap would raise);
        * unpinned tokens never block advancement forever (liveness-ish:
          after both unpin, two advances always succeed).
        """
        rt = Runtime(num_locales=1, network="none")

        def main():
            em = EpochManager(rt)
            toks = [em.register(), em.register()]
            pinned_since_defer = {0: [], 1: []}  # live "held" objects

            for step in steps:
                if step.startswith("pin"):
                    i = int(step[-1])
                    toks[i].pin()
                    # A (re-)pin is a quiescence point: the task finished
                    # its previous operation and dropped its references.
                    pinned_since_defer[i] = []
                elif step.startswith("unpin"):
                    i = int(step[-1])
                    toks[i].unpin()
                    pinned_since_defer[i] = []  # released its references
                elif step.startswith("defer"):
                    i = int(step[-1])
                    if toks[i].is_pinned:
                        addr = rt.new_obj(object())
                        toks[i].defer_delete(addr)
                        # The *other* token, if pinned, may hold this too.
                        other = 1 - i
                        if toks[other].is_pinned:
                            pinned_since_defer[other].append(addr)
                else:  # advance
                    em.try_reclaim()
                # Safety: anything a continuously-pinned token could still
                # reference must be live.
                for i in (0, 1):
                    if toks[i].is_pinned:
                        for addr in pinned_since_defer[i]:
                            assert rt.is_live(addr), (
                                f"object freed while token {i} stayed pinned"
                            )
            # Liveness-ish tail: quiesce and confirm progress resumes.
            toks[0].unpin()
            toks[1].unpin()
            assert em.try_reclaim()
            assert em.try_reclaim()
            em.clear()

        rt.run(main)

    @given(n=st.integers(min_value=1, max_value=40))
    @settings(deadline=None, max_examples=20)
    def test_every_deferred_object_freed_exactly_once(self, n):
        rt = Runtime(num_locales=1, network="none")

        def main():
            em = EpochManager(rt)
            tok = em.register()
            addrs = []
            tok.pin()
            for i in range(n):
                a = rt.new_obj(i)
                addrs.append(a)
                tok.defer_delete(a)
            tok.unpin()
            # Reclaim via advances AND a final clear: the double-free
            # detection in the heap proves exactly-once.
            em.try_reclaim()
            em.try_reclaim()
            em.try_reclaim()
            em.clear()
            assert all(not rt.is_live(a) for a in addrs)
            assert em.stats.objects_reclaimed == n

        rt.run(main)
