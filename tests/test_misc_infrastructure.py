"""Coverage for the supporting infrastructure: errors, context, tasking,
diagnostics, privatization helpers, and the huge-machine fallback."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.errors import (
    CompressionError,
    DoubleFreeError,
    EmptyStructureError,
    EpochManagerError,
    HeapExhaustedError,
    InvalidAddressError,
    LocaleError,
    MemoryError_,
    NoTaskContextError,
    ReproError,
    RuntimeStateError,
    StructureError,
    TokenStateError,
    TooManyLocalesError,
    UseAfterFreeError,
)
from repro.runtime import Runtime, TaskClock
from repro.runtime.context import TaskContext, context_scope, current_context, maybe_context
from repro.runtime.tasking import TaskGroup, spawn_tree_overhead


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc in (
            RuntimeStateError,
            NoTaskContextError,
            LocaleError,
            MemoryError_,
            InvalidAddressError,
            UseAfterFreeError,
            DoubleFreeError,
            HeapExhaustedError,
            CompressionError,
            TooManyLocalesError,
            TokenStateError,
            EpochManagerError,
            StructureError,
            EmptyStructureError,
        ):
            assert issubclass(exc, ReproError)

    def test_memory_errors_group(self):
        assert issubclass(UseAfterFreeError, MemoryError_)
        assert issubclass(DoubleFreeError, MemoryError_)
        assert issubclass(InvalidAddressError, MemoryError_)

    def test_too_many_locales_is_a_compression_error(self):
        assert issubclass(TooManyLocalesError, CompressionError)

    def test_no_task_context_is_a_runtime_state_error(self):
        assert issubclass(NoTaskContextError, RuntimeStateError)

    def test_public_reexports(self):
        assert repro.UseAfterFreeError is UseAfterFreeError
        assert repro.ReproError is ReproError


class TestContextScope:
    def test_scope_installs_and_restores(self, rt):
        assert maybe_context() is None
        ctx = TaskContext(runtime=rt, locale_id=1, clock=TaskClock(), task_id=99)
        with context_scope(ctx):
            assert current_context() is ctx
        assert maybe_context() is None

    def test_scopes_nest(self, rt):
        c1 = TaskContext(runtime=rt, locale_id=0, clock=TaskClock(), task_id=1)
        c2 = TaskContext(runtime=rt, locale_id=1, clock=TaskClock(), task_id=2)
        with context_scope(c1):
            with context_scope(c2):
                assert current_context() is c2
            assert current_context() is c1

    def test_scope_restores_after_exception(self, rt):
        ctx = TaskContext(runtime=rt, locale_id=0, clock=TaskClock(), task_id=1)
        with pytest.raises(ValueError):
            with context_scope(ctx):
                raise ValueError
        assert maybe_context() is None

    def test_current_context_raises_outside(self):
        with pytest.raises(NoTaskContextError):
            current_context()

    def test_context_is_thread_local(self, rt):
        ctx = TaskContext(runtime=rt, locale_id=0, clock=TaskClock(), task_id=1)
        other_thread_sees = []

        def probe():
            other_thread_sees.append(maybe_context())

        with context_scope(ctx):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert other_thread_sees == [None]


class TestTaskGroup:
    def test_spawn_tree_overhead_is_logarithmic(self):
        assert spawn_tree_overhead(0, 1.0) == 0.0
        assert spawn_tree_overhead(1, 1.0) == 1.0
        assert spawn_tree_overhead(7, 1.0) == 3.0
        assert spawn_tree_overhead(8, 1.0) == 4.0

    def test_join_returns_latest_finish(self, rt):
        group = TaskGroup(rt)

        def work():
            current_context().clock.advance(5.0)

        group.spawn(work, (), locale_id=0, start_time=1.0)
        group.spawn(lambda: None, (), locale_id=1, start_time=2.0)
        assert group.join() == 6.0

    def test_double_join_rejected(self, rt):
        group = TaskGroup(rt)
        group.spawn(lambda: None, (), locale_id=0, start_time=0.0)
        group.join()
        with pytest.raises(RuntimeStateError):
            group.join()

    def test_spawn_after_join_rejected(self, rt):
        group = TaskGroup(rt)
        group.join()
        with pytest.raises(RuntimeStateError):
            group.spawn(lambda: None, (), locale_id=0, start_time=0.0)

    def test_child_exception_surfaces_at_join(self, rt):
        group = TaskGroup(rt)

        def boom():
            raise KeyError("child")

        group.spawn(boom, (), locale_id=0, start_time=0.0)
        with pytest.raises(KeyError):
            group.join()

    def test_task_rngs_differ_between_tasks(self, rt):
        draws = []
        lock = threading.Lock()

        def work():
            with lock:
                draws.append(current_context().rng.random())

        group = TaskGroup(rt)
        for _ in range(4):
            group.spawn(work, (), locale_id=0, start_time=0.0)
        group.join()
        assert len(set(draws)) == 4


class TestDiagnosticsSnapshot:
    def test_imbalance_detects_hot_locale(self):
        rt = Runtime(num_locales=4, network="none")

        def main():
            # Flood locale 0's progress thread with remote atomics.
            hot = rt.atomic_int(0, locale=0)
            with rt.on(2):
                for _ in range(50):
                    hot.read()

        rt.run(main)
        from repro.runtime import snapshot

        snap = snapshot(rt)
        assert snap.hottest_progress_locale == 0
        assert snap.imbalance() > 1.5

    def test_total_live_objects(self, rt):
        def main():
            rt.new_obj("a", locale=1)
            rt.new_obj("b", locale=2)

        rt.run(main)
        from repro.runtime import snapshot

        assert snapshot(rt).total_live_objects == 2


class TestCommDiagnosticsControl:
    def test_stop_start_gates_recording(self):
        rt = Runtime(num_locales=2, network="ugni")
        cell = rt.atomic_int(0, locale=1)

        def main():
            rt.network.diags.stop()
            cell.read()
            rt.network.diags.start()
            cell.read()

        rt.run(main)
        assert rt.comm_totals()["amo"] == 1

    def test_iter_nonzero(self):
        rt = Runtime(num_locales=2, network="ugni")

        def main():
            rt.atomic_int(0, locale=1).read()

        rt.run(main)
        entries = list(rt.network.diags.iter_nonzero())
        assert (0, "amo", 1) in entries

    def test_per_locale_attribution(self):
        rt = Runtime(num_locales=3, network="ugni")
        cell = rt.atomic_int(0, locale=0)

        def main():
            with rt.on(2):
                cell.read()  # initiated by locale 2

        rt.run(main)
        per = rt.network.diags.per_locale()
        assert per[2]["amo"] == 1
        assert per[0]["amo"] == 0


class TestHugeMachineFallback:
    def test_auto_mode_switches_to_dcas_at_2_16_locales(self):
        """The paper's threshold: >= 2**16 locales preclude compression."""
        rt = Runtime(num_locales=1 << 16, network="ugni")
        from repro.core import AtomicObject

        obj = AtomicObject(rt)
        assert obj.mode == "dcas"
        # And compressed mode refuses outright.
        with pytest.raises(LocaleError):
            AtomicObject(rt, mode="compressed")

    def test_descriptor_mode_keeps_64_bit_words_at_any_scale(self):
        rt = Runtime(num_locales=1 << 16, network="ugni")
        from repro.core import AtomicObject

        obj = AtomicObject(rt, mode="descriptor")
        a = rt.locale(65535).heap.alloc("far away")
        obj.write(a)
        assert obj.peek() == a


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
