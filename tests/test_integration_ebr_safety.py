"""Integration tests: reclamation safety claims, end to end.

The headline guarantees from the paper, checked as observable behaviour:

1. naive immediate reclamation under concurrency *does* produce
   use-after-free (the problem exists);
2. the same workload through the EpochManager never does (the solution
   works);
3. the epoch-safety invariant — an object is only freed after every
   participant has quiesced or re-pinned past its epoch — holds under
   randomized concurrent load;
4. structures sharing one manager interoperate.

The cross-scheme classes at the bottom re-run the ABA/use-after-free
safety workloads through every scheme in :mod:`repro.reclaim` (EBR,
hazard pointers, QSBR, interval-based) via the shared guard protocol —
the same traffic, four different protection mechanisms, zero faults.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.errors import UseAfterFreeError
from repro.reclaim import RECLAIMER_SCHEMES, make_reclaimer
from repro.runtime import Runtime
from repro.structures import (
    InterlockedHashTable,
    LockFreeOrderedList,
    LockFreeQueue,
    LockFreeStack,
)


@pytest.fixture
def rt():
    return Runtime(num_locales=4, network="ugni", tasks_per_locale=2)


class TestTheHazardIsReal:
    def test_unsafe_free_produces_use_after_free(self, rt):
        """The motivating hazard, staged deterministically.

        τ1 reads the head pointer and stalls; τ2 pops the node and — with
        no reclamation system — frees it immediately.  τ1 then dereferences
        its stale pointer: on real hardware, silent corruption; on the
        checked heap, :class:`UseAfterFreeError`.
        """

        def main():
            st = LockFreeStack(rt, aba_protection=False, unsafe_free=True)
            st.push("victim")
            tau1_addr = st.head.read()  # τ1's stale snapshot
            assert st.pop() == "victim"  # τ2 pops and frees immediately
            with pytest.raises(UseAfterFreeError):
                rt.deref(tau1_addr)  # τ1 resumes

        rt.run(main)

    def test_unsafe_free_produces_aba_lost_update(self, rt):
        """Address recycling + plain CAS silently drops a node."""

        def main():
            st = LockFreeStack(rt, aba_protection=False, unsafe_free=True)
            st.push("A")
            b_addr = st.push("B")
            stale = st.head.read()
            stale_next = rt.deref(stale).next  # -> A
            assert st.pop() == "B"  # frees B's address
            reused = st.push("C")  # recycles it (LIFO)
            assert reused == b_addr
            # The stale CAS succeeds and C vanishes from the stack.
            assert st.head.compare_and_swap(stale, stale_next)
            assert st.drain() == ["A"]  # C was lost

        rt.run(main)

    def test_ebr_blocks_the_same_interleaving(self, rt):
        """Pinned τ1 => τ2's free is deferred => no UAF is possible."""
        em = EpochManager(rt)

        def main():
            st = LockFreeStack(rt, aba_protection=False)
            st.push("victim")
            tau1 = em.register()
            tau2 = em.register()
            tau1.pin()
            tau1_addr = st.head.read()
            tau2.pin()
            assert st.pop(tau2) == "victim"  # deferred, NOT freed
            tau2.unpin()
            tau2.try_reclaim()  # cannot advance past τ1's pin twice
            tau2.try_reclaim()
            assert rt.deref(tau1_addr).value == "victim"  # still valid
            tau1.unpin()
            em.clear()

        rt.run(main)

    def test_ebr_same_workload_never_faults(self, rt):
        """Identical traffic through the EpochManager: zero hazards."""
        em = EpochManager(rt)
        st = LockFreeStack(rt, aba_protection=True)
        popped = []
        lock = threading.Lock()

        def body(i, tok):
            tok.pin()
            if i % 2 == 0:
                st.push(i)
            else:
                v = st.try_pop(tok)
                if v is not None:
                    with lock:
                        popped.append(v)
            tok.unpin()
            if i % 128 == 0:
                tok.try_reclaim()

        def main():
            rt.forall(range(1000), body, task_init=em.register,
                      tasks_per_locale=4)
            leftover = st.drain()
            em.clear()
            pushed = {i for i in range(1000) if i % 2 == 0}
            assert sorted(popped + leftover) == sorted(pushed)

        rt.run(main)  # any UAF would raise out of here


class TestEpochSafetyInvariant:
    def test_freed_objects_were_never_reachable_from_a_pin(self, rt):
        """Deferred objects survive while their epoch might be visible.

        Instrumented variant of the invariant: we track, per object, the
        global epoch at defer time; at the moment of physical free the
        epoch must have advanced at least twice (mod the 3-cycle), which
        is the paper's quiescence condition.
        """
        em = EpochManager(rt)
        defer_epoch = {}
        lock = threading.Lock()

        # Monkeypatch-free instrumentation: wrap free_bulk via heap stats.

        def body(i, tok):
            tok.pin()
            addr = rt.new_obj(i)
            with lock:
                defer_epoch[addr] = em.stats.advances
            tok.defer_delete(addr)
            tok.unpin()
            if i % 64 == 0:
                tok.try_reclaim()

        def main():
            rt.forall(range(600), body, task_init=em.register)
            # Objects still live must be from recent epochs; objects freed
            # must have been deferred at least 1 full advance ago.
            now = em.stats.advances
            for addr, at in defer_epoch.items():
                if not rt.is_live(addr):
                    assert now - at >= 1, (
                        f"object freed in the same advance window it was"
                        f" deferred (deferred@{at}, now {now})"
                    )
            em.clear()

        rt.run(main)

    def test_long_pin_holds_back_every_reclaim(self, rt):
        em = EpochManager(rt)

        def main():
            blocker = em.register()
            blocker.pin()
            em.try_reclaim()  # allowed: blocker is in the current epoch

            worker = em.register()
            addrs = []
            worker.pin()
            for i in range(20):
                a = rt.new_obj(i)
                addrs.append(a)
                worker.defer_delete(a)
            worker.unpin()

            # The blocker is now stale; nothing may be reclaimed.
            for _ in range(5):
                em.try_reclaim()
            assert all(rt.is_live(a) for a in addrs)

            blocker.unpin()
            em.try_reclaim()
            em.try_reclaim()
            em.try_reclaim()
            assert any(not rt.is_live(a) for a in addrs)
            em.clear()

        rt.run(main)


class TestCrossStructureIntegration:
    def test_four_structures_share_one_manager(self, rt):
        """Stack, queue, list and table all retiring into one manager."""
        em = EpochManager(rt)

        def main():
            st = LockFreeStack(rt)
            q = LockFreeQueue(rt)
            lst = LockFreeOrderedList(rt)
            table = InterlockedHashTable(rt, buckets=16, manager=em)

            def body(i, tok):
                tok.pin()
                st.push(i)
                q.enqueue(i, tok)
                lst.insert(i, token=tok)
                table.update("total", lambda v: v + 1, default=0, token=tok)
                tok.unpin()
                if i % 3 == 0:
                    tok.pin()
                    st.try_pop(tok)
                    q.try_dequeue(tok)
                    lst.remove(i - 3, token=tok)
                    tok.unpin()
                if i % 100 == 0:
                    tok.try_reclaim()

            rt.forall(range(300), body, task_init=em.register)
            assert table.get("total") == 300
            em.clear()
            # Everything reclaimed must stay consistent: re-verify reads.
            keys = lst.unsafe_keys()
            assert keys == sorted(set(keys))

        rt.run(main)

    def test_pipeline_stack_to_queue(self, rt):
        """Move every element from a stack into a queue concurrently."""
        em = EpochManager(rt)

        def main():
            st = LockFreeStack(rt)
            q = LockFreeQueue(rt)
            for i in range(200):
                st.push(i)

            def mover(i, tok):
                tok.pin()
                v = st.try_pop(tok)
                if v is not None:
                    q.enqueue(v, tok)
                tok.unpin()

            rt.forall(range(200), mover, task_init=em.register)
            moved = q.drain()
            rest = st.drain()
            assert sorted(moved + rest) == list(range(200))
            em.clear()

        rt.run(main)


@pytest.mark.parametrize("scheme", list(RECLAIMER_SCHEMES))
class TestCrossSchemeSafety:
    """The guard protocol's safety claims, per scheme.

    Each test provokes the hazard the reclamation subsystem exists to
    prevent and drives the same traffic through every scheme; the checked
    heap turns any premature free into a deterministic failure.
    """

    def test_guarded_deref_stays_valid(self, rt, scheme):
        """The staged τ1/τ2 interleaving, protected by each scheme.

        τ1 protects its head snapshot (pin for the region schemes, pin +
        hazard for HP); τ2 pops and retires the node; no amount of
        reclamation may invalidate τ1's pointer until it lets go.
        """
        rec = make_reclaimer(rt, scheme)

        def main():
            st = LockFreeStack(rt, aba_protection=False)
            st.push("victim")
            tau1 = rec.register()
            tau2 = rec.register()
            tau1.pin()
            tau1_addr = st.head.read()
            tau1.protect(tau1_addr)  # no-op outside HP
            tau2.pin()
            assert st.pop(tau2) == "victim"  # deferred, NOT freed
            tau2.unpin()
            for _ in range(4):
                rec.try_reclaim()
            assert rt.deref(tau1_addr).value == "victim"  # still valid
            tau1.unpin()
            rec.phase_boundary()
            rec.clear()
            rec.destroy()

        rt.run(main)

    def test_same_workload_never_faults(self, rt, scheme):
        """Concurrent push/pop churn through each scheme: zero hazards."""
        rec = make_reclaimer(rt, scheme)
        st = LockFreeStack(rt, aba_protection=True)
        popped = []
        lock = threading.Lock()

        def body(i, guard):
            guard.pin()
            if i % 2 == 0:
                st.push(i)
            else:
                v = st.try_pop(guard)
                if v is not None:
                    with lock:
                        popped.append(v)
            guard.unpin()

        def main():
            rt.forall(range(1000), body, task_init=rec.register,
                      tasks_per_locale=4)
            leftover = st.drain()
            rec.phase_boundary()
            rec.clear()
            pushed = {i for i in range(1000) if i % 2 == 0}
            assert sorted(popped + leftover) == sorted(pushed)
            rec.destroy()

        rt.run(main)  # any UAF would raise out of here

    def test_queue_churn_never_faults(self, rt, scheme):
        """MS-queue traffic (helping, dummy-node retirement) per scheme."""
        rec = make_reclaimer(rt, scheme)

        def main():
            q = LockFreeQueue(rt, aba_protection=True)

            def body(i, guard):
                guard.pin()
                q.enqueue(i, guard)
                q.try_dequeue(guard)
                guard.unpin()

            rt.forall(range(400), body, task_init=rec.register,
                      tasks_per_locale=2)
            q.drain()
            rec.phase_boundary()
            rec.clear()
            rec.destroy()

        rt.run(main)

    def test_exact_accounting_with_guards_everywhere(self, rt, scheme):
        """Every node freed exactly once, whatever the scheme."""
        rec = make_reclaimer(rt, scheme)

        def main():
            st = LockFreeStack(rt)

            def body(i, guard):
                guard.pin()
                st.push(i)
                assert st.pop(guard) is not None
                guard.unpin()

            rt.forall(range(400), body, task_init=rec.register)
            rec.phase_boundary()
            rec.clear()
            rec.destroy()
            return sum(loc.heap.stats.live for loc in rt.locales)

        assert rt.run(main) == 0

    def test_hash_table_rcu_updates(self, rt, scheme):
        """Snapshot-RCU bucket updates retiring through each scheme."""
        rec = make_reclaimer(rt, scheme)

        def main():
            table = InterlockedHashTable(rt, buckets=8, reclaimer=rec)

            def body(i, guard):
                guard.pin()
                table.update("total", lambda v: v + 1, default=0,
                             token=guard)
                assert table.get("total", token=guard) >= 1
                guard.unpin()

            rt.forall(range(300), body, task_init=rec.register)
            assert table.get("total") == 300
            rec.phase_boundary()
            rec.clear()
            table.destroy()
            rec.destroy()

        rt.run(main)

    def test_ordered_list_traversals(self, rt, scheme):
        """Harris-list insert/remove with hand-over-hand protection."""
        rec = make_reclaimer(rt, scheme)

        def main():
            lst = LockFreeOrderedList(rt)

            def body(i, guard):
                guard.pin()
                lst.insert(i, i * 10, token=guard)
                if i % 3 == 0 and i >= 3:
                    lst.remove(i - 3, token=guard)
                lst.contains(i, token=guard)
                guard.unpin()

            rt.forall(range(200), body, task_init=rec.register,
                      tasks_per_locale=2)
            keys = lst.unsafe_keys()
            assert keys == sorted(set(keys))
            rec.phase_boundary()
            rec.clear()
            rec.destroy()

        rt.run(main)


class TestMemoryAccountingEndToEnd:
    def test_no_leaks_after_full_lifecycle(self, rt):
        em = EpochManager(rt)

        def main():
            st = LockFreeStack(rt)

            def body(i, tok):
                tok.pin()
                st.push(i)
                st.try_pop(tok)
                tok.unpin()

            rt.forall(range(500), body, task_init=em.register)
            st.drain()  # leaks pops without tokens... so use tokens:
            em.clear()
            return sum(loc.heap.stats.live for loc in rt.locales)

        # drain() above pops without tokens -> those nodes leak by design;
        # bound the leak to the drained remainder, everything else freed.
        leaked = rt.run(main)
        assert leaked <= 500

    def test_exact_accounting_with_tokens_everywhere(self, rt):
        em = EpochManager(rt)

        def main():
            st = LockFreeStack(rt)

            def body(i, tok):
                tok.pin()
                st.push(i)
                assert st.pop(tok) is not None
                tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            em.clear()
            return sum(loc.heap.stats.live for loc in rt.locales)

        assert rt.run(main) == 0  # every node freed exactly once
