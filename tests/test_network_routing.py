"""Tests for the network model's routing rules (the DESIGN.md table).

Every row of the routing table is pinned down by comparing virtual costs
and counter movements between configurations: local vs remote, ugni vs
none, narrow vs wide, opted-out vs network atomics.
"""

from __future__ import annotations


from repro.runtime import Runtime


def _cost_of(rt: Runtime, fn) -> float:
    """Virtual seconds one call costs inside a fresh root task."""

    def main():
        with rt.timed() as t:
            fn()
        return t.elapsed

    return rt.run(main)


def _totals(rt: Runtime):
    return rt.comm_totals()


class TestAtomicRouting:
    def test_ugni_local_atomic_pays_nic_price(self):
        """Under ugni even locale-local atomics ride the (incoherent) NIC."""
        ugni = Runtime(num_locales=2, network="ugni")
        none = Runtime(num_locales=2, network="none")
        c_ugni = _cost_of(ugni, lambda: ugni.atomic_int(0, locale=0).read())
        c_none = _cost_of(none, lambda: none.atomic_int(0, locale=0).read())
        assert c_ugni > 5 * c_none  # the order-of-magnitude local penalty

    def test_remote_atomic_ugni_is_rdma_none_is_am(self):
        ugni = Runtime(num_locales=2, network="ugni")
        none = Runtime(num_locales=2, network="none")
        c_ugni = _cost_of(ugni, lambda: ugni.atomic_int(0, locale=1).read())
        c_none = _cost_of(none, lambda: none.atomic_int(0, locale=1).read())
        assert c_none > 3 * c_ugni  # AM round trip dwarfs an RDMA atomic

    def test_remote_atomic_counters(self):
        ugni = Runtime(num_locales=2, network="ugni")

        def main():
            ugni.atomic_int(0, locale=1).read()

        ugni.run(main)
        t = _totals(ugni)
        assert t["amo"] == 1 and t["am"] == 0

        none = Runtime(num_locales=2, network="none")

        def main2():
            none.atomic_int(0, locale=1).read()

        none.run(main2)
        t = _totals(none)
        assert t["am"] == 1 and t["amo"] == 0

    def test_local_atomic_counter_is_local_amo(self):
        for net in ("ugni", "none"):
            rt = Runtime(num_locales=2, network=net)

            def main():
                rt.atomic_int(0, locale=0).read()

            rt.run(main)
            t = _totals(rt)
            assert t["local_amo"] == 1
            assert t["amo"] == 0 and t["am"] == 0

    def test_wide_op_is_never_rdma(self):
        """A remote DCAS costs the AM price even under ugni."""
        ugni = Runtime(num_locales=2, network="ugni")
        c_wide = _cost_of(ugni, lambda: ugni.atomic_wide((0, 0), locale=1).read())
        c_narrow = _cost_of(ugni, lambda: ugni.atomic_int(0, locale=1).read())
        assert c_wide > 3 * c_narrow

        def main():
            ugni.atomic_wide((0, 0), locale=1).read()

        ugni.reset_measurements()
        ugni.run(main)
        assert _totals(ugni)["am"] == 1  # remote execution, not RDMA

    def test_local_wide_op_is_cpu_dcas(self):
        ugni = Runtime(num_locales=2, network="ugni")
        c = _cost_of(ugni, lambda: ugni.atomic_wide((0, 0), locale=0).read())
        assert c < ugni.config.costs.nic_atomic_local_latency

    def test_opt_out_avoids_the_nic_locally(self):
        """Opted-out atomics are CPU-priced even under ugni."""
        from repro.atomics import AtomicUInt64

        ugni = Runtime(num_locales=2, network="ugni")
        cell = AtomicUInt64(ugni, 0, 0, opt_out=True)
        c = _cost_of(ugni, cell.read)
        assert c <= 2 * ugni.config.costs.cpu_atomic_latency

    def test_opt_out_remote_still_pays_am(self):
        from repro.atomics import AtomicUInt64

        ugni = Runtime(num_locales=2, network="ugni")
        cell = AtomicUInt64(ugni, 1, 0, opt_out=True)
        c = _cost_of(ugni, cell.read)
        assert c >= 2 * ugni.config.costs.am_latency


class TestDataRouting:
    def test_local_get_is_cheap(self):
        rt = Runtime(num_locales=2, network="ugni")
        addr = rt.locale(0).heap.alloc("x")

        def main():
            with rt.timed() as t:
                rt.deref(addr)
            return t.elapsed

        assert rt.run(main) < 10e-9

    def test_remote_get_counts_and_costs(self):
        rt = Runtime(num_locales=2, network="ugni")
        addr = rt.locale(1).heap.alloc("x")

        def main():
            with rt.timed() as t:
                rt.deref(addr)
            return t.elapsed

        elapsed = rt.run(main)
        assert elapsed >= rt.config.costs.rdma_small_latency
        assert _totals(rt)["get"] == 1

    def test_remote_put_counts(self):
        rt = Runtime(num_locales=2, network="ugni")
        addr = rt.locale(1).heap.alloc("x")

        def main():
            rt.put(addr, "y")

        rt.run(main)
        assert _totals(rt)["put"] == 1
        assert rt.locale(1).heap.load(addr.offset) == "y"

    def test_bulk_scales_with_bytes(self):
        rt = Runtime(num_locales=2, network="ugni")

        def cost(nbytes):
            def main():
                from repro.runtime.context import current_context

                ctx = current_context()
                with rt.timed() as t:
                    rt.network.bulk(ctx, 1, nbytes)
                return t.elapsed

            return rt.run(main)

        small = cost(64)
        large = cost(1 << 20)
        assert large > small
        # Dominated by the byte cost at 1 MiB.
        assert large > (1 << 20) * rt.config.costs.rdma_byte_cost

    def test_bulk_free_beats_individual_frees(self):
        rt = Runtime(num_locales=2, network="ugni")
        addrs1 = [rt.locale(1).heap.alloc(i) for i in range(50)]
        addrs2 = [rt.locale(1).heap.alloc(i) for i in range(50)]

        def individual():
            with rt.timed() as t:
                for a in addrs1:
                    rt.free(a)
            return t.elapsed

        def bulk():
            with rt.timed() as t:
                rt.free_bulk(1, [a.offset for a in addrs2])
            return t.elapsed

        assert rt.run(bulk) < rt.run(individual) / 5


class TestRemoteExecutionRouting:
    def test_on_statement_charges_fork(self):
        rt = Runtime(num_locales=2, network="ugni")

        def main():
            with rt.on(1):
                assert rt.here() == 1
            assert rt.here() == 0

        rt.run(main)
        t = _totals(rt)
        assert t["fork"] == 1

    def test_on_same_locale_is_free(self):
        rt = Runtime(num_locales=2, network="ugni")

        def main():
            with rt.timed() as t:
                with rt.on(0):
                    pass
            return t.elapsed

        assert rt.run(main) == 0.0

    def test_remote_alloc_is_an_rpc(self):
        rt = Runtime(num_locales=2, network="ugni")

        def local_alloc():
            with rt.timed() as t:
                rt.new_obj("x", locale=0)
            return t.elapsed

        def remote_alloc():
            with rt.timed() as t:
                rt.new_obj("x", locale=1)
            return t.elapsed

        assert rt.run(remote_alloc) > 5 * rt.run(local_alloc)

    def test_reset_measurements_clears_counters_and_points(self):
        rt = Runtime(num_locales=2, network="ugni")

        def main():
            rt.atomic_int(0, locale=1).read()

        rt.run(main)
        assert _totals(rt)["amo"] == 1
        rt.reset_measurements()
        assert _totals(rt)["amo"] == 0
        assert all(p.next_free == 0.0 for p in rt.network.nic)
