"""Smoke tests: every example script runs clean and prints its checks.

Examples are part of the public contract (they appear in the README), so
CI runs each one as a subprocess and asserts both the exit status and the
presence of the self-verification lines it is supposed to print.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    """Execute one example; returns stdout (fails the test on non-zero)."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, (
        f"{name} exited {proc.returncode}\nstdout:\n{proc.stdout}\n"
        f"stderr:\n{proc.stderr}"
    )
    return proc.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor


def test_quickstart():
    out = run_example("quickstart.py")
    assert "atomic counter: 1000" in out
    assert "live objects after clear: 1" in out
    assert "comm totals" in out


def test_aba_demonstration():
    out = run_example("aba_demonstration.py")
    assert "plain CAS succeeded against the wrong node (ABA!)" in out
    assert "ABA defeated by the 64-bit adjacent counter" in out
    assert "ABA prevented by deferring the reclamation" in out


def test_producer_consumer_queue():
    out = run_example("producer_consumer_queue.py")
    assert "lock-free:" in out
    assert "locked:" in out
    assert "speedup:" in out


def test_distributed_word_count():
    out = run_example("distributed_word_count.py")
    assert "words counted correctly" in out
    assert "bucket owner" in out


def test_privatization_diagnostics():
    out = run_example("privatization_diagnostics.py")
    assert "remote ops = 0" in out
    assert "privatized GETs = 0" in out
