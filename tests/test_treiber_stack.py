"""Tests for the distributed Treiber stack (paper Listing 1)."""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.errors import EmptyStructureError
from repro.structures import LockFreeStack


@pytest.fixture
def em(rt):
    return EpochManager(rt)


class TestSequentialSemantics:
    def test_lifo_order(self, rt):
        def main():
            st = LockFreeStack(rt)
            for i in range(5):
                st.push(i)
            assert [st.pop() for _ in range(5)] == [4, 3, 2, 1, 0]

        rt.run(main)

    def test_pop_empty_raises(self, rt):
        def main():
            with pytest.raises(EmptyStructureError):
                LockFreeStack(rt).pop()

        rt.run(main)

    def test_try_pop_empty_returns_none(self, rt):
        def main():
            assert LockFreeStack(rt).try_pop() is None

        rt.run(main)

    def test_peek_and_is_empty(self, rt):
        def main():
            st = LockFreeStack(rt)
            assert st.is_empty()
            assert st.peek() is None
            st.push("x")
            assert st.peek() == "x"
            assert not st.is_empty()
            st.pop()
            assert st.is_empty()

        rt.run(main)

    def test_nodes_allocated_on_pushing_locale(self, rt):
        def main():
            st = LockFreeStack(rt)
            with rt.on(2):
                addr = st.push("from-2")
            assert addr.locale == 2

        rt.run(main)

    def test_plain_cas_mode_works_sequentially(self, rt):
        def main():
            st = LockFreeStack(rt, aba_protection=False)
            st.push(1)
            st.push(2)
            assert st.pop() == 2
            assert st.pop() == 1

        rt.run(main)

    def test_unsafe_iter_sees_all(self, rt):
        def main():
            st = LockFreeStack(rt)
            for i in range(4):
                st.push(i)
            assert list(st.unsafe_iter()) == [3, 2, 1, 0]

        rt.run(main)

    def test_drain(self, rt):
        def main():
            st = LockFreeStack(rt)
            for i in range(6):
                st.push(i)
            assert sorted(st.drain()) == list(range(6))
            assert st.is_empty()

        rt.run(main)


class TestReclamationIntegration:
    def test_pop_with_token_defers_the_node(self, rt, em):
        def main():
            st = LockFreeStack(rt)
            addr = st.push("v")
            tok = em.register()
            tok.pin()
            assert st.pop(tok) == "v"
            tok.unpin()
            assert rt.is_live(addr)  # deferred, not freed
            em.clear()
            assert not rt.is_live(addr)

        rt.run(main)

    def test_pop_without_token_leaks_by_default(self, rt):
        def main():
            st = LockFreeStack(rt)
            addr = st.push("v")
            st.pop()
            assert rt.is_live(addr)  # leak is the safe default

        rt.run(main)

    def test_unsafe_free_mode_frees_immediately(self, rt):
        def main():
            st = LockFreeStack(rt, unsafe_free=True)
            addr = st.push("v")
            st.pop()
            assert not rt.is_live(addr)

        rt.run(main)


class TestConcurrent:
    def test_concurrent_pushes_preserve_every_element(self, rt, em):
        def main():
            st = LockFreeStack(rt)

            def body(i, tok):
                tok.pin()
                st.push(i)
                tok.unpin()

            rt.forall(range(400), body, task_init=em.register)
            got = st.drain()
            assert sorted(got) == list(range(400))

        rt.run(main)

    def test_concurrent_push_pop_conserves_elements(self, rt, em):
        def main():
            st = LockFreeStack(rt)
            popped = []
            lock = threading.Lock()

            def pusher(i, tok):
                tok.pin()
                st.push(i)
                tok.unpin()

            def popper(i, tok):
                tok.pin()
                v = st.try_pop(tok)
                tok.unpin()
                if v is not None:
                    with lock:
                        popped.append(v)

            rt.forall(range(300), pusher, task_init=em.register)
            rt.forall(range(300), popper, task_init=em.register)
            rest = st.drain()
            assert sorted(popped + rest) == list(range(300))
            # No duplicates: each element popped at most once.
            assert len(set(popped)) == len(popped)
            em.clear()

        rt.run(main)

    def test_mixed_producers_consumers_same_forall(self, rt, em):
        def main():
            st = LockFreeStack(rt)
            popped = []
            lock = threading.Lock()

            def body(i, tok):
                tok.pin()
                if i % 2 == 0:
                    st.push(i)
                else:
                    v = st.try_pop(tok)
                    if v is not None:
                        with lock:
                            popped.append(v)
                tok.unpin()

            rt.forall(range(500), body, task_init=em.register)
            rest = st.drain()
            pushed = [i for i in range(500) if i % 2 == 0]
            assert sorted(popped + rest) == pushed
            em.clear()

        rt.run(main)

    def test_ebr_protected_plain_cas_stack_is_safe(self, rt, em):
        """Plain CAS + EBR: the paper's fast path, hammered concurrently.

        Every pop defers through a pinned token, so addresses can't recycle
        under a peer's snapshot; the checked heap would raise on any ABA
        corruption or use-after-free.
        """

        def main():
            st = LockFreeStack(rt, aba_protection=False)

            def body(i, tok):
                tok.pin()
                st.push(i)
                st.try_pop(tok)
                tok.unpin()
                if i % 32 == 0:
                    tok.try_reclaim()

            rt.forall(range(600), body, task_init=em.register)
            st.drain()
            em.clear()

        rt.run(main)
