"""Tests for the lock-free ordered list (Harris/Michael with mark bits)."""

from __future__ import annotations

import threading

import pytest

from repro.core import EpochManager
from repro.structures import LockFreeOrderedList
from repro.structures.harris_list import _pack, _unpack
from repro.memory import NIL, GlobalAddress


@pytest.fixture
def em(rt):
    return EpochManager(rt)


class TestMarkPacking:
    def test_pack_unpack_roundtrip(self):
        a = GlobalAddress(3, 0x1230)
        for marked in (False, True):
            addr, m = _unpack(_pack(a, marked))
            assert addr == a
            assert m is marked

    def test_mark_bit_is_bit_zero(self):
        a = GlobalAddress(0, 0x1000)
        assert _pack(a, True) == _pack(a, False) | 1

    def test_nil_packs_cleanly(self):
        assert _unpack(_pack(NIL, False)) == (NIL, False)
        assert _unpack(_pack(NIL, True)) == (NIL, True)


class TestSequentialSetSemantics:
    def test_insert_contains_remove(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            assert lst.insert(5)
            assert lst.contains(5)
            assert not lst.contains(4)
            assert lst.remove(5)
            assert not lst.contains(5)
            assert not lst.remove(5)

        rt.run(main)

    def test_duplicate_insert_rejected(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            assert lst.insert(1)
            assert not lst.insert(1)

        rt.run(main)

    def test_keys_kept_sorted(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            for k in (5, 1, 9, 3, 7):
                lst.insert(k)
            assert lst.unsafe_keys() == [1, 3, 5, 7, 9]

        rt.run(main)

    def test_values_stored_and_fetched(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            lst.insert(1, "one")
            lst.insert(2, "two")
            assert lst.get(1) == "one"
            assert lst.get(2) == "two"
            assert lst.get(3, "default") == "default"

        rt.run(main)

    def test_remove_middle_and_ends(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            for k in range(5):
                lst.insert(k)
            assert lst.remove(2)  # middle
            assert lst.remove(0)  # head
            assert lst.remove(4)  # tail
            assert lst.unsafe_keys() == [1, 3]

        rt.run(main)

    def test_reinsert_after_remove(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            lst.insert(1)
            lst.remove(1)
            assert lst.insert(1)
            assert lst.contains(1)

        rt.run(main)

    def test_failed_insert_does_not_leak(self, rt):
        """A lost-CAS retry frees its unpublished node."""

        def main():
            lst = LockFreeOrderedList(rt)
            before = sum(loc.heap.live_count for loc in rt.locales)
            lst.insert(1)
            lst.insert(1)  # duplicate: no node should stick around
            after = sum(loc.heap.live_count for loc in rt.locales)
            return after - before

        assert rt.run(main) == 1  # exactly the one successful node

    def test_unsafe_items_skips_marked_nodes(self, rt):
        def main():
            lst = LockFreeOrderedList(rt)
            lst.insert(1, "a")
            lst.insert(2, "b")
            lst.remove(1)
            assert dict(lst.unsafe_items()) == {2: "b"}

        rt.run(main)


class TestReclamation:
    def test_removed_nodes_deferred_through_token(self, rt, em):
        def main():
            lst = LockFreeOrderedList(rt)
            tok = em.register()
            lst.insert(7, token=None)
            tok.pin()
            assert lst.remove(7, token=tok)
            tok.unpin()
            assert em.pending_count() >= 1
            em.clear()

        rt.run(main)

    def test_traversal_helps_unlink_marked_nodes(self, rt, em):
        """A find() passing a marked node unlinks and defers it."""

        def main():
            lst = LockFreeOrderedList(rt)
            for k in range(4):
                lst.insert(k)
            tok = em.register()
            tok.pin()
            lst.remove(1, token=tok)
            lst.remove(2, token=tok)
            # A later insert traverses and must not trip over marked nodes.
            assert lst.insert(10, token=tok)
            tok.unpin()
            assert lst.unsafe_keys() == [0, 3, 10]
            em.clear()

        rt.run(main)


class TestConcurrent:
    def test_disjoint_concurrent_inserts(self, rt, em):
        def main():
            lst = LockFreeOrderedList(rt)

            def body(i, tok):
                tok.pin()
                assert lst.insert(i, i * 10, token=tok)
                tok.unpin()

            rt.forall(range(200), body, task_init=em.register)
            assert lst.unsafe_keys() == list(range(200))
            assert lst.get(137) == 1370
            em.clear()

        rt.run(main)

    def test_competing_inserts_of_same_keys(self, rt, em):
        """Exactly one winner per key under racing inserts."""

        def main():
            lst = LockFreeOrderedList(rt)
            wins = []
            lock = threading.Lock()

            def body(i, tok):
                key = i % 50  # 4+ tasks race per key
                tok.pin()
                if lst.insert(key, token=tok):
                    with lock:
                        wins.append(key)
                tok.unpin()

            rt.forall(range(200), body, task_init=em.register)
            assert sorted(wins) == list(range(50))
            assert lst.unsafe_keys() == list(range(50))
            em.clear()

        rt.run(main)

    def test_concurrent_insert_remove_mix(self, rt, em):
        def main():
            lst = LockFreeOrderedList(rt)
            for k in range(100):
                lst.insert(k)

            def body(i, tok):
                tok.pin()
                if i % 2 == 0:
                    lst.remove(i % 100, token=tok)
                else:
                    lst.insert(100 + i, token=tok)
                tok.unpin()

            rt.forall(range(200), body, task_init=em.register)
            keys = lst.unsafe_keys()
            assert keys == sorted(set(keys))  # sorted, no duplicates
            # Every even key 0..98 removed; odd survivors intact.
            for k in range(0, 100, 2):
                assert k not in keys
            for k in range(1, 100, 2):
                assert k in keys
            em.clear()

        rt.run(main)

    def test_remove_returns_true_exactly_once_per_key(self, rt, em):
        def main():
            lst = LockFreeOrderedList(rt)
            for k in range(40):
                lst.insert(k)
            removed = []
            lock = threading.Lock()

            def body(i, tok):
                tok.pin()
                if lst.remove(i % 40, token=tok):
                    with lock:
                        removed.append(i % 40)
                tok.unpin()

            rt.forall(range(160), body, task_init=em.register)
            assert sorted(removed) == list(range(40))
            assert lst.unsafe_keys() == []
            em.clear()

        rt.run(main)
