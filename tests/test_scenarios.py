"""Tests for the declarative scenario engine (repro.bench.scenarios).

Covers the validation surface (unknown keys, bad network names,
non-positive locale counts, bad workload parameters), TOML loading, the
registry, the parallel grid runner, report/baseline aggregation, and the
determinism contract: a named scenario's virtual results are bit-identical
across repeated runs and across worker-pool sizes.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.bench.scenarios import (
    MeasureSpec,
    ScenarioError,
    ScenarioSpec,
    TopologySpec,
    WORKLOAD_KINDS,
    WorkloadSpec,
    build_report,
    get_scenario,
    iter_scenarios,
    load_baselines,
    baseline_entry,
    register_scenario,
    run_scenario,
    run_scenario_grid,
    scenario_names,
)

#: A tiny-but-real document used by the parsing tests.
DOC = {
    "scenario": {"name": "t", "description": "d"},
    "topology": {"locales": 2, "network": "none", "tasks_per_locale": 1},
    "workload": {"kind": "atomic_mix", "cell": "atomic_int", "ops_per_task": 8},
    "measure": {"ops_scale": 1.0, "repeats": 1},
}


def _doc(**overrides):
    doc = {k: dict(v) for k, v in DOC.items()}
    for key, value in overrides.items():
        if value is None:
            doc.pop(key, None)
        else:
            doc[key] = value
    return doc


class TestSpecParsing:
    def test_round_trip(self):
        spec = ScenarioSpec.from_dict(DOC)
        assert spec.name == "t"
        assert spec.topology.locales == 2
        assert spec.topology.network == "none"
        assert spec.workload.kind == "atomic_mix"
        again = ScenarioSpec.from_dict(spec.as_dict())
        assert again == spec

    def test_unknown_top_level_key_rejected(self):
        doc = _doc()
        doc["workloads"] = {}
        with pytest.raises(ScenarioError, match="workloads"):
            ScenarioSpec.from_dict(doc)

    def test_unknown_topology_key_rejected(self):
        with pytest.raises(ScenarioError, match="locals"):
            ScenarioSpec.from_dict(_doc(topology={"locals": 4}))

    def test_unknown_measure_key_rejected(self):
        with pytest.raises(ScenarioError, match="opscale"):
            ScenarioSpec.from_dict(_doc(measure={"opscale": 2}))

    def test_unknown_workload_param_rejected(self):
        with pytest.raises(ScenarioError, match="zipf_exponent"):
            # zipf_exponent belongs to atomic_hotspot, not atomic_mix
            ScenarioSpec.from_dict(
                _doc(workload={"kind": "atomic_mix", "zipf_exponent": 1.5})
            )

    def test_unknown_workload_kind_rejected(self):
        with pytest.raises(ScenarioError, match="atomic_mixx"):
            ScenarioSpec.from_dict(_doc(workload={"kind": "atomic_mixx"}))

    def test_missing_workload_rejected(self):
        with pytest.raises(ScenarioError, match="workload"):
            ScenarioSpec.from_dict(_doc(workload=None))

    def test_missing_name_rejected(self):
        with pytest.raises(ScenarioError, match="name"):
            ScenarioSpec.from_dict(_doc(scenario={"description": "x"}))

    def test_bad_network_name_rejected(self):
        with pytest.raises(ScenarioError, match="infiniband"):
            ScenarioSpec.from_dict(_doc(topology={"network": "infiniband"}))

    def test_non_positive_locales_rejected(self):
        for bad in (0, -3):
            with pytest.raises(ScenarioError, match="locales"):
                ScenarioSpec.from_dict(_doc(topology={"locales": bad}))

    def test_non_integer_locales_rejected(self):
        with pytest.raises(ScenarioError, match="locales"):
            TopologySpec(locales="four")

    def test_bad_cost_profile_rejected(self):
        with pytest.raises(ScenarioError, match="turbo"):
            TopologySpec(cost_profile="turbo")

    def test_bad_cost_override_field_rejected(self):
        with pytest.raises(ScenarioError, match="warp_latency"):
            TopologySpec(cost_overrides={"warp_latency": 1e-6})

    def test_non_positive_cost_scale_rejected(self):
        with pytest.raises(ScenarioError, match="cost scale"):
            TopologySpec(cost_scale=0)

    def test_bad_measure_values_rejected(self):
        with pytest.raises(ScenarioError, match="ops_scale"):
            MeasureSpec(ops_scale=-1)
        with pytest.raises(ScenarioError, match="repeats"):
            MeasureSpec(repeats=0)

    def test_non_numeric_scales_rejected_as_scenario_errors(self):
        """TOML-typo strings must not escape as raw TypeErrors."""
        with pytest.raises(ScenarioError, match="ops_scale"):
            MeasureSpec(ops_scale="2")
        with pytest.raises(ScenarioError, match="cost scale"):
            TopologySpec(cost_scale="2")

    def test_phased_reclaim_with_shared_locale_workers_rejected(self):
        """The determinism rule is enforced, not just documented."""
        from repro.bench.workloads import (
            run_epoch_mixed,
            run_multi_structure,
            run_producer_consumer,
        )
        from repro.runtime import Runtime

        rt = Runtime(num_locales=2, tasks_per_locale=2)
        for call in (
            lambda: run_epoch_mixed(
                rt, ops_per_task=4, tasks_per_locale=2, rounds=2,
                reclaim_between_rounds=True,
            ),
            lambda: run_producer_consumer(
                rt, items_per_task=4, tasks_per_locale=2, rounds=2,
                reclaim_between_rounds=True,
            ),
            lambda: run_multi_structure(
                rt, ops_per_slot=4, tasks_per_locale=2, rounds=2,
                reclaim_between_rounds=True,
            ),
        ):
            with pytest.raises(ValueError, match="reclaim_between_rounds"):
                call()
        rt.close()

    def test_topology_materializes_runtime_config(self):
        topo = TopologySpec(
            locales=3,
            network="none",
            cost_profile="degraded",
            cost_scale=2.0,
            cost_overrides={"am_latency": 1e-5},
            seed=7,
        )
        cfg = topo.runtime_config()
        assert cfg.num_locales == 3
        assert cfg.seed == 7
        assert not cfg.uses_network_atomics
        # override wins over profile and scale
        assert cfg.costs.am_latency == 1e-5
        # non-overridden fields carry profile x scale (degraded=8x, scale=2x)
        from repro.comm.costs import DEFAULT_COSTS

        assert cfg.costs.am_service == DEFAULT_COSTS.am_service * 8 * 2

    def test_resolved_params_scaling_floors_at_one(self):
        w = WorkloadSpec.from_dict({"kind": "atomic_mix", "ops_per_task": 10})
        assert w.resolved_params(0.5)["ops_per_task"] == 5
        assert w.resolved_params(0.001)["ops_per_task"] == 1
        assert w.resolved_params(1.0)["ops_per_task"] == 10

    def test_with_workload_changing_kind_drops_old_params(self):
        spec = ScenarioSpec.from_dict(DOC)
        derived = spec.with_workload(kind="epoch", ops_per_task=4)
        assert derived.workload.kind == "epoch"
        assert "cell" not in dict(derived.workload.params)


@pytest.mark.skipif(
    sys.version_info < (3, 11), reason="tomllib requires Python 3.11+"
)
class TestTomlLoading:
    TOML = """
[scenario]
name = "toml-t"
description = "from toml"

[topology]
locales = 2
network = "ugni"

[workload]
kind = "epoch_mixed"
ops_per_task = 8
write_percent = 50

[measure]
repeats = 2
"""

    def test_from_toml_text(self):
        spec = ScenarioSpec.from_toml(self.TOML)
        assert spec.name == "toml-t"
        assert spec.workload.kind == "epoch_mixed"
        assert spec.measure.repeats == 2

    def test_from_toml_file(self, tmp_path):
        path = tmp_path / "s.toml"
        path.write_text(self.TOML)
        assert ScenarioSpec.from_toml(str(path)).name == "toml-t"

    def test_bad_toml_keys_rejected(self):
        with pytest.raises(ScenarioError, match="locals"):
            ScenarioSpec.from_toml(
                '[scenario]\nname = "x"\n[topology]\nlocals = 2\n'
                '[workload]\nkind = "epoch"\n'
            )


class TestRegistry:
    def test_at_least_eight_builtins(self):
        assert len(scenario_names()) >= 8

    def test_iter_matches_names(self):
        assert [s.name for s in iter_scenarios()] == scenario_names()

    def test_builtins_cover_promised_families(self):
        kinds = {s.workload.kind for s in iter_scenarios()}
        assert {"atomic_hotspot", "epoch_mixed", "churn", "multi_structure"} <= kinds
        profiles = {s.topology.cost_profile for s in iter_scenarios()}
        assert "degraded" in profiles

    def test_unknown_name_suggests_nearest(self):
        with pytest.raises(ScenarioError, match="hotspot-zipf"):
            get_scenario("hotspot-zip")

    def test_duplicate_registration_rejected(self):
        spec = ScenarioSpec.from_dict(_doc(scenario={"name": "dup-test"}))
        register_scenario(spec)
        try:
            with pytest.raises(ScenarioError, match="dup-test"):
                register_scenario(spec)
            register_scenario(spec, replace_existing=True)  # allowed
        finally:
            from repro.bench import scenarios as _m

            _m._REGISTRY.pop("dup-test", None)


def _mini(name: str, **measure) -> ScenarioSpec:
    """A registered scenario scaled down for fast execution."""
    return get_scenario(name).with_measure(ops_scale=0.02, **measure)


class TestExecution:
    def test_run_scenario_returns_sane_result(self):
        run = run_scenario(_mini("hotspot-zipf"))
        assert run.result.elapsed > 0
        assert run.result.operations > 0
        assert run.result.comm["amo"] + run.result.comm["local_amo"] > 0
        assert run.wall_seconds >= 0

    def test_determinism_across_runs_and_pool_sizes(self):
        """The acceptance-criteria check, in miniature.

        Two repetitions per pool size (the runner itself raises if they
        disagree) and two pool sizes whose results must also coincide.
        """
        for name in ("queue-churn", "write-heavy-reclaim"):
            base = _mini(name, repeats=2)
            results = []
            for pool in (1, 3):
                run = run_scenario(base.with_topology(worker_pool_size=pool))
                results.append(
                    (
                        run.result.elapsed,
                        run.result.operations,
                        dict(run.result.comm),
                    )
                )
            assert results[0] == results[1], f"{name} depends on pool size"

    def test_every_workload_kind_executes(self):
        for kind in WORKLOAD_KINDS:
            spec = ScenarioSpec(
                name=f"mini-{kind}",
                topology=TopologySpec(locales=2, tasks_per_locale=1),
                workload=WorkloadSpec(kind=kind),
                measure=MeasureSpec(ops_scale=0.01),
            )
            result = run_scenario(spec).result
            assert result.elapsed > 0, kind
            assert result.operations > 0, kind

    def test_grid_runs_in_parallel_and_preserves_order(self):
        specs = [_mini("hotspot-zipf"), _mini("paper-atomic-mix")]
        seen = []
        runs = run_scenario_grid(specs, jobs=2, progress=seen.append)
        assert [r.spec.name for r in runs] == ["hotspot-zipf", "paper-atomic-mix"]
        assert len(seen) == 2
        serial = run_scenario_grid(specs, jobs=1)
        assert [r.result.elapsed for r in runs] == [
            r.result.elapsed for r in serial
        ]

    def test_grid_rejects_bad_jobs(self):
        with pytest.raises(ScenarioError):
            run_scenario_grid([_mini("hotspot-zipf")], jobs=0)


class TestReporting:
    def test_report_shape_and_baseline_verdicts(self, tmp_path):
        runs = run_scenario_grid(
            [_mini("hotspot-zipf"), _mini("paper-atomic-mix")], jobs=2
        )
        # Record the first as a baseline; leave the second "new"; then
        # corrupt the first to show "drift".
        baselines = {"hotspot-zipf": baseline_entry(runs[0])}
        report = build_report(runs, baselines=baselines)
        assert report["scenarios"]["hotspot-zipf"]["regression"]["status"] == "match"
        assert report["scenarios"]["paper-atomic-mix"]["regression"]["status"] == "new"

        baselines["hotspot-zipf"]["elapsed_virtual_s"] *= 2
        report = build_report(runs, baselines=baselines)
        entry = report["scenarios"]["hotspot-zipf"]["regression"]
        assert entry["status"] == "drift"
        assert "baseline" in entry

        # ops_scale mismatch -> incomparable, not drift
        baselines["hotspot-zipf"]["ops_scale"] = 1.0
        report = build_report(runs, baselines=baselines)
        assert (
            report["scenarios"]["hotspot-zipf"]["regression"]["status"]
            == "incomparable"
        )

        # The report must be JSON-serializable as-is.
        json.dumps(report)

    def test_load_baselines_missing_file(self, tmp_path):
        assert load_baselines(str(tmp_path / "nope.json")) == {}

    def test_shipped_baselines_cover_every_builtin(self):
        from pathlib import Path

        path = Path(__file__).resolve().parent.parent / "benchmarks" / "scenario_baselines.json"
        baselines = load_baselines(str(path))
        assert set(scenario_names()) <= set(baselines)


class TestCli:
    def test_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["scenarios", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_update_baselines_merges_partial_runs(self, tmp_path, capsys):
        """A --run NAME update must not discard other scenarios' baselines."""
        from repro.bench.__main__ import main

        baselines = tmp_path / "baselines.json"
        baselines.write_text(
            json.dumps(
                {
                    "schema": 1,
                    "scenarios": {
                        "some-other": {
                            "ops_scale": 1.0,
                            "elapsed_virtual_s": 1.0,
                            "operations": 1,
                            "comm": {},
                        }
                    },
                }
            )
        )
        rc = main(
            [
                "scenarios",
                "--run",
                "hotspot-zipf",
                "--baselines",
                str(baselines),
                "--update-baselines",
                "--out",
                str(tmp_path / "r.json"),
            ]
        )
        assert rc == 0
        doc = json.loads(baselines.read_text())
        assert "some-other" in doc["scenarios"]  # preserved
        assert "hotspot-zipf" in doc["scenarios"]  # added

    def test_run_writes_report(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out_path = tmp_path / "report.json"
        rc = main(
            [
                "scenarios",
                "--run",
                "hotspot-zipf",
                "--ops-scale",
                "0.02",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        doc = json.loads(out_path.read_text())
        assert "hotspot-zipf" in doc["scenarios"]
        assert doc["scenarios"]["hotspot-zipf"]["elapsed_virtual_s"] > 0
