"""Unit tests for addresses, pointer compression, and the simulated heap."""

from __future__ import annotations

import pytest

from repro.errors import (
    CompressionError,
    DoubleFreeError,
    InvalidAddressError,
    TooManyLocalesError,
    UseAfterFreeError,
)
from repro.memory import (
    ADDRESS_MASK,
    COMPRESSED_NIL,
    MAX_COMPRESSIBLE_LOCALES,
    NIL,
    GlobalAddress,
    Heap,
    compress,
    compressible,
    decompress,
    is_nil,
)


class TestGlobalAddress:
    def test_nil_identity(self):
        assert NIL.is_nil
        assert is_nil(NIL)
        assert is_nil(None)

    def test_non_nil(self):
        a = GlobalAddress(2, 0x1000)
        assert not a.is_nil
        assert not is_nil(a)

    def test_value_semantics(self):
        assert GlobalAddress(1, 2) == GlobalAddress(1, 2)
        assert hash(GlobalAddress(1, 2)) == hash(GlobalAddress(1, 2))
        assert GlobalAddress(1, 2) != GlobalAddress(2, 2)

    def test_usable_in_sets(self):
        s = {GlobalAddress(0, 16), GlobalAddress(0, 16), GlobalAddress(1, 16)}
        assert len(s) == 2

    def test_repr_marks_nil(self):
        assert "nil" in repr(NIL)


class TestCompression:
    def test_nil_compresses_to_zero(self):
        assert compress(NIL) == COMPRESSED_NIL
        assert decompress(COMPRESSED_NIL) == NIL

    def test_roundtrip_simple(self):
        a = GlobalAddress(3, 0x1000)
        assert decompress(compress(a)) == a

    def test_roundtrip_extremes(self):
        hi = GlobalAddress(MAX_COMPRESSIBLE_LOCALES - 1, ADDRESS_MASK)
        assert decompress(compress(hi)) == hi

    def test_locale_bits_live_in_the_top_16(self):
        word = compress(GlobalAddress(5, 0x1000))
        assert word >> 48 == 5
        assert word & ADDRESS_MASK == 0x1000

    def test_too_many_locales_raises(self):
        with pytest.raises(TooManyLocalesError):
            compress(GlobalAddress(MAX_COMPRESSIBLE_LOCALES, 0x1000))

    def test_offset_over_48_bits_raises(self):
        with pytest.raises(CompressionError):
            compress(GlobalAddress(0, ADDRESS_MASK + 1))

    def test_decompress_rejects_oversized_words(self):
        with pytest.raises(CompressionError):
            decompress(1 << 64)

    def test_compressible_predicate(self):
        assert compressible(GlobalAddress(0, 0x10))
        assert not compressible(GlobalAddress(MAX_COMPRESSIBLE_LOCALES, 0x10))


class TestHeap:
    def test_alloc_returns_address_on_owning_locale(self):
        h = Heap(3)
        a = h.alloc("x")
        assert a.locale == 3
        assert a.offset >= 0x1000

    def test_offsets_are_aligned(self):
        h = Heap(0, alignment=16)
        for _ in range(10):
            assert h.alloc("x").offset % 16 == 0

    def test_load_returns_payload(self):
        h = Heap(0)
        a = h.alloc({"k": 1})
        assert h.load(a.offset) == {"k": 1}

    def test_store_replaces_payload(self):
        h = Heap(0)
        a = h.alloc("old")
        h.store(a.offset, "new")
        assert h.load(a.offset) == "new"

    def test_offset_zero_is_never_allocated(self):
        h = Heap(0)
        for _ in range(100):
            assert h.alloc("x").offset != 0

    def test_use_after_free_raises(self):
        h = Heap(0)
        a = h.alloc("x")
        h.free(a.offset)
        with pytest.raises(UseAfterFreeError):
            h.load(a.offset)

    def test_store_after_free_raises(self):
        h = Heap(0)
        a = h.alloc("x")
        h.free(a.offset)
        with pytest.raises(UseAfterFreeError):
            h.store(a.offset, "y")

    def test_double_free_raises(self):
        h = Heap(0)
        a = h.alloc("x")
        h.free(a.offset)
        with pytest.raises(DoubleFreeError):
            h.free(a.offset)

    def test_free_of_never_allocated_raises(self):
        h = Heap(0)
        with pytest.raises(InvalidAddressError):
            h.free(0xDEAD0)

    def test_load_of_never_allocated_raises(self):
        h = Heap(0)
        with pytest.raises(InvalidAddressError):
            h.load(0xDEAD0)

    def test_lifo_reuse_recycles_most_recent_free(self):
        """The allocator behaviour that makes ABA real."""
        h = Heap(0)
        a = h.alloc("a")
        b = h.alloc("b")
        h.free(a.offset)
        h.free(b.offset)
        c = h.alloc("c")
        assert c.offset == b.offset  # LIFO: b's address first
        d = h.alloc("d")
        assert d.offset == a.offset

    def test_generation_counts_recycles(self):
        h = Heap(0)
        a = h.alloc("a")
        assert h.generation(a.offset) == 0
        h.free(a.offset)
        b = h.alloc("b")
        assert b.offset == a.offset
        assert h.generation(a.offset) == 1

    def test_generation_of_unknown_address_raises(self):
        with pytest.raises(InvalidAddressError):
            Heap(0).generation(0x4000)

    def test_is_live(self):
        h = Heap(0)
        a = h.alloc("x")
        assert h.is_live(a.offset)
        h.free(a.offset)
        assert not h.is_live(a.offset)
        assert not h.is_live(0xBEEF0)

    def test_free_bulk_counts(self):
        h = Heap(0)
        addrs = [h.alloc(i) for i in range(5)]
        assert h.free_bulk([a.offset for a in addrs]) == 5
        assert h.live_count == 0

    def test_stats_track_history(self):
        h = Heap(0)
        a = h.alloc("a")
        h.alloc("b")
        h.free(a.offset)
        h.alloc("c")  # reuses a's slot
        s = h.snapshot_stats()
        assert s.allocations == 3
        assert s.frees == 1
        assert s.reuses == 1
        assert s.live == 2
        assert s.peak_live == 2

    def test_payload_reference_dropped_on_free(self):
        """Freeing must not keep the payload alive (simulated destruction)."""
        import weakref

        class Obj:
            pass

        h = Heap(0)
        o = Obj()
        ref = weakref.ref(o)
        a = h.alloc(o)
        h.free(a.offset)
        del o
        assert ref() is None

    def test_base_must_be_positive(self):
        with pytest.raises(ValueError):
            Heap(0, base=0)

    def test_alignment_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            Heap(0, alignment=3)
