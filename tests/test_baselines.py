"""Tests for the lock-based baselines and the blocking reclaimer."""

from __future__ import annotations

import threading

import pytest

from repro.baselines import (
    GlobalLockReclaimer,
    LockedMap,
    LockedQueue,
    LockedStack,
    SpinLock,
)
from repro.errors import EmptyStructureError
from repro.runtime import Runtime


class TestSpinLock:
    def test_mutual_exclusion(self, rt):
        lock = SpinLock(rt)
        counter = {"v": 0}

        def body(i):
            with lock:
                v = counter["v"]
                counter["v"] = v + 1

        rt.run(lambda: rt.forall(range(300), body))
        assert counter["v"] == 300

    def test_acquire_release_counts(self, rt):
        lock = SpinLock(rt)

        def main():
            for _ in range(5):
                lock.acquire()
                lock.release()

        rt.run(main)
        assert lock.acquisitions == 5
        assert lock.attempts >= 5

    def test_hold_time_serializes_in_virtual_time(self):
        """Lock capacity bounds throughput regardless of task count."""
        rt = Runtime(num_locales=1, network="none", tasks_per_locale=8)
        lock = SpinLock(rt)
        c = rt.config.costs

        def main():
            def body(i):
                lock.acquire()
                # Critical section: one simulated local atomic of work.
                rt.atomic_int(0, locale=0).read()
                lock.release()

            with rt.timed() as t:
                rt.forall(range(256), body, tasks_per_locale=8)
            return t.elapsed

        elapsed = rt.run(main)
        # 256 critical sections of >= one atomic each must serialize.
        assert elapsed >= 256 * c.cpu_atomic_latency

    def test_remote_lock_costs_more(self):
        rt = Runtime(num_locales=2, network="ugni")
        local = SpinLock(rt, locale=0)
        remote = SpinLock(rt, locale=1)

        def cost(lock):
            def main():
                with rt.timed() as t:
                    lock.acquire()
                    lock.release()
                return t.elapsed

            return rt.run(main)

        assert cost(remote) > cost(local)


class TestLockedStack:
    def test_lifo(self, rt):
        def main():
            st = LockedStack(rt)
            for i in range(5):
                st.push(i)
            assert [st.pop() for _ in range(5)] == [4, 3, 2, 1, 0]

        rt.run(main)

    def test_empty_pop_raises(self, rt):
        def main():
            with pytest.raises(EmptyStructureError):
                LockedStack(rt).pop()
            assert LockedStack(rt).try_pop() is None

        rt.run(main)

    def test_peek_len(self, rt):
        def main():
            st = LockedStack(rt)
            assert st.peek() is None
            st.push("x")
            assert st.peek() == "x"
            assert len(st) == 1

        rt.run(main)

    def test_concurrent_conservation(self, rt):
        def main():
            st = LockedStack(rt)
            rt.forall(range(200), st.push)
            popped = []
            lock = threading.Lock()

            def popper(i):
                v = st.try_pop()
                if v is not None:
                    with lock:
                        popped.append(v)

            rt.forall(range(200), popper)
            assert sorted(popped) == list(range(200))

        rt.run(main)


class TestLockedQueue:
    def test_fifo(self, rt):
        def main():
            q = LockedQueue(rt)
            for i in range(5):
                q.enqueue(i)
            assert [q.dequeue() for _ in range(5)] == list(range(5))

        rt.run(main)

    def test_empty_dequeue(self, rt):
        def main():
            with pytest.raises(EmptyStructureError):
                LockedQueue(rt).dequeue()
            assert LockedQueue(rt).try_dequeue() is None

        rt.run(main)

    def test_len(self, rt):
        def main():
            q = LockedQueue(rt)
            q.enqueue(1)
            q.enqueue(2)
            assert len(q) == 2

        rt.run(main)


class TestLockedMap:
    def test_crud(self, rt):
        def main():
            m = LockedMap(rt)
            assert m.put("a", 1)
            assert not m.put("a", 2)
            assert m.get("a") == 2
            assert m.contains("a")
            assert m.remove("a")
            assert not m.remove("a")
            assert m.get("a", "dflt") == "dflt"

        rt.run(main)

    def test_update_and_items(self, rt):
        def main():
            m = LockedMap(rt)
            assert m.update("n", lambda v: v + 5, default=0) == 5
            m.put("x", 1)
            assert dict(m.items()) == {"n": 5, "x": 1}
            assert len(m) == 2

        rt.run(main)

    def test_concurrent_updates_are_atomic(self, rt):
        def main():
            m = LockedMap(rt)

            def body(i):
                m.update("c", lambda v: v + 1, default=0)

            rt.forall(range(300), body)
            return m.get("c")

        assert rt.run(main) == 300


class TestGlobalLockReclaimer:
    def test_guard_interface_matches_tokens(self, rt):
        def main():
            glr = GlobalLockReclaimer(rt)
            guard = glr.register()
            guard.pin()
            addr = rt.new_obj("x")
            guard.defer_delete(addr)
            guard.unpin()
            assert guard.try_reclaim()
            assert not rt.is_live(addr)
            guard.unregister()

        rt.run(main)

    def test_reclaim_blocked_by_active_reader(self, rt):
        def main():
            glr = GlobalLockReclaimer(rt, spin_limit=4)
            g1, g2 = glr.register(), glr.register()
            g1.pin()
            addr = rt.new_obj("x")
            g2.defer_delete(addr)
            assert not g2.try_reclaim()  # blocked: a reader is active
            assert rt.is_live(addr)
            g1.unpin()
            assert g2.try_reclaim()
            assert not rt.is_live(addr)

        rt.run(main)

    def test_clear_ignores_readers(self, rt):
        def main():
            glr = GlobalLockReclaimer(rt)
            g = glr.register()
            g.pin()
            addr = rt.new_obj("x")
            g.defer_delete(addr)
            assert glr.clear() == 1
            assert not rt.is_live(addr)
            g.unpin()

        rt.run(main)

    def test_pin_costs_grow_remote(self):
        """Every pin is a remote atomic: the design flaw being ablated."""
        rt = Runtime(num_locales=4, network="ugni")
        glr = GlobalLockReclaimer(rt, home=0)

        def main():
            g = glr.register()
            with rt.on(3):
                rt.reset_measurements()
                g.pin()
                g.unpin()
            return rt.comm_totals()["amo"]

        assert rt.run(main) == 2  # one remote AMO per pin and unpin
