"""Unit tests for the primitive atomics: integers, bools, DCAS, refs."""

from __future__ import annotations

import threading

import pytest

from repro.runtime import Runtime


@pytest.fixture
def rt():
    return Runtime(num_locales=2, network="none")


class TestAtomicUInt64:
    def test_read_write(self, rt):
        a = rt.atomic_uint(7)
        assert a.read() == 7
        a.write(9)
        assert a.read() == 9

    def test_wraps_to_64_bits(self, rt):
        a = rt.atomic_uint((1 << 64) - 1)
        a.add(1)
        assert a.read() == 0

    def test_exchange_returns_old(self, rt):
        a = rt.atomic_uint(1)
        assert a.exchange(2) == 1
        assert a.read() == 2

    def test_cas_success_and_failure(self, rt):
        a = rt.atomic_uint(5)
        assert a.compare_and_swap(5, 6)
        assert not a.compare_and_swap(5, 7)
        assert a.read() == 6

    def test_compare_exchange_reports_observed(self, rt):
        a = rt.atomic_uint(5)
        ok, seen = a.compare_exchange(4, 9)
        assert not ok and seen == 5
        ok, seen = a.compare_exchange(5, 9)
        assert ok and seen == 5

    def test_fetch_add_sub(self, rt):
        a = rt.atomic_uint(10)
        assert a.fetch_add(3) == 10
        assert a.fetch_sub(5) == 13
        assert a.read() == 8

    def test_bitwise_ops(self, rt):
        a = rt.atomic_uint(0b1100)
        assert a.fetch_or(0b0011) == 0b1100
        assert a.read() == 0b1111
        assert a.fetch_and(0b1010) == 0b1111
        assert a.read() == 0b1010
        assert a.fetch_xor(0b1111) == 0b1010
        assert a.read() == 0b0101

    def test_peek_poke_do_not_charge(self, rt):
        a = rt.atomic_uint(0)
        a.poke(42)
        assert a.peek() == 42

    def test_concurrent_fetch_add_is_atomic(self, rt):
        a = rt.atomic_uint(0)
        N, T = 500, 8

        def worker():
            for _ in range(N):
                a.fetch_add(1)

        ts = [threading.Thread(target=worker) for _ in range(T)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert a.peek() == N * T


class TestAtomicInt64:
    def test_signed_interpretation(self, rt):
        a = rt.atomic_int(-1)
        assert a.read() == -1

    def test_negative_arithmetic(self, rt):
        a = rt.atomic_int(0)
        a.sub(5)
        assert a.read() == -5
        assert a.fetch_add(3) == -5
        assert a.read() == -2

    def test_wrap_at_min_int(self, rt):
        a = rt.atomic_int(-(1 << 63))
        a.sub(1)
        assert a.read() == (1 << 63) - 1

    def test_exchange_signed(self, rt):
        a = rt.atomic_int(-7)
        assert a.exchange(7) == -7

    def test_compare_exchange_signed_observed(self, rt):
        a = rt.atomic_int(-3)
        ok, seen = a.compare_exchange(0, 1)
        assert not ok and seen == -3


class TestAtomicBool:
    def test_test_and_set_returns_previous(self, rt):
        f = rt.atomic_bool(False)
        assert f.test_and_set() is False  # caller won
        assert f.test_and_set() is True  # already held
        f.clear()
        assert f.test_and_set() is False

    def test_read_write_exchange(self, rt):
        f = rt.atomic_bool(True)
        assert f.read() is True
        assert f.exchange(False) is True
        assert f.read() is False

    def test_cas(self, rt):
        f = rt.atomic_bool(False)
        assert f.compare_and_swap(False, True)
        assert not f.compare_and_swap(False, True)

    def test_only_one_thread_wins_test_and_set(self, rt):
        f = rt.atomic_bool(False)
        wins = []

        def worker():
            if not f.test_and_set():
                wins.append(1)

        ts = [threading.Thread(target=worker) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(wins) == 1


class TestAtomicWide128:
    def test_read_write_pairs(self, rt):
        w = rt.atomic_wide((1, 2))
        assert w.read() == (1, 2)
        w.write((3, 4))
        assert w.read() == (3, 4)

    def test_halves_truncate_to_64_bits(self, rt):
        w = rt.atomic_wide((1 << 65, 1 << 64))
        assert w.read() == (0, 0)

    def test_exchange(self, rt):
        w = rt.atomic_wide((1, 1))
        assert w.exchange((2, 2)) == (1, 1)

    def test_dcas_checks_both_halves(self, rt):
        w = rt.atomic_wide((10, 0))
        assert not w.compare_and_swap((10, 1), (11, 2))  # counter mismatch
        assert not w.compare_and_swap((9, 0), (11, 2))  # value mismatch
        assert w.compare_and_swap((10, 0), (11, 1))
        assert w.read() == (11, 1)

    def test_compare_exchange_reports_pair(self, rt):
        w = rt.atomic_wide((1, 2))
        ok, seen = w.compare_exchange((0, 0), (5, 5))
        assert not ok and seen == (1, 2)

    def test_bump_exchange_lo_increments_counter(self, rt):
        w = rt.atomic_wide((5, 7))
        old = w.bump_exchange_lo(9)
        assert old == (5, 7)
        assert w.read() == (9, 8)


class TestAtomicRef:
    def test_identity_cas(self, rt):
        from repro.atomics import AtomicRef

        x, y = object(), object()
        r = AtomicRef(rt, 0, x)
        assert r.compare_and_swap(x, y)
        assert not r.compare_and_swap(x, y)
        assert r.read() is y

    def test_equal_but_not_identical_fails(self, rt):
        """CAS is pointer semantics: equality is not identity."""
        from repro.atomics import AtomicRef

        a, b = [1], [1]
        r = AtomicRef(rt, 0, a)
        assert a == b
        assert not r.compare_and_swap(b, None)

    def test_exchange_and_none(self, rt):
        from repro.atomics import AtomicRef

        r = AtomicRef(rt, 0, None)
        tok = object()
        assert r.exchange(tok) is None
        assert r.exchange(None) is tok


class TestChargingOutsideTasks:
    def test_atomics_work_without_a_task_context(self, rt):
        """Pure-semantics use outside Runtime.run must not raise."""
        a = rt.atomic_int(1)
        assert a.read() == 1
        a.fetch_add(1)
        w = rt.atomic_wide((0, 0))
        w.compare_and_swap((0, 0), (1, 1))

    def test_charging_happens_inside_tasks(self, rt):
        a = rt.atomic_int(0, locale=1)

        def main():
            with rt.timed() as t:
                a.read()
            return t.elapsed

        elapsed = rt.run(main)
        assert elapsed > 0.0
