"""The metrics registry: summaries derived from the trace stream.

Two sources feed the registry:

* **Counter stats** (always available, tracing or not): the per-scheme
  ``extra["em"]`` block every reclamation workload reports.
  :func:`progress_suffix` renders the ``--run`` progress suffixes from it
  — one shared renderer instead of scheme-specific string building in the
  CLI.
* **The trace stream** (when a :class:`~repro.obs.recorder.TraceRecorder`
  is installed): :meth:`MetricsRegistry.from_events` folds the merged
  event stream into per-ServicePoint utilization / queue-delay /
  idle-bank timelines, per-distance-class op and crossing counters, and
  limbo-age / batch-occupancy histograms.  The result is JSON-able and
  lands under ``extra.obs`` in scenario reports.

Everything here is pure post-processing: folding the same deterministic
event stream always yields the same registry, so ``extra.obs`` inherits
the trace's bit-identity across repeats, pool sizes, and engines.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from .recorder import age_bucket

__all__ = ["MetricsRegistry", "progress_suffix"]


def progress_suffix(extra: Dict[str, Any], *, reclaimer: str, policy: str) -> str:
    """The ``--run`` progress-line suffix for one scenario result.

    Renders the reclaimer / aggregation / policy blocks from the
    counter-stats source (``extra["em"]``), keeping the exact strings the
    CLI always printed — but from one registry-owned renderer instead of
    ad-hoc string building per scheme.
    """
    rec = extra.get("em")
    if not isinstance(rec, dict) or "retired" not in rec:
        return ""
    line = (
        f" [{reclaimer}:"
        f" retired={rec['retired']} freed={rec['freed']}"
        f" peak={rec.get('peak_pending', 0)}]"
    )
    if rec.get("scan_batches") or rec.get("uplink_crossings"):
        line += (
            f" [agg: batches={rec.get('scan_batches', 0)}"
            f" crossings={rec.get('uplink_crossings', 0)}]"
        )
    if policy != "fixed":
        advances = rec.get("advances", rec.get("reclaims", 0))
        line += (
            f" [policy: advances={advances}"
            f" deferrals={rec.get('policy_deferrals', 0)}"
            f" window={rec.get('window', 1)}]"
        )
    return line


class MetricsRegistry:
    """Folded summaries of one run's trace stream.

    Build with :meth:`from_events`; read :meth:`as_dict` (the
    ``extra.obs`` payload) or :meth:`summary_lines` (the ``trace``
    subcommand's report).
    """

    def __init__(self, detail: str) -> None:
        self.detail = detail
        self.events = 0
        self.kinds: Dict[str, int] = {}
        #: span name -> {count, total virtual duration}
        self.spans: Dict[str, Dict[str, Any]] = {}
        self.policy = {"advances": 0, "deferrals": 0}
        #: reclaim op (scan/advance/drain/free) -> count
        self.reclaim: Dict[str, int] = {}
        #: point name -> serve timeline summary (full detail)
        self.points: Dict[str, Dict[str, Any]] = {}
        #: distance class -> charged-op count (full detail)
        self.dclass_ops: Dict[int, int] = {}
        #: distance class -> uplink batch crossings (full detail)
        self.dclass_crossings: Dict[int, int] = {}
        #: batch occupancy (ops per flush) -> count (full detail)
        self.batch_occupancy: Dict[int, int] = {}
        #: limbo-age histogram over power-of-two buckets (full detail)
        self.limbo_age: Dict[str, Any] = {"count": 0, "max": 0.0, "buckets": {}}
        self.horizon = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: Iterable[Dict[str, Any]], detail: str
    ) -> "MetricsRegistry":
        reg = cls(detail)
        # EBR retires carry (unit, slot) tags; drains name the slots they
        # emptied — matching them in stream order recovers exact ages.
        pending_retires: Dict[Any, List[float]] = {}
        for ev in events:
            reg.events += 1
            kind = ev["kind"]
            reg.kinds[kind] = reg.kinds.get(kind, 0) + 1
            t = ev["t"]
            t1 = ev.get("t1", t)
            if t1 > reg.horizon:
                reg.horizon = t1
            if kind == "span":
                rec = reg.spans.setdefault(ev["name"], {"count": 0, "total": 0.0})
                rec["count"] += 1
                rec["total"] += ev["t1"] - t
            elif kind == "policy":
                key = "advances" if ev["decision"] == "advance" else "deferrals"
                reg.policy[key] += 1
            elif kind == "reclaim":
                op = ev["op"]
                reg.reclaim[op] = reg.reclaim.get(op, 0) + 1
                if "age_buckets" in ev:
                    reg._fold_ages(
                        ev.get("ages_count", 0), ev.get("age_max", 0.0),
                        ev["age_buckets"],
                    )
                for slot in ev.get("slots", ()):
                    for t_retire in pending_retires.pop(
                        (ev.get("unit"), slot), ()
                    ):
                        reg._add_age(t - t_retire)
            elif kind == "serve":
                rec = reg.points.get(ev["point"])
                if rec is None:
                    rec = reg.points[ev["point"]] = {
                        "serves": 0,
                        "busy": 0.0,
                        "queue_delay_sum": 0.0,
                        "queue_delay_max": 0.0,
                        "bank_final": 0.0,
                    }
                rec["serves"] += 1
                rec["busy"] += ev["svc"]
                qd = ev["qd"]
                rec["queue_delay_sum"] += qd
                if qd > rec["queue_delay_max"]:
                    rec["queue_delay_max"] = qd
                rec["bank_final"] = ev["bank"]
            elif kind == "op":
                d = ev["dclass"]
                reg.dclass_ops[d] = reg.dclass_ops.get(d, 0) + 1
            elif kind == "batch":
                d = ev["dclass"]
                reg.dclass_crossings[d] = reg.dclass_crossings.get(d, 0) + 1
                n = ev["count"]
                reg.batch_occupancy[n] = reg.batch_occupancy.get(n, 0) + 1
            elif kind == "guard":
                if ev["event"] == "retire" and "slot" in ev:
                    pending_retires.setdefault(
                        (ev.get("unit"), ev["slot"]), []
                    ).append(t)
        return reg

    def _add_age(self, age: float) -> None:
        hist = self.limbo_age
        hist["count"] += 1
        if age > hist["max"]:
            hist["max"] = age
        b = age_bucket(age)
        hist["buckets"][b] = hist["buckets"].get(b, 0) + 1

    def _fold_ages(self, count: int, age_max: float, buckets: Dict[Any, int]) -> None:
        hist = self.limbo_age
        hist["count"] += count
        if age_max > hist["max"]:
            hist["max"] = age_max
        for b, n in buckets.items():
            b = int(b)
            hist["buckets"][b] = hist["buckets"].get(b, 0) + n

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """The ``extra.obs`` payload (JSON-able after ``_jsonable``)."""
        horizon = self.horizon
        points = {}
        for name in sorted(self.points):
            rec = dict(self.points[name])
            rec["utilization"] = rec["busy"] / horizon if horizon > 0.0 else 0.0
            points[name] = rec
        return {
            "detail": self.detail,
            "events": self.events,
            "kinds": {k: self.kinds[k] for k in sorted(self.kinds)},
            "horizon": horizon,
            "spans": {k: self.spans[k] for k in sorted(self.spans)},
            "policy": dict(self.policy),
            "reclaim": {k: self.reclaim[k] for k in sorted(self.reclaim)},
            "points": points,
            "dclass_ops": {k: self.dclass_ops[k] for k in sorted(self.dclass_ops)},
            "dclass_crossings": {
                k: self.dclass_crossings[k] for k in sorted(self.dclass_crossings)
            },
            "batch_occupancy": {
                k: self.batch_occupancy[k] for k in sorted(self.batch_occupancy)
            },
            "limbo_age": {
                "count": self.limbo_age["count"],
                "max": self.limbo_age["max"],
                "buckets": {
                    k: self.limbo_age["buckets"][k]
                    for k in sorted(self.limbo_age["buckets"])
                },
            },
        }

    def summary_lines(self) -> List[str]:
        """Human-readable summary for the ``trace`` subcommand."""
        out = [
            f"trace detail={self.detail} events={self.events}"
            f" horizon={self.horizon:.6g}s"
        ]
        for name in sorted(self.kinds):
            out.append(f"  events[{name}] = {self.kinds[name]}")
        for name in sorted(self.spans):
            rec = self.spans[name]
            out.append(
                f"  span {name:10s} count={rec['count']}"
                f" total={rec['total']:.6g}s"
            )
        if self.policy["advances"] or self.policy["deferrals"]:
            out.append(
                f"  policy advances={self.policy['advances']}"
                f" deferrals={self.policy['deferrals']}"
            )
        for op in sorted(self.reclaim):
            out.append(f"  reclaim {op:8s} count={self.reclaim[op]}")
        horizon = self.horizon
        for name in sorted(self.points):
            rec = self.points[name]
            util = rec["busy"] / horizon if horizon > 0.0 else 0.0
            out.append(
                f"  point {name:24s} serves={rec['serves']:<7d}"
                f" util={util:.3f} qd_max={rec['queue_delay_max']:.3g}"
                f" bank={rec['bank_final']:.3g}"
            )
        if self.dclass_ops:
            ops = " ".join(
                f"d{k}={self.dclass_ops[k]}" for k in sorted(self.dclass_ops)
            )
            out.append(f"  ops by distance class: {ops}")
        if self.dclass_crossings:
            xs = " ".join(
                f"d{k}={self.dclass_crossings[k]}"
                for k in sorted(self.dclass_crossings)
            )
            out.append(f"  uplink crossings by distance class: {xs}")
        if self.batch_occupancy:
            occ = " ".join(
                f"{k}:{self.batch_occupancy[k]}"
                for k in sorted(self.batch_occupancy)
            )
            out.append(f"  batch occupancy histogram: {occ}")
        if self.limbo_age["count"]:
            buckets = " ".join(
                f"2^{k}:{self.limbo_age['buckets'][k]}"
                for k in sorted(self.limbo_age["buckets"])
            )
            out.append(
                f"  limbo ages: n={self.limbo_age['count']}"
                f" max={self.limbo_age['max']:.3g}s buckets[{buckets}]"
            )
        return out
