"""Trace exporters: Chrome trace-event JSON (Perfetto) and flat JSONL.

Both exporters are pure functions of the merged event stream, emit keys
in sorted order, and never consult the wall clock — so their output is
byte-identical whenever the stream is (the property the determinism
tests pin).  Open the Chrome JSON at https://ui.perfetto.dev (or
``chrome://tracing``): one track per locale (spans on thread 0, per-op
charges on thread 1) plus one process per uplink ServicePoint carrying
its serve timeline and an idle-bank counter track.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

__all__ = ["to_jsonl", "to_chrome_trace", "write_trace"]

#: Perfetto pid namespace for uplink ServicePoint tracks (locales use
#: their own ids; uplinks get a distinct process each so their serve
#: timelines don't interleave with task-side events).
UPLINK_PID_BASE = 1000

#: Virtual seconds -> trace microseconds.
_US = 1e6


def to_jsonl(events: Iterable[Dict[str, Any]]) -> str:
    """One sorted-key JSON object per line, in stream order."""
    lines = [
        json.dumps(ev, sort_keys=True, separators=(",", ":")) for ev in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _meta(pid: int, name: str, *, tid: int = 0, what: str = "process_name") -> Dict[str, Any]:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "name": what,
        "args": {"name": name},
    }


def to_chrome_trace(
    events: Iterable[Dict[str, Any]], *, label: str = "repro"
) -> Dict[str, Any]:
    """The Chrome trace-event document for one run's stream.

    Track layout: pid = locale id (tid 0 ``spans``, tid 1 ``ops``), and
    pid = ``UPLINK_PID_BASE + k`` for the k-th uplink ServicePoint (names
    sorted for a stable assignment).  Spans and serves become complete
    (``X``) events, idle banks counter (``C``) tracks, everything else
    instant (``i``) events.
    """
    events = list(events)
    locales = sorted({ev["loc"] for ev in events})
    uplink_names = sorted(
        {
            ev["point"]
            for ev in events
            if ev["kind"] == "serve" and "uplink" in ev["point"]
        }
    )
    uplink_pid = {
        name: UPLINK_PID_BASE + k for k, name in enumerate(uplink_names)
    }

    out: List[Dict[str, Any]] = []
    for loc in locales:
        out.append(_meta(loc, f"locale {loc}"))
        out.append(_meta(loc, "spans", tid=0, what="thread_name"))
        out.append(_meta(loc, "ops", tid=1, what="thread_name"))
    for name, pid in uplink_pid.items():
        out.append(_meta(pid, name))
        out.append(_meta(pid, "serves", tid=0, what="thread_name"))

    for ev in events:
        kind = ev["kind"]
        loc = ev["loc"]
        t = ev["t"]
        if kind == "span":
            out.append(
                {
                    "ph": "X",
                    "pid": loc,
                    "tid": 0,
                    "ts": t * _US,
                    "dur": (ev["t1"] - t) * _US,
                    "name": ev["name"],
                    "cat": "span",
                    "args": {
                        k: v
                        for k, v in ev.items()
                        if k not in ("kind", "t", "t1", "loc", "seq", "name")
                    },
                }
            )
        elif kind == "op":
            out.append(
                {
                    "ph": "X",
                    "pid": loc,
                    "tid": 1,
                    "ts": t * _US,
                    "dur": (ev["t1"] - t) * _US,
                    "name": f"{ev['op']} d{ev['dclass']}",
                    "cat": "op",
                    "args": {"home": ev["home"], "dclass": ev["dclass"]},
                }
            )
        elif kind == "serve" and ev["point"] in uplink_pid:
            pid = uplink_pid[ev["point"]]
            start = ev["t"] - ev["svc"]
            out.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": start * _US,
                    "dur": ev["svc"] * _US,
                    "name": "serve",
                    "cat": "serve",
                    "args": {"qd": ev["qd"], "loc": loc},
                }
            )
            out.append(
                {
                    "ph": "C",
                    "pid": pid,
                    "tid": 0,
                    "ts": ev["t"] * _US,
                    "name": "idle_bank",
                    "args": {"bank": ev["bank"]},
                }
            )
        else:
            out.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": loc,
                    "tid": 0,
                    "ts": t * _US,
                    "name": kind if kind != "reclaim" else f"reclaim:{ev['op']}",
                    "cat": kind,
                    "args": {
                        k: v
                        for k, v in ev.items()
                        if k not in ("kind", "t", "loc", "seq")
                    },
                }
            )

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "clock": "virtual"},
    }


def write_trace(path: str, events: Iterable[Dict[str, Any]], *, label: str = "repro") -> str:
    """Write the stream to ``path``: JSONL when the suffix is ``.jsonl``,
    Chrome trace JSON otherwise.  Returns the format written."""
    if str(path).endswith(".jsonl"):
        text = to_jsonl(events)
        fmt = "jsonl"
    else:
        text = json.dumps(to_chrome_trace(events, label=label), sort_keys=True)
        fmt = "chrome"
    with open(path, "w") as fh:
        fh.write(text)
    return fmt
