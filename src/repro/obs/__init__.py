"""Deterministic observability: the virtual-time flight recorder.

See docs/OBSERVABILITY.md.  Three parts: the trace recorder
(:mod:`repro.obs.recorder`), the metrics registry
(:mod:`repro.obs.metrics`), and the exporters (:mod:`repro.obs.export`).
"""

from .export import to_chrome_trace, to_jsonl, write_trace
from .metrics import MetricsRegistry, progress_suffix
from .recorder import TRACE_DETAILS, TraceRecorder, age_bucket, parse_trace

__all__ = [
    "TRACE_DETAILS",
    "TraceRecorder",
    "age_bucket",
    "parse_trace",
    "MetricsRegistry",
    "progress_suffix",
    "to_chrome_trace",
    "to_jsonl",
    "write_trace",
]
