"""The virtual-time flight recorder: deterministic structured tracing.

A :class:`TraceRecorder` collects structured events stamped with *virtual*
time into per-locale append buffers; :meth:`TraceRecorder.events` merges
them by ``(virtual_time, locale, seq)`` into one stream that is
bit-identical across repeated runs, worker-pool sizes, and execution
engines (docs/OBSERVABILITY.md).  Wall-clock never appears in an event —
the trace describes the simulated machine, not the simulating one.

Detail ladder (the ``trace`` knob of :class:`~repro.runtime.config.
RuntimeConfig` — a machine-style knob that is deliberately NOT an axis,
like ``engine``):

* ``off`` — no recorder is installed anywhere.  Hot paths pay at most one
  ``is None`` attribute check (the ``CommDiagnostics.stop()`` pattern).
* ``spans`` — root-driven events only: ``forall``/``coforall``/``timed``
  spans, policy decisions with the facts they saw, and reclaimer
  scan/advance/drain summaries.  These are all emitted from sequential
  root-task code between joins, so the stream is deterministic under any
  worker-pool size and identical across engines (the compiled executor
  emits the same spans from its phase replay).
* ``full`` — adds per-op charge events (with distance class and target),
  ServicePoint serve events (queue delay and idle-bank deltas), uplink
  batch flushes, and reclaimer pin/retire events.  Per-serve values are
  only deterministic under one canonical schedule, so ``full`` forces
  task-inline serial execution — spawn-submission order, exactly the
  schedule the compiled engine replays — leaving virtual time unchanged
  by the engine's pool-size-invariance contract.  The compiled engine
  takes its documented interpreter fallback at this detail.

Determinism discipline for emitters: an event's ``t`` is a virtual time
computed by the simulation (never wall clock); events carry names and
values, never Python ``id()``s or memory addresses; anything emitted from
a worker task is ``full``-detail only (serial execution makes the append
order reproducible).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..runtime.context import maybe_context

__all__ = ["TRACE_DETAILS", "parse_trace", "age_bucket", "TraceRecorder"]

#: The accepted trace-detail levels, in increasing order of detail.
TRACE_DETAILS = ("off", "spans", "full")


def parse_trace(value: Any) -> str:
    """Validate and normalize a trace-detail spec (the shared axis-error
    idiom: unknown values list the valid names)."""
    if value is None:
        return "off"
    text = str(value).strip().lower()
    if text == "":
        return "off"
    if text not in TRACE_DETAILS:
        raise ValueError(
            f"unknown trace detail {value!r}; expected one of"
            f" {list(TRACE_DETAILS)}"
        )
    return text


def age_bucket(age: float) -> int:
    """Power-of-two histogram bucket for a limbo age in virtual seconds.

    Returns ``floor(log2(age))`` (via ``frexp`` so the result is exact for
    every float), with non-positive ages clamped into the lowest bucket.
    Deterministic by construction — no float log in sight.
    """
    if age <= 0.0:
        return -1075  # below the smallest subnormal exponent
    return math.frexp(age)[1] - 1


class TraceRecorder:
    """Per-locale append buffers of structured virtual-time events.

    One recorder lives on a :class:`~repro.runtime.runtime.Runtime` for
    its whole life (``Runtime._tracer``); hot-path emitters cache it (or
    ``None``) in a slot so the *off* cost is one attribute check.
    """

    def __init__(self, num_locales: int, detail: str) -> None:
        detail = parse_trace(detail)
        if detail == "off":
            raise ValueError("TraceRecorder requires detail 'spans' or 'full'")
        self.detail = detail
        #: True at the ``full`` detail level (per-op event emission).
        self.wants_full = detail == "full"
        self.num_locales = num_locales
        self._buffers: List[List[Dict[str, Any]]] = [
            [] for _ in range(num_locales)
        ]
        self._seq = [0] * num_locales
        #: Last-seen idle bank per ServicePoint (id-keyed, never emitted),
        #: for per-serve bank deltas.  Points start zeroed at runtime
        #: construction; :meth:`reset_points` re-zeroes on
        #: ``NetworkModel.reset_measurements``.
        self._bank_prev: Dict[int, float] = {}
        #: Stable small integers for traced units (epoch managers), in
        #: first-emission order — deterministic under the discipline above.
        self._unit_ids: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _locale(self) -> int:
        ctx = maybe_context()
        return ctx.locale_id if ctx is not None else 0

    def _emit(self, locale: int, t: float, kind: str, fields: Dict[str, Any]) -> None:
        seq = self._seq[locale]
        self._seq[locale] = seq + 1
        ev: Dict[str, Any] = {"t": t, "loc": locale, "seq": seq, "kind": kind}
        ev.update(fields)
        self._buffers[locale].append(ev)

    def unit_id(self, obj: Any) -> int:
        """A stable per-run integer naming a traced unit (epoch manager)."""
        key = id(obj)
        uid = self._unit_ids.get(key)
        if uid is None:
            uid = self._unit_ids[key] = len(self._unit_ids)
        return uid

    # ------------------------------------------------------------------
    # spans-level emitters (root-driven, deterministic under any pool)
    # ------------------------------------------------------------------
    def span(self, name: str, t0: float, t1: float, **fields: Any) -> None:
        """A closed phase span: forall/coforall/timed, start to post-join."""
        f: Dict[str, Any] = {"name": name, "t1": t1}
        f.update(fields)
        self._emit(self._locale(), t0, "span", f)

    def policy_decision(
        self, policy: str, decision: str, t: float, facts: Dict[str, Any]
    ) -> None:
        """An epoch-policy gate outcome with the facts it decided from."""
        self._emit(
            self._locale(),
            t,
            "policy",
            {"policy": policy, "decision": decision, "facts": facts},
        )

    def reclaim(self, op: str, scheme: str, t: float, **fields: Any) -> None:
        """A root-driven reclaimer summary: scan / advance / drain / free."""
        f: Dict[str, Any] = {"op": op, "scheme": scheme}
        f.update(fields)
        self._emit(self._locale(), t, "reclaim", f)

    # ------------------------------------------------------------------
    # full-level emitters (serial-schedule only)
    # ------------------------------------------------------------------
    def op(
        self, op: str, t0: float, t1: float, dclass: int, home: int, **fields: Any
    ) -> None:
        """One charged communication operation (full detail)."""
        f: Dict[str, Any] = {"op": op, "t1": t1, "dclass": dclass, "home": home}
        f.update(fields)
        self._emit(self._locale(), t0, "op", f)

    def serve(self, point: Any, arrival: float, service: float, finish: float) -> None:
        """One ServicePoint reservation (full detail; called under the
        point's lock from ``serve_locked``)."""
        bank = point.idle_bank
        key = id(point)
        prev = self._bank_prev.get(key, 0.0)
        self._bank_prev[key] = bank
        self._emit(
            self._locale(),
            finish,
            "serve",
            {
                "point": point.name,
                "arr": arrival,
                "svc": service,
                "qd": finish - arrival - service,
                "bank": bank,
                "dbank": bank - prev,
            },
        )

    def batch(
        self, t: float, dclass: int, group: Any, count: int, queue_delay: float
    ) -> None:
        """One uplink batch flush: a window of coalesced operations paying
        a single traversal (full detail)."""
        self._emit(
            self._locale(),
            t,
            "batch",
            {
                "dclass": dclass,
                "group": str(group),
                "count": count,
                "qd": queue_delay,
            },
        )

    def guard(self, event: str, scheme: str, t: float, **fields: Any) -> None:
        """A reclaimer guard event: pin / retire (full detail)."""
        f: Dict[str, Any] = {"event": event, "scheme": scheme}
        f.update(fields)
        self._emit(self._locale(), t, "guard", f)

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def reset_points(self) -> None:
        """Forget per-point bank state (``reset_measurements`` zeroed them)."""
        self._bank_prev.clear()

    def events(self) -> List[Dict[str, Any]]:
        """The merged event stream, ordered by ``(t, loc, seq)``.

        Per-locale buffers are appended in deterministic order (root-only
        at ``spans``; serial schedule at ``full``), and ``seq`` is unique
        per locale, so the merge — and therefore every export — is
        bit-identical across repeats, pool sizes, and engines.
        """
        merged: List[Dict[str, Any]] = []
        for buf in self._buffers:
            merged.extend(buf)
        merged.sort(key=lambda ev: (ev["t"], ev["loc"], ev["seq"]))
        return merged

    def event_count(self) -> int:
        return sum(len(buf) for buf in self._buffers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceRecorder(detail={self.detail!r},"
            f" events={self.event_count()})"
        )


#: A recorder-shaped constant meaning "not tracing": emitters cache either
#: a recorder or None, never this module object.
NO_RECORDER: Optional[TraceRecorder] = None
