"""Communication diagnostics: counting every PGAS operation by class.

Chapel ships a ``CommDiagnostics`` module that the paper's authors use to
demonstrate that privatization makes distributed objects "no longer
communication bound".  This module is the analogue: the network layer
increments a :class:`CommDiagnostics` instance for every simulated GET, PUT,
remote atomic, active message and remote fork, bucketed per initiating
locale.

Counters are also the backbone of several tests and ablations: e.g. the
privatization ablation asserts that a pinned/unpinned epoch token performs
*zero* remote operations, and the scatter-list ablation counts AMs saved by
bulk deallocation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["CommOp", "CommDiagnostics"]


class CommOp:
    """Symbolic names for the operation classes we count."""

    GET = "get"
    PUT = "put"
    AMO = "amo"  # remote (NIC) atomic memory operation
    LOCAL_AMO = "local_amo"  # atomic that stayed on the issuing locale
    AM = "am"  # active message (remote execution of a closure)
    FORK = "fork"  # remote task spawn (an `on` statement)
    BULK = "bulk"  # bulk one-sided transfer

    ALL: Tuple[str, ...] = (GET, PUT, AMO, LOCAL_AMO, AM, FORK, BULK)


@dataclass
class _LocaleCounters:
    """Per-locale tally of operations initiated by tasks on that locale."""

    get: int = 0
    put: int = 0
    amo: int = 0
    local_amo: int = 0
    am: int = 0
    fork: int = 0
    bulk: int = 0
    bulk_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view (used by reports and tests)."""
        return {
            "get": self.get,
            "put": self.put,
            "amo": self.amo,
            "local_amo": self.local_amo,
            "am": self.am,
            "fork": self.fork,
            "bulk": self.bulk,
            "bulk_bytes": self.bulk_bytes,
        }


class CommDiagnostics:
    """Thread-safe operation counters for a whole runtime.

    Counting can be paused/resumed (``stop()`` / ``start()``) so benchmarks
    can exclude setup and teardown, mirroring Chapel's
    ``startCommDiagnostics`` / ``stopCommDiagnostics``.
    """

    def __init__(self, num_locales: int) -> None:
        self._lock = threading.Lock()
        self._enabled = True
        self._per_locale: List[_LocaleCounters] = [
            _LocaleCounters() for _ in range(num_locales)
        ]

    # -- control ---------------------------------------------------------
    def start(self) -> None:
        """Enable counting (the default)."""
        with self._lock:
            self._enabled = True

    def stop(self) -> None:
        """Disable counting; records made while stopped are dropped."""
        with self._lock:
            self._enabled = False

    def reset(self) -> None:
        """Zero all counters on all locales."""
        with self._lock:
            for i in range(len(self._per_locale)):
                self._per_locale[i] = _LocaleCounters()

    # -- recording (called by the network layer) --------------------------
    def record(self, locale: int, op: str, nbytes: int = 0) -> None:
        """Attribute one operation of class ``op`` to ``locale``.

        ``nbytes`` is only meaningful for ``CommOp.BULK``.
        """
        with self._lock:
            if not self._enabled:
                return
            c = self._per_locale[locale]
            if op == CommOp.GET:
                c.get += 1
            elif op == CommOp.PUT:
                c.put += 1
            elif op == CommOp.AMO:
                c.amo += 1
            elif op == CommOp.LOCAL_AMO:
                c.local_amo += 1
            elif op == CommOp.AM:
                c.am += 1
            elif op == CommOp.FORK:
                c.fork += 1
            elif op == CommOp.BULK:
                c.bulk += 1
                c.bulk_bytes += nbytes
            else:  # pragma: no cover - programming error
                raise ValueError(f"unknown comm op {op!r}")

    # -- queries -----------------------------------------------------------
    def per_locale(self) -> List[Dict[str, int]]:
        """Snapshot of counters for each locale, in locale order."""
        with self._lock:
            return [c.as_dict() for c in self._per_locale]

    def total(self, op: str) -> int:
        """Total count of one operation class across locales."""
        with self._lock:
            return sum(getattr(c, op) for c in self._per_locale)

    def totals(self) -> Dict[str, int]:
        """Totals of every operation class across locales."""
        with self._lock:
            out: Dict[str, int] = {k: 0 for k in CommOp.ALL}
            out["bulk_bytes"] = 0
            for c in self._per_locale:
                d = c.as_dict()
                for k, v in d.items():
                    out[k] = out.get(k, 0) + v
            return out

    def remote_ops(self) -> int:
        """Total operations that actually crossed the network."""
        t = self.totals()
        return t["get"] + t["put"] + t["amo"] + t["am"] + t["fork"] + t["bulk"]

    def iter_nonzero(self) -> Iterator[Tuple[int, str, int]]:
        """Yield ``(locale, op, count)`` for every nonzero counter."""
        for loc, d in enumerate(self.per_locale()):
            for op, count in d.items():
                if count:
                    yield loc, op, count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CommDiagnostics(totals={self.totals()})"
