"""Communication diagnostics: counting every PGAS operation by class.

Chapel ships a ``CommDiagnostics`` module that the paper's authors use to
demonstrate that privatization makes distributed objects "no longer
communication bound".  This module is the analogue: the network layer
increments a :class:`CommDiagnostics` instance for every simulated GET, PUT,
remote atomic, active message and remote fork, bucketed per initiating
locale.

Counters are also the backbone of several tests and ablations: e.g. the
privatization ablation asserts that a pinned/unpinned epoch token performs
*zero* remote operations, and the scatter-list ablation counts AMs saved by
bulk deallocation.

Implementation: the record path is *striped* — every real thread owns a
private ``[locale][op-index]`` counter array, so recording is a plain list
increment with no lock and no string comparison (op names are resolved to
integer indices once, at route-compilation or record time).  Because a
stripe is only ever written by its owning thread, counts are exact; the
queries aggregate all stripes under a lock.  This is what lets every
simulated operation record a diagnostic without serializing the whole
runtime through one global lock, and what makes ``stop()`` genuinely free
for excluded setup/teardown phases (a single attribute check, no lock).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Tuple

__all__ = ["CommOp", "CommDiagnostics"]


class CommOp:
    """Symbolic names for the operation classes we count."""

    GET = "get"
    PUT = "put"
    AMO = "amo"  # remote (NIC) atomic memory operation
    LOCAL_AMO = "local_amo"  # atomic that stayed on the issuing locale
    AM = "am"  # active message (remote execution of a closure)
    FORK = "fork"  # remote task spawn (an `on` statement)
    BULK = "bulk"  # bulk one-sided transfer

    ALL: Tuple[str, ...] = (GET, PUT, AMO, LOCAL_AMO, AM, FORK, BULK)


#: Operation name -> stripe index; resolved once here, used everywhere
#: (routes precompile these indices so the hot path never touches strings).
_OP_TO_INDEX: Dict[str, int] = {op: i for i, op in enumerate(CommOp.ALL)}
#: Extra slot accumulating payload bytes of BULK transfers.
_BULK_INDEX = _OP_TO_INDEX[CommOp.BULK]
_BULK_BYTES_INDEX = len(CommOp.ALL)
_NUM_COUNTERS = _BULK_BYTES_INDEX + 1
#: Key order of dict views (matches the historical ``as_dict`` layout).
_KEYS: Tuple[str, ...] = CommOp.ALL + ("bulk_bytes",)


class CommDiagnostics:
    """Thread-safe, stripe-per-thread operation counters for a runtime.

    Counting can be paused/resumed (``stop()`` / ``start()``) so benchmarks
    can exclude setup and teardown, mirroring Chapel's
    ``startCommDiagnostics`` / ``stopCommDiagnostics``.  The record path is
    lock-free (see module docstring); control and query methods take the
    aggregation lock.
    """

    def __init__(self, num_locales: int) -> None:
        self._num_locales = num_locales
        self._enabled = True
        self._lock = threading.Lock()
        #: Every thread's stripe, for aggregation; stripes are appended
        #: under ``_lock`` and only ever mutated by their owning thread.
        self._stripes: List[List[List[int]]] = []
        self._tls = threading.local()

    # -- op-name resolution (the single place unknown ops are rejected) ---
    @staticmethod
    def op_index(op: str) -> int:
        """Resolve an operation name to its counter index (or raise).

        Route precompilation and :meth:`record` both come through here, so
        an unknown op string can never silently miscount — it fails fast
        with a :class:`ValueError` at the one choke point.
        """
        try:
            return _OP_TO_INDEX[op]
        except KeyError:
            raise ValueError(f"unknown comm op {op!r}") from None

    def _rows(self) -> List[List[int]]:
        """This thread's stripe (created and registered on first use)."""
        try:
            return self._tls.rows
        except AttributeError:
            return self._make_rows()

    def _make_rows(self) -> List[List[int]]:
        rows = [[0] * _NUM_COUNTERS for _ in range(self._num_locales)]
        with self._lock:
            self._stripes.append(rows)
        self._tls.rows = rows
        return rows

    # -- control ---------------------------------------------------------
    def start(self) -> None:
        """Enable counting (the default)."""
        self._enabled = True

    def stop(self) -> None:
        """Disable counting; records made while stopped are dropped."""
        self._enabled = False

    def reset(self) -> None:
        """Zero all counters on all locales.

        Call from a quiescent point (between benchmark trials): stripes
        belong to other threads and are zeroed in place.
        """
        with self._lock:
            for rows in self._stripes:
                for row in rows:
                    for i in range(_NUM_COUNTERS):
                        row[i] = 0

    # -- recording (called by the network layer) --------------------------
    def record(self, locale: int, op: str, nbytes: int = 0) -> None:
        """Attribute one operation of class ``op`` to ``locale``.

        ``nbytes`` is only meaningful for ``CommOp.BULK``.  The enabled
        check comes first so a stopped diagnostics object costs one
        attribute read per operation — nothing is locked or resolved.
        """
        if not self._enabled:
            return
        idx = self.op_index(op)
        row = self._rows()[locale]
        row[idx] += 1
        if idx == _BULK_INDEX:
            row[_BULK_BYTES_INDEX] += nbytes

    def record_index(self, locale: int, index: int) -> None:
        """Hot-path record by precompiled index (see comm.routes).

        Callers on the hottest paths (cell ``_charge``) inline this body
        instead; keep the two in sync.
        """
        if self._enabled:
            try:
                rows = self._tls.rows
            except AttributeError:
                rows = self._make_rows()
            rows[locale][index] += 1

    def record_bulk(self, locale: int, nbytes: int) -> None:
        """Hot-path record of one BULK transfer of ``nbytes``."""
        if self._enabled:
            row = self._rows()[locale]
            row[_BULK_INDEX] += 1
            row[_BULK_BYTES_INDEX] += nbytes

    # -- queries -----------------------------------------------------------
    def _aggregate(self) -> List[List[int]]:
        """Sum all stripes into one ``[locale][counter]`` matrix."""
        out = [[0] * _NUM_COUNTERS for _ in range(self._num_locales)]
        with self._lock:
            for rows in self._stripes:
                for loc in range(self._num_locales):
                    row = rows[loc]
                    acc = out[loc]
                    for i in range(_NUM_COUNTERS):
                        acc[i] += row[i]
        return out

    def per_locale(self) -> List[Dict[str, int]]:
        """Snapshot of counters for each locale, in locale order."""
        return [dict(zip(_KEYS, row)) for row in self._aggregate()]

    def total(self, op: str) -> int:
        """Total count of one operation class across locales.

        ``op`` may be any :class:`CommOp` name or ``"bulk_bytes"``.
        """
        if op == "bulk_bytes":
            idx = _BULK_BYTES_INDEX
        else:
            idx = self.op_index(op)
        return sum(row[idx] for row in self._aggregate())

    def totals(self) -> Dict[str, int]:
        """Totals of every operation class across locales."""
        agg = self._aggregate()
        return {
            key: sum(row[i] for row in agg) for i, key in enumerate(_KEYS)
        }

    def remote_ops(self) -> int:
        """Total operations that actually crossed the network."""
        t = self.totals()
        return t["get"] + t["put"] + t["amo"] + t["am"] + t["fork"] + t["bulk"]

    def iter_nonzero(self) -> Iterator[Tuple[int, str, int]]:
        """Yield ``(locale, op, count)`` for every nonzero counter."""
        for loc, d in enumerate(self.per_locale()):
            for op, count in d.items():
                if count:
                    yield loc, op, count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CommDiagnostics(totals={self.totals()})"
