"""Multi-level interconnect topologies: distance classes over locales.

The paper's evaluation machine (a Cray XC-50) is not a flat graph of
equidistant locales: CPU-coherent sockets sit inside nodes, nodes inside
electrical groups, groups across an optical dragonfly.  The cost
separations that drive every figure — ``cpu atomic << NIC atomic << AM``
— are really *distance classes*, not global constants.  This module makes
that explicit: a :class:`Topology` partitions every (src, dst) locale
pair into a small ordered set of :class:`DistanceClass`\\ es, and the
network model (:mod:`repro.comm.network`) compiles one cost route per
(home locale, distance class) instead of the old local/remote pair.

Three built-ins cover the machines the reproduction cares about:

* :class:`FlatTopology` — exactly the legacy behaviour (every remote peer
  pays the same price); the default, and bit-identical to the pre-topology
  engine by construction (see docs/TOPOLOGY.md and the exactness tests).
* :class:`HierarchicalTopology` — locales grouped into CPU-coherent
  sockets inside nodes: same-socket peers are coherent (CPU-atomic
  prices, no NIC detour), same-node peers ride the NIC, and cross-node
  traffic is AM-priced through a **shared per-node uplink** service point
  (every locale on a node funnels its off-node traffic through one serial
  resource).
* :class:`DragonflyTopology` — locales grouped into dragonfly groups:
  intra-group links are the normal remote fabric, inter-group (optical)
  links are degraded by a scale factor and serialized through a shared
  per-group uplink.

Distance classes are *descriptive*, not prescriptive: each class names a
``transport`` (how atomics are priced), a network-cost ``scale``
(multiplying only the network-facing constants — see
:meth:`repro.comm.costs.CostModel.network_scaled`), and whether the class
funnels through a shared uplink.  Route compilation in the network model
turns that description into precompiled :class:`~repro.comm.routes`
entries once per (home, class); the hot paths never consult the topology
object again — cells cache their home's *distance row* (a tuple mapping
source locale to class index) and index their precompiled plans with one
tuple lookup.

Determinism: ``distance`` is a pure function of the two locale ids, and
uplink service points obey the same idle-banking capacity-conservation
contract as the NIC/progress points (docs/ENGINE.md), so virtual-time
results remain independent of real-thread scheduling and pool size under
every topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Tuple

__all__ = [
    "DistanceClass",
    "Topology",
    "FlatTopology",
    "HierarchicalTopology",
    "DragonflyTopology",
    "TOPOLOGY_KINDS",
    "topology_names",
    "parse_topology",
]

#: Transports a distance class may name (how atomics are priced):
#:
#: * ``"local"``    — the issuing locale itself (class 0 only): legacy
#:   local rules (NIC-local under ``ugni``, CPU atomic under ``none``);
#: * ``"coherent"`` — a different locale inside the same CPU coherence
#:   domain: CPU-atomic prices, no serial network resource (and a
#:   CMPXCHG16B wide CAS still works);
#: * ``"remote"``   — the legacy remote rules (NIC atomic under ``ugni``,
#:   AM round trip under ``none``);
#: * ``"nic"``      — NIC (RDMA) atomics when the network offers them
#:   (demotes to ``"am"`` under ``none``);
#: * ``"am"``       — always an active-message round trip.
_TRANSPORTS = ("local", "coherent", "remote", "nic", "am")


@dataclass(frozen=True)
class DistanceClass:
    """One rung of a topology's distance ladder.

    ``scale`` multiplies only the *network-facing* cost constants of the
    runtime's base :class:`~repro.comm.costs.CostModel` for operations in
    this class (CPU-side work is distance-independent).  When
    ``shared_uplink`` is set, operations in this class serialize through
    the destination's per-group uplink service point instead of its
    per-locale NIC/progress point — the "everything leaving/entering this
    node shares one pipe" contention the paper's machine exhibits between
    electrical groups.
    """

    name: str
    transport: str
    scale: float = 1.0
    shared_uplink: bool = False

    def __post_init__(self) -> None:
        if self.transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown distance-class transport {self.transport!r};"
                f" expected one of {list(_TRANSPORTS)}"
            )
        if (
            not isinstance(self.scale, (int, float))
            or isinstance(self.scale, bool)
            or self.scale <= 0
        ):
            raise ValueError(
                f"distance-class scale must be a positive number, got"
                f" {self.scale!r}"
            )


class Topology:
    """Partition of locale pairs into distance classes (base class).

    Subclasses define :attr:`classes` (class 0 MUST be the ``"local"``
    self class) and :meth:`distance`.  Everything else — cached distance
    rows, uplink grouping, coherence domains — has generic defaults.
    """

    #: Registry key / canonical spec prefix ("flat", "hier", "dragonfly").
    kind: str = "abstract"

    def __init__(self, num_locales: int) -> None:
        if not isinstance(num_locales, int) or num_locales < 1:
            raise ValueError(
                f"num_locales must be a positive integer, got {num_locales!r}"
            )
        self.num_locales = num_locales
        self.classes: Tuple[DistanceClass, ...] = ()
        self._rows: Dict[int, Tuple[int, ...]] = {}

    # -- the defining relation -----------------------------------------
    def distance(self, src: int, dst: int) -> int:
        """Distance-class index of an operation issued by ``src`` against
        memory homed on ``dst``.  Pure: depends only on the two ids."""
        raise NotImplementedError

    def distance_row(self, dst: int) -> Tuple[int, ...]:
        """``distance(src, dst)`` for every ``src``, cached.

        This is the tuple hot paths index by issuing locale — the only
        topology data structure they ever touch.
        """
        row = self._rows.get(dst)
        if row is None:
            row = tuple(
                self.distance(src, dst) for src in range(self.num_locales)
            )
            self._rows[dst] = row
        return row

    # -- contention & coherence grouping --------------------------------
    def uplink_group(self, locale: int) -> int:
        """Shared-uplink group of ``locale`` (for ``shared_uplink``
        classes); default: one group per locale (no sharing)."""
        return locale

    def coherence_domain(self, locale: int) -> int:
        """CPU-coherence domain id of ``locale``.

        Locales in one domain reach each other at ``"coherent"``
        transport (or are the same locale); privatized objects may share
        one instance per domain (:func:`repro.core.privatization.
        replicate_coherent`).  Default: every locale is its own domain.
        """
        return locale

    # -- description ----------------------------------------------------
    def spec(self) -> str:
        """The canonical string spec that re-creates this topology."""
        return self.kind

    def class_names(self) -> List[str]:
        """Distance-class names in index order (diagnostics/CLI)."""
        return [c.name for c in self.classes]

    def describe(self) -> str:
        """One human-readable line (CLI listings, reports)."""
        return f"{self.spec()} over {self.num_locales} locales"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.describe()!r})"


class FlatTopology(Topology):
    """Every remote peer is equidistant — the legacy (and default) model.

    Two classes: self and remote.  Route compilation under this topology
    produces *exactly* the pre-topology engine's tables (verified entry by
    entry in tests/test_topology.py), so every existing baseline stays
    bit-identical.
    """

    kind = "flat"

    def __init__(self, num_locales: int) -> None:
        super().__init__(num_locales)
        self.classes = (
            DistanceClass("self", "local"),
            DistanceClass("remote", "remote"),
        )

    def distance(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1


class HierarchicalTopology(Topology):
    """Sockets inside nodes: the paper machine's intra-cabinet shape.

    Locales are laid out in id order: ``locales_per_socket`` consecutive
    locales form a CPU-coherent socket, ``sockets_per_node`` consecutive
    sockets form a node.  Distance ladder:

    ====  ========  ===========  ==========================================
    idx   name      transport    meaning
    ====  ========  ===========  ==========================================
    0     self      local        the issuing locale
    1     socket    coherent     same socket: CPU atomics, no NIC detour
    2     node      nic          same node, different socket: NIC fabric
    3     uplink    am           different node: AM-priced, through the
                                 target node's **shared uplink** point
    ====  ========  ===========  ==========================================

    ``uplink_scale`` degrades the cross-node network constants (1.0 =
    same wire speed, just AM-priced and funnelled through one pipe).
    The last node may be partial when the shape does not divide
    ``num_locales``.
    """

    kind = "hier"

    def __init__(
        self,
        num_locales: int,
        *,
        sockets_per_node: int = 2,
        locales_per_socket: int = 2,
        uplink_scale: float = 1.0,
    ) -> None:
        super().__init__(num_locales)
        for label, v in (
            ("sockets_per_node", sockets_per_node),
            ("locales_per_socket", locales_per_socket),
        ):
            if not isinstance(v, int) or v < 1:
                raise ValueError(
                    f"{label} must be a positive integer, got {v!r}"
                )
        self.sockets_per_node = sockets_per_node
        self.locales_per_socket = locales_per_socket
        self.node_size = sockets_per_node * locales_per_socket
        self.uplink_scale = uplink_scale
        self.classes = (
            DistanceClass("self", "local"),
            DistanceClass("socket", "coherent"),
            DistanceClass("node", "nic"),
            DistanceClass(
                "uplink", "am", scale=uplink_scale, shared_uplink=True
            ),
        )

    def socket_of(self, locale: int) -> int:
        """Socket id of ``locale`` (coherence domain)."""
        return locale // self.locales_per_socket

    def node_of(self, locale: int) -> int:
        """Node id of ``locale`` (uplink group)."""
        return locale // self.node_size

    def distance(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        if src // self.locales_per_socket == dst // self.locales_per_socket:
            return 1
        if src // self.node_size == dst // self.node_size:
            return 2
        return 3

    def uplink_group(self, locale: int) -> int:
        return self.node_of(locale)

    def coherence_domain(self, locale: int) -> int:
        return self.socket_of(locale)

    def spec(self) -> str:
        base = f"hier:{self.sockets_per_node}x{self.locales_per_socket}"
        if self.uplink_scale != 1.0:
            base += f"@{self.uplink_scale:g}"
        return base

    def describe(self) -> str:
        nodes = -(-self.num_locales // self.node_size)  # ceil div
        return (
            f"{self.spec()}: {nodes} node(s) x {self.sockets_per_node}"
            f" socket(s) x {self.locales_per_socket} locale(s),"
            f" {self.num_locales} locales total"
        )


class DragonflyTopology(Topology):
    """Electrical groups joined by degraded all-to-all optical links.

    ``group_size`` consecutive locales form a group; intra-group traffic
    rides the normal remote fabric, inter-group traffic pays
    ``global_scale``-degraded network costs and serializes through the
    target group's shared optical uplink — the XC-50's dragonfly in
    miniature.
    """

    kind = "dragonfly"

    def __init__(
        self,
        num_locales: int,
        *,
        group_size: int = 4,
        global_scale: float = 4.0,
    ) -> None:
        super().__init__(num_locales)
        if not isinstance(group_size, int) or group_size < 1:
            raise ValueError(
                f"group_size must be a positive integer, got {group_size!r}"
            )
        self.group_size = group_size
        self.global_scale = global_scale
        self.classes = (
            DistanceClass("self", "local"),
            DistanceClass("group", "remote"),
            DistanceClass(
                "global", "remote", scale=global_scale, shared_uplink=True
            ),
        )

    def group_of(self, locale: int) -> int:
        """Dragonfly group id of ``locale`` (uplink group)."""
        return locale // self.group_size

    def distance(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        return 1 if src // self.group_size == dst // self.group_size else 2

    def uplink_group(self, locale: int) -> int:
        return self.group_of(locale)

    def spec(self) -> str:
        base = f"dragonfly:{self.group_size}"
        if self.global_scale != 4.0:
            base += f"@{self.global_scale:g}"
        return base

    def describe(self) -> str:
        groups = -(-self.num_locales // self.group_size)
        return (
            f"{self.spec()}: {groups} group(s) x {self.group_size}"
            f" locale(s), {self.num_locales} locales total"
        )


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _split_scale(arg: str, what: str) -> "Tuple[str, float | None]":
    """Split an optional ``@<scale>`` suffix off a shape string."""
    shape, sep, scale_text = arg.partition("@")
    if not sep:
        return shape, None
    try:
        scale = float(scale_text)
    except ValueError:
        raise ValueError(
            f"{what} scale suffix must be a number, got {scale_text!r}"
        ) from None
    return shape, scale


def _build_flat(num_locales: int, arg: "str | None") -> FlatTopology:
    if arg is not None:
        raise ValueError(f"topology kind 'flat' takes no shape, got {arg!r}")
    return FlatTopology(num_locales)


def _build_hier(num_locales: int, arg: "str | None") -> HierarchicalTopology:
    if arg is None:
        return HierarchicalTopology(num_locales)
    shape, scale = _split_scale(arg, "hier uplink")
    parts = shape.split("x")
    if len(parts) != 2:
        raise ValueError(
            f"hier shape must be '<sockets_per_node>x<locales_per_socket>'"
            f" with an optional '@<uplink_scale>' (e.g. 'hier:2x2',"
            f" 'hier:2x2@1.5'), got {arg!r}"
        )
    try:
        sockets, per_socket = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"hier shape components must be integers, got {arg!r}") from None
    kwargs = {} if scale is None else {"uplink_scale": scale}
    return HierarchicalTopology(
        num_locales,
        sockets_per_node=sockets,
        locales_per_socket=per_socket,
        **kwargs,
    )


def _build_dragonfly(num_locales: int, arg: "str | None") -> DragonflyTopology:
    if arg is None:
        return DragonflyTopology(num_locales)
    shape, scale = _split_scale(arg, "dragonfly global")
    try:
        group_size = int(shape)
    except ValueError:
        raise ValueError(
            f"dragonfly shape must be '<group_size>' with an optional"
            f" '@<global_scale>' (e.g. 'dragonfly:4', 'dragonfly:4@8'),"
            f" got {arg!r}"
        ) from None
    kwargs = {} if scale is None else {"global_scale": scale}
    return DragonflyTopology(num_locales, group_size=group_size, **kwargs)


#: Registered topology kinds, mapping name -> builder(num_locales, shape-arg).
TOPOLOGY_KINDS: Dict[str, Callable[[int, "str | None"], Topology]] = {
    "flat": _build_flat,
    "hier": _build_hier,
    "dragonfly": _build_dragonfly,
}


def topology_names() -> List[str]:
    """The accepted topology kind names, for validation error messages."""
    return sorted(TOPOLOGY_KINDS)


def parse_topology(spec: Any, num_locales: int) -> Topology:
    """Build a :class:`Topology` from a declarative spec.

    Accepts a :class:`Topology` instance (validated against
    ``num_locales`` and passed through), a string spec
    (``"flat"``, ``"hier"``, ``"hier:2x2"``, ``"dragonfly"``,
    ``"dragonfly:4"``), or a mapping with a ``kind`` key plus the
    corresponding constructor keywords (``{"kind": "hier",
    "sockets_per_node": 2, "locales_per_socket": 2}``).  Unknown kinds
    raise ``ValueError`` listing the valid names — this is the validation
    surface :class:`~repro.runtime.config.RuntimeConfig` and the scenario
    specs lean on.
    """
    if isinstance(spec, Topology):
        if spec.num_locales != num_locales:
            raise ValueError(
                f"topology was built for {spec.num_locales} locales but the"
                f" runtime has {num_locales}"
            )
        return spec
    if isinstance(spec, Mapping):
        doc = dict(spec)
        kind = doc.pop("kind", None)
        if kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {kind!r}; expected one of"
                f" {topology_names()}"
            )
        if kind == "flat":
            if doc:
                raise ValueError(
                    f"topology kind 'flat' takes no parameters, got"
                    f" {sorted(doc)}"
                )
            return FlatTopology(num_locales)
        cls = HierarchicalTopology if kind == "hier" else DragonflyTopology
        try:
            return cls(num_locales, **doc)
        except TypeError:
            raise ValueError(
                f"invalid parameters {sorted(doc)} for topology kind"
                f" {kind!r}"
            ) from None
    if not isinstance(spec, str):
        raise ValueError(
            f"topology spec must be a string, mapping, or Topology, got"
            f" {type(spec).__name__}"
        )
    kind, sep, arg = spec.partition(":")
    kind = kind.strip().lower()
    builder = TOPOLOGY_KINDS.get(kind)
    if builder is None:
        raise ValueError(
            f"unknown topology {spec!r}; expected one of {topology_names()}"
            f" (optionally with a shape, e.g. 'hier:2x2', 'dragonfly:4')"
        )
    return builder(num_locales, arg if sep else None)
