"""Adaptive message aggregation across shared uplinks.

Under a multi-level topology (:mod:`repro.comm.topology`) every locale on
a node funnels its off-node traffic through one **shared uplink** service
point, and every cross-node operation pays active-message prices.  The
reclamation subsystem's scan paths — epoch-vote scans, hazard-slot reads,
quiescence announcements, deferred-delete gathers, bulk frees — issue
*many small operations to the same node*: exactly the shape a real PGAS
runtime coalesces into one aggregated message per destination (Chapel's
aggregators, GASNet's AM batching).  This module is that coalescing
layer, made explicit and priced.

Model
-----
An :class:`AggregationSpec` carries one knob, the **window** ``W``: the
maximum number of same-destination-group operations one uplink traversal
may carry.  ``W == 1`` disables aggregation — every call site then runs
the *identical* legacy one-message-per-op path, which is what keeps all
pre-existing scenario baselines bit-identical with aggregation off.

With ``W > 1``, the :class:`UplinkAggregator` groups a call's operation
list by ``(distance class, uplink group)``:

* operations whose distance class declares **no shared uplink** (the
  issuing locale itself, coherent peers, same-node NIC traffic, and every
  class of the flat topology) charge the legacy per-op path unchanged —
  so even with aggregation *enabled*, a flat machine is bit-identical to
  the legacy engine by construction;
* operations behind the same shared uplink are split into batches of at
  most ``W`` and each batch pays **one** uplink traversal: the class's
  full base latency once, plus a marginal
  :attr:`~repro.comm.costs.CostModel.am_batch_item_latency` per extra
  operation, occupying the uplink service point once per batch (base
  service plus a marginal ``am_batch_item_service`` per extra op).  The
  charge runs through the same :class:`~repro.runtime.clock.ServicePoint`
  machinery as every other operation, so idle-banking capacity
  conservation — and with it the engine's scheduling-independence
  invariant — holds for aggregated traffic too.

Determinism: batch composition is a pure function of the operation list
and the topology (grouping preserves first-seen order; no runtime state
is consulted), so aggregated costs are bit-identical across repeated runs
and worker-pool sizes under the workload discipline of
:mod:`repro.bench.workloads`.

See docs/AGGREGATION.md for the full model and tuning guidance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from .counters import CommOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.context import TaskContext
    from ..runtime.runtime import Runtime
    from .network import NetworkModel

__all__ = [
    "AggregationSpec",
    "parse_aggregation",
    "UplinkAggregator",
    "BatchCounters",
]


@dataclass(frozen=True)
class AggregationSpec:
    """The aggregation knob: how many same-uplink ops share one traversal.

    ``window == 1`` (the default) disables aggregation entirely; call
    sites run the legacy one-message-per-op paths.
    """

    window: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.window, int) or isinstance(self.window, bool):
            raise ValueError(
                f"aggregation window must be an integer >= 1, got"
                f" {self.window!r}"
            )
        if self.window < 1:
            raise ValueError(
                f"aggregation window must be >= 1 (1 disables aggregation),"
                f" got {self.window}"
            )

    @property
    def enabled(self) -> bool:
        """True when batching is on (window > 1)."""
        return self.window > 1

    def spec(self) -> int:
        """The canonical (int) spec that re-creates this object."""
        return self.window


def parse_aggregation(spec: Any) -> AggregationSpec:
    """Build an :class:`AggregationSpec` from a declarative spec.

    Accepts an :class:`AggregationSpec` (passed through), ``None`` or
    ``"off"`` (disabled), an integer window, a string integer (``"8"``),
    or a mapping ``{"window": 8}``.  Anything else — including ``0``,
    negatives, booleans, and floats — raises ``ValueError``; this is the
    validation surface :class:`~repro.runtime.config.RuntimeConfig` and
    the scenario specs lean on.
    """
    if isinstance(spec, AggregationSpec):
        return spec
    if spec is None:
        return AggregationSpec(1)
    if isinstance(spec, Mapping):
        doc = dict(spec)
        window = doc.pop("window", None)
        if doc:
            raise ValueError(
                f"unknown aggregation key(s) {sorted(doc)}; the only"
                f" accepted key is 'window'"
            )
        if window is None:
            raise ValueError("aggregation mapping requires a 'window' key")
        return parse_aggregation(window)
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text == "off":
            return AggregationSpec(1)
        try:
            return AggregationSpec(int(text))
        except ValueError:
            raise ValueError(
                f"aggregation spec must be 'off', an integer window, or a"
                f" {{'window': N}} mapping, got {spec!r}"
            ) from None
    if isinstance(spec, bool) or not isinstance(spec, int):
        raise ValueError(
            f"aggregation spec must be 'off', an integer window, or a"
            f" {{'window': N}} mapping, got {spec!r}"
        )
    return AggregationSpec(spec)


class BatchCounters:
    """Mutable tally of aggregated work (fed into reclaimer stats)."""

    __slots__ = ("batches", "crossings", "by_class")

    def __init__(self) -> None:
        #: Aggregated messages issued (one per window-sized batch).
        self.batches = 0
        #: Shared-uplink traversals paid (== batches for aggregated ops;
        #: callers may add traversals from other sources, e.g. domain-
        #: ordered spawn trees).
        self.crossings = 0
        #: Uplink traversals per distance class — the "per-distance-class
        #: crossing counts" policy fact (docs/POLICY.md): batches know
        #: their class at charge time, so the tally is free.
        self.by_class: Dict[int, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BatchCounters(batches={self.batches}, crossings={self.crossings})"


class UplinkAggregator:
    """Coalesces same-uplink operations into batched traversals.

    One instance per :class:`~repro.comm.network.NetworkModel`.  Every
    method takes the legacy per-op path for operations that cannot batch
    (aggregation disabled, no shared uplink on the route), so call sites
    never need their own fallback branch.
    """

    def __init__(
        self,
        network: "NetworkModel",
        spec: AggregationSpec,
        policy: "Any | None" = None,
    ) -> None:
        from ..policy import StaticWindowPolicy

        self._net = network
        self.spec = spec
        #: The window policy (docs/POLICY.md) owning the live window.
        #: Default: a static policy pinned to the spec's window — the
        #: bit-identical legacy behaviour.
        self.policy = (
            policy if policy is not None else StaticWindowPolicy(spec.window)
        )
        #: True when batching can ever happen on this machine: the window
        #: is open — statically, or openable by a dynamic policy — *and*
        #: the topology has at least one shared uplink.  A flat machine
        #: is never active, whatever the window — the flat-exactness
        #: guarantee.
        self.active = (spec.enabled or self.policy.dynamic) and bool(
            network.uplinks
        )
        self._dynamic = self.policy.dynamic and self.active

    @property
    def window(self) -> int:
        """The live aggregation window (the policy's current value)."""
        return self.policy.current

    def policy_tick(self) -> None:
        """Fold batch observations into the window (root-driven points).

        Called by the reclamation managers at the end of their sequential
        ``try_reclaim`` / ``clear`` paths — never from concurrent tasks —
        so window movement is deterministic (docs/POLICY.md).
        """
        if self._dynamic:
            self.policy.tick()

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _classify(self, src: int, home: int) -> Tuple[int, "int | None"]:
        """(distance class, uplink group or None) of ``src`` -> ``home``."""
        net = self._net
        dclass = net.distance_row(home)[src]
        if net.topology.classes[dclass].shared_uplink:
            return dclass, net.topology.uplink_group(home)
        return dclass, None

    def _batches(
        self, items: Sequence[Tuple[Tuple[int, int], Any]]
    ) -> Iterable[Tuple[int, int, List[Any]]]:
        """Split ``((dclass, group), payload)`` items into window batches.

        Grouping preserves first-seen order of (class, group) keys and
        in-group payload order, so batch composition is a pure function
        of the input sequence — the determinism requirement.
        """
        grouped: Dict[Tuple[int, int], List[Any]] = {}
        order: List[Tuple[int, int]] = []
        for key, payload in items:
            bucket = grouped.get(key)
            if bucket is None:
                bucket = grouped[key] = []
                order.append(key)
            bucket.append(payload)
        window = self.window
        for key in order:
            bucket = grouped[key]
            for i in range(0, len(bucket), window):
                yield key[0], key[1], bucket[i : i + window]

    # ------------------------------------------------------------------
    # charging
    # ------------------------------------------------------------------
    def _charge_batch(
        self,
        ctx: "TaskContext",
        dclass: int,
        group: int,
        count: int,
        base_latency: float,
        base_service: float,
        counters: "BatchCounters | None",
    ) -> None:
        """One uplink traversal carrying ``count`` coalesced operations."""
        net = self._net
        cc = net._class_costs[dclass]
        extra = count - 1
        latency = base_latency + extra * cc.am_batch_item_latency
        service = base_service + extra * cc.am_batch_item_service
        point = net.uplinks[group]
        clock = ctx.clock
        t = clock.now + latency
        finish = point.serve(t, service)
        clock.advance_to(finish)
        if self._dynamic:
            # Feed the window policy its virtual-time facts: occupancy
            # against the live window and the uplink queueing delay this
            # batch experienced (``finish - service - t``; zero when the
            # point was idle or the service fit a banked gap).  The fold
            # is commutative-exact, so concurrent observers are safe.
            self.policy.observe(
                count=count,
                window=self.policy.current,
                queue_delay=finish - service - t,
                marginal=extra * cc.am_batch_item_latency,
            )
        if counters is not None:
            counters.batches += 1
            counters.crossings += 1
            by_class = counters.by_class
            by_class[dclass] = by_class.get(dclass, 0) + 1
        tr = net._tracer
        if tr is not None:
            tr.batch(finish, dclass, group, count, finish - service - t)

    # ------------------------------------------------------------------
    # batched operation flavours
    # ------------------------------------------------------------------
    def read_cells(
        self,
        ctx: "TaskContext",
        cells: Sequence[Any],
        counters: "BatchCounters | None" = None,
    ) -> List[Any]:
        """Atomically read many cells, coalescing same-uplink reads.

        Returns the observed values in input order.  Cells reachable
        without a shared uplink are read through their own charged
        ``read()`` (the legacy path); cells behind an uplink are read in
        window-sized batches — one AM traversal per batch, values taken
        with the cost-free ``peek()`` the batch's remote handler models.
        """
        net = self._net
        if not self.active:
            return [cell.read() for cell in cells]
        src = ctx.locale_id
        values: List[Any] = [None] * len(cells)
        batchable: List[Tuple[Tuple[int, int], int]] = []
        for i, cell in enumerate(cells):
            dclass, group = self._classify(src, cell.home)
            if group is None:
                values[i] = cell.read()
            else:
                batchable.append(((dclass, group), i))
        for dclass, group, batch in self._batches(batchable):
            cc = net._class_costs[dclass]
            net.diags.record(src, CommOp.AM)
            self._charge_batch(
                ctx,
                dclass,
                group,
                len(batch),
                2.0 * cc.am_latency,
                cc.am_service,
                counters,
            )
            for i in batch:
                values[i] = cells[i].peek()
        return values

    def write_cells(
        self,
        ctx: "TaskContext",
        writes: Sequence[Tuple[Any, Any]],
        counters: "BatchCounters | None" = None,
    ) -> None:
        """Atomically store to many cells, coalescing same-uplink stores.

        ``writes`` is a sequence of ``(cell, value)`` pairs.  The batched
        carrier is the same AM round trip as :meth:`read_cells` (a remote
        store through the AM route is a round trip — the ack is what
        orders it); values land via the cost-free ``poke``.
        """
        net = self._net
        if not self.active:
            for cell, value in writes:
                cell.write(value)
            return
        src = ctx.locale_id
        batchable: List[Tuple[Tuple[int, int], int]] = []
        for i, (cell, value) in enumerate(writes):
            dclass, group = self._classify(src, cell.home)
            if group is None:
                cell.write(value)
            else:
                batchable.append(((dclass, group), i))
        for dclass, group, batch in self._batches(batchable):
            cc = net._class_costs[dclass]
            net.diags.record(src, CommOp.AM)
            self._charge_batch(
                ctx,
                dclass,
                group,
                len(batch),
                2.0 * cc.am_latency,
                cc.am_service,
                counters,
            )
            for i in batch:
                cell, value = writes[i]
                cell.poke(value)

    def bulk_gather(
        self,
        ctx: "TaskContext",
        transfers: Sequence[Tuple[int, int]],
        counters: "BatchCounters | None" = None,
    ) -> None:
        """Bulk GETs of ``(source locale, nbytes)``, coalescing sources.

        Sources behind the same uplink share a traversal per batch: the
        payloads ride one transfer (base RDMA latency once, summed bytes,
        marginal per extra source), occupying the uplink point once.
        Everything else charges :meth:`NetworkModel.bulk` per source.
        """
        net = self._net
        if not self.active:
            for src_locale, nbytes in transfers:
                net.bulk(ctx, src_locale, nbytes)
            return
        src = ctx.locale_id
        batchable: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        for src_locale, nbytes in transfers:
            dclass, group = self._classify(src, src_locale)
            if group is None:
                net.bulk(ctx, src_locale, nbytes)
            else:
                batchable.append(((dclass, group), (src_locale, nbytes)))
        for dclass, group, batch in self._batches(batchable):
            cc = net._class_costs[dclass]
            total_bytes = sum(nbytes for _lid, nbytes in batch)
            net.diags.record_bulk(src, total_bytes)
            self._charge_batch(
                ctx,
                dclass,
                group,
                len(batch),
                cc.rdma_small_latency + total_bytes * cc.rdma_byte_cost,
                cc.rdma_service,
                counters,
            )

    def free_grouped(
        self,
        rt: "Runtime",
        ctx: "TaskContext",
        by_locale: Mapping[int, Sequence[int]],
        counters: "BatchCounters | None" = None,
    ) -> int:
        """Bulk-free per-locale offset lists, coalescing the free RPCs.

        The legacy shape is one :meth:`Runtime.free_bulk` (one RPC when
        non-coherent, plus amortized per-object frees) per owning locale,
        in sorted-locale order.  With aggregation, locales behind the same
        uplink share the RPC crossing per window batch; the per-locale
        amortized free cost is unchanged.  Returns objects freed.
        """
        freed = 0
        if not self.active:
            for lid in sorted(by_locale):
                freed += rt.free_bulk(lid, by_locale[lid])
            return freed
        src = ctx.locale_id
        batchable: List[Tuple[Tuple[int, int], int]] = []
        net = self._net
        for lid in sorted(by_locale):
            dclass, group = self._classify(src, lid)
            if group is None:
                freed += rt.free_bulk(lid, by_locale[lid])
            else:
                batchable.append(((dclass, group), lid))
        for dclass, group, batch in self._batches(batchable):
            cc = net._class_costs[dclass]
            net.diags.record(src, CommOp.AM)
            self._charge_batch(
                ctx,
                dclass,
                group,
                len(batch),
                2.0 * cc.am_latency,
                cc.am_service,
                counters,
            )
            for lid in batch:
                freed += rt.free_bulk(lid, by_locale[lid], rpc=False)
        return freed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UplinkAggregator(window={self.window}, active={self.active})"
        )
