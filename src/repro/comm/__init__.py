"""Communication substrate: cost model, network routing, diagnostics.

* :class:`~repro.comm.costs.CostModel` — virtual-time calibration.
* :class:`~repro.comm.network.NetworkModel` — routes and charges every
  PGAS operation (the single choke point between algorithms and the
  simulated interconnect).
* :class:`~repro.comm.counters.CommDiagnostics` — per-locale operation
  counters (Chapel ``CommDiagnostics`` analogue).
* :class:`~repro.comm.routes.AtomicRoute` /
  :class:`~repro.comm.routes.DataRoute` — precompiled per-home charging
  recipes the hot paths index instead of re-branching per operation.
"""

from .costs import DEFAULT_COSTS, CostModel
from .counters import CommDiagnostics, CommOp
from .network import NetworkModel
from .routes import AtomicRoute, DataRoute, atomic_route_index

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "NetworkModel",
    "CommDiagnostics",
    "CommOp",
    "AtomicRoute",
    "DataRoute",
    "atomic_route_index",
]
