"""Communication substrate: cost model, topology, routing, diagnostics.

* :class:`~repro.comm.costs.CostModel` — virtual-time calibration.
* :class:`~repro.comm.topology.Topology` — multi-level interconnect
  shapes (flat / hierarchical / dragonfly) partitioning locale pairs
  into distance classes (see docs/TOPOLOGY.md).
* :class:`~repro.comm.network.NetworkModel` — routes and charges every
  PGAS operation (the single choke point between algorithms and the
  simulated interconnect).
* :class:`~repro.comm.counters.CommDiagnostics` — per-locale operation
  counters (Chapel ``CommDiagnostics`` analogue).
* :class:`~repro.comm.routes.AtomicRoute` /
  :class:`~repro.comm.routes.DataRoute` — precompiled per-(home,
  distance class) charging recipes the hot paths index instead of
  re-branching per operation.
"""

from .costs import DEFAULT_COSTS, CostModel, resolve_cost_model
from .counters import CommDiagnostics, CommOp
from .network import NetworkModel
from .routes import AtomicRoute, DataRoute, atomic_route_index
from .topology import (
    DistanceClass,
    DragonflyTopology,
    FlatTopology,
    HierarchicalTopology,
    Topology,
    parse_topology,
    topology_names,
)

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "resolve_cost_model",
    "NetworkModel",
    "CommDiagnostics",
    "CommOp",
    "AtomicRoute",
    "DataRoute",
    "atomic_route_index",
    "Topology",
    "DistanceClass",
    "FlatTopology",
    "HierarchicalTopology",
    "DragonflyTopology",
    "parse_topology",
    "topology_names",
]
