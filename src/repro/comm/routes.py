"""Precompiled cost routes: the network model's routing table, flattened.

The seed engine re-evaluated a five-way branch chain (opt-out? wide?
network atomics? local?) on *every* simulated atomic operation, and a
string-keyed diagnostic dispatch on every GET/PUT/AMO/AM.  Since every
input to that decision — the network flavour, the cost constants, the home
locale's service points, the cell's opt-out flag — is fixed at construction
time, the decision itself can be made exactly once.

This module defines the two flavours of precompiled route:

* :class:`AtomicRoute` — one atomic-operation recipe.  Routes are
  compiled per (home locale, wide?, opt_out?, **distance class**) — see
  :mod:`repro.comm.topology`; under the default two-class
  :class:`~repro.comm.topology.FlatTopology` this collapses to the
  legacy 8-entry (wide, opt_out, local) cube laid out by
  :func:`atomic_route_index`, entry for entry.  Cells share their home's
  table, pre-slice the rows for their own ``opt_out`` at construction
  (``AtomicCell._plan``), and the hot path reduces to one distance-row
  index.
* :class:`DataRoute` — one GET/PUT/BULK recipe per (home locale,
  distance class), carrying the byte-cost slope so any transfer size
  reuses the same route.  Coherent classes (same socket) compile to no
  route at all — the charge is a bare local-load clock advance.

Charging semantics are bit-identical to the branchy reference
implementation (kept as ``NetworkModel.atomic_op`` for tests and docs):
advance the issuing task's clock by the route latency, pass through the
home-level service point (NIC pipeline or progress thread) if the route
has one, then through the cell's line, and bump one precompiled diagnostic
index.  Diagnostic indices come from
:meth:`~repro.comm.counters.CommDiagnostics.op_index`, the single place op
names are validated, so an index-based route can never miscount.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.clock import ServicePoint

__all__ = ["AtomicRoute", "DataRoute", "atomic_route_index"]


def atomic_route_index(wide: bool, opt_out: bool, local: bool) -> int:
    """Index into a home's 8-entry atomic route table.

    Layout: bit 2 = wide, bit 1 = opt_out, bit 0 = local.  Callers compute
    this inline on the hot path; the helper exists for table construction
    and tests.
    """
    return (4 if wide else 0) | (2 if opt_out else 0) | (1 if local else 0)


class AtomicRoute:
    """One precompiled atomic-op recipe for a (home, wide, opt_out, local) cell.

    ``point`` is the home-level serial resource the op occupies *before*
    the cell's own line — the NIC pipeline under ``ugni`` routing or the
    progress thread for active-message routing — or ``None`` when the op
    is a pure CPU atomic.  ``line_service`` is the time the per-cell line
    is held; the line itself is supplied by the cell at charge time.
    """

    __slots__ = ("diag_index", "latency", "point", "point_service", "line_service")

    def __init__(
        self,
        diag_index: int,
        latency: float,
        point: "Optional[ServicePoint]",
        point_service: float,
        line_service: float,
    ) -> None:
        self.diag_index = diag_index
        self.latency = latency
        self.point = point
        self.point_service = point_service
        self.line_service = line_service

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AtomicRoute(diag={self.diag_index}, latency={self.latency:.2e},"
            f" point={self.point!r})"
        )


class DataRoute:
    """One precompiled one-sided-transfer recipe for a (home, class) pair.

    Total latency for ``nbytes`` is ``latency + nbytes * byte_cost``; the
    transfer then occupies ``point`` — the home's NIC pipeline, or its
    shared uplink for cross-node/cross-group classes — for ``service``
    seconds.  Local and coherent-class transfers never construct one of
    these — they are a bare clock advance on the issuing task.
    """

    __slots__ = ("diag_index", "latency", "byte_cost", "point", "service")

    def __init__(
        self,
        diag_index: int,
        latency: float,
        byte_cost: float,
        point: "Optional[ServicePoint]",
        service: float,
    ) -> None:
        self.diag_index = diag_index
        self.latency = latency
        self.byte_cost = byte_cost
        self.point = point
        self.service = service

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DataRoute(diag={self.diag_index}, latency={self.latency:.2e},"
            f" byte_cost={self.byte_cost:.2e})"
        )
