"""The network model: routing and charging every PGAS operation.

This is the single choke point between algorithm code and the simulated
interconnect.  Given the runtime's :class:`~repro.runtime.config.NetworkType`
and :class:`~repro.comm.costs.CostModel`, it decides for each operation

1. which *latency class* applies (CPU atomic / NIC atomic / active message /
   RDMA data),
2. which *serial resources* the operation occupies (the target locale's NIC
   pipeline, its progress thread, and the target cache line), and
3. which diagnostic counter to bump.

Routing rules (straight from the paper):

=====================  =======================  ==========================
operation              ``ugni``                 ``none``
=====================  =======================  ==========================
64-bit atomic, local   NIC atomic (incoherent!) CPU atomic
64-bit atomic, remote  NIC (RDMA) atomic        active message round trip
128-bit DCAS, local    CPU ``CMPXCHG16B``       CPU ``CMPXCHG16B``
128-bit DCAS, remote   active message           active message
GET/PUT, local         CPU load/store           CPU load/store
GET/PUT, remote        RDMA                     RDMA
remote fork (``on``)   active message           active message
=====================  =======================  ==========================

The 128-bit row is why the paper's ``AtomicObject (ABA)`` cannot use the
RDMA fast path: no interconnect offers a 16-byte network atomic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..runtime.clock import ServicePoint, TaskClock
from .costs import CostModel
from .counters import CommDiagnostics, CommOp

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.config import RuntimeConfig
    from ..runtime.context import TaskContext

__all__ = ["NetworkModel"]


class NetworkModel:
    """Charges virtual time and counts operations for one runtime instance."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.costs: CostModel = config.costs
        #: Per-locale NIC pipelines (serialize RDMA atomics & data ops).
        self.nic: List[ServicePoint] = [
            ServicePoint(f"nic[{i}]") for i in range(config.num_locales)
        ]
        #: Per-locale progress threads (serialize active messages).
        self.progress: List[ServicePoint] = [
            ServicePoint(f"progress[{i}]") for i in range(config.num_locales)
        ]
        #: Operation counters, bucketed by initiating locale.
        self.diags = CommDiagnostics(config.num_locales)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _serve(
        self,
        clock: TaskClock,
        latency: float,
        points: Sequence[ServicePoint],
        services: Sequence[float],
    ) -> None:
        """Charge ``latency`` then pass through each (point, service) queue."""
        t = clock.advance(latency)
        for point, service in zip(points, services):
            t = point.serve(t, service)
        clock.advance_to(t)

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def atomic_op(
        self,
        ctx: "TaskContext",
        home: int,
        line: ServicePoint,
        *,
        wide: bool = False,
        opt_out: bool = False,
    ) -> None:
        """Charge one atomic memory operation against locale ``home``.

        ``line`` is the per-cell service point (the cache line / NIC-side
        address pipeline for that atomic variable) — this is what makes a
        *hot* atomic serialize even when the NIC itself has spare capacity.

        ``wide=True`` selects the 128-bit DCAS rules (never RDMA).

        ``opt_out=True`` models the paper's deliberate avoidance of network
        atomics for variables that are only ever accessed locally (e.g. the
        per-locale limbo-list heads): the op is priced as a CPU atomic even
        under ``ugni``.  A remote access to an opted-out atomic still pays
        the active-message price — opting out removes the NIC detour, not
        physics.
        """
        c = self.costs
        local = ctx.locale_id == home
        if opt_out and not wide:
            if local:
                self.diags.record(ctx.locale_id, CommOp.LOCAL_AMO)
                self._serve(
                    ctx.clock,
                    c.cpu_atomic_latency,
                    (line,),
                    (c.cpu_atomic_service,),
                )
            else:
                self.diags.record(ctx.locale_id, CommOp.AM)
                self._serve(
                    ctx.clock,
                    2.0 * c.am_latency,
                    (self.progress[home], line),
                    (c.am_service, c.cpu_atomic_service),
                )
            return
        if wide:
            if local:
                self.diags.record(ctx.locale_id, CommOp.LOCAL_AMO)
                self._serve(
                    ctx.clock,
                    c.cpu_dcas_latency,
                    (line,),
                    (c.cpu_dcas_service,),
                )
            else:
                # Remote DCAS = remote execution: round trip through the
                # target's progress thread, then the line.
                self.diags.record(ctx.locale_id, CommOp.AM)
                self._serve(
                    ctx.clock,
                    2.0 * c.am_latency,
                    (self.progress[home], line),
                    (c.am_service, c.cpu_dcas_service),
                )
            return

        if self.config.uses_network_atomics:
            # ugni: every atomic — even a locale-local one — rides the NIC.
            latency = (
                c.nic_atomic_local_latency if local else c.nic_atomic_remote_latency
            )
            self.diags.record(
                ctx.locale_id, CommOp.LOCAL_AMO if local else CommOp.AMO
            )
            self._serve(
                ctx.clock,
                latency,
                (self.nic[home], line),
                (c.nic_atomic_service, c.nic_atomic_service),
            )
        else:
            if local:
                self.diags.record(ctx.locale_id, CommOp.LOCAL_AMO)
                self._serve(
                    ctx.clock,
                    c.cpu_atomic_latency,
                    (line,),
                    (c.cpu_atomic_service,),
                )
            else:
                # none: remote atomic demotes to an AM round trip.
                self.diags.record(ctx.locale_id, CommOp.AM)
                self._serve(
                    ctx.clock,
                    2.0 * c.am_latency,
                    (self.progress[home], line),
                    (c.am_service, c.cpu_atomic_service),
                )

    # ------------------------------------------------------------------
    # one-sided data movement
    # ------------------------------------------------------------------
    def read(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a GET of ``nbytes`` from locale ``home``."""
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.cpu_load_latency)
            return
        self.diags.record(ctx.locale_id, CommOp.GET)
        self._serve(
            ctx.clock,
            c.rdma_small_latency + nbytes * c.rdma_byte_cost,
            (self.nic[home],),
            (c.rdma_service,),
        )

    def write(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a PUT of ``nbytes`` to locale ``home``."""
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.cpu_load_latency)
            return
        self.diags.record(ctx.locale_id, CommOp.PUT)
        self._serve(
            ctx.clock,
            c.rdma_small_latency + nbytes * c.rdma_byte_cost,
            (self.nic[home],),
            (c.rdma_service,),
        )

    def bulk(self, ctx: "TaskContext", home: int, nbytes: int) -> None:
        """Charge a bulk one-sided transfer of ``nbytes`` to/from ``home``."""
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.cpu_load_latency + nbytes * c.rdma_byte_cost)
            return
        self.diags.record(ctx.locale_id, CommOp.BULK, nbytes=nbytes)
        self._serve(
            ctx.clock,
            c.rdma_small_latency + nbytes * c.rdma_byte_cost,
            (self.nic[home],),
            (c.rdma_service,),
        )

    # ------------------------------------------------------------------
    # remote execution
    # ------------------------------------------------------------------
    def remote_fork(self, ctx: "TaskContext", target: int) -> None:
        """Charge initiating an ``on`` statement (blocking remote fork)."""
        if ctx.locale_id == target:
            return
        c = self.costs
        self.diags.record(ctx.locale_id, CommOp.FORK)
        self._serve(
            ctx.clock,
            c.task_spawn_remote,
            (self.progress[target],),
            (c.am_service,),
        )

    def remote_return(self, ctx: "TaskContext", origin: int) -> None:
        """Charge returning from an ``on`` statement back to ``origin``."""
        if ctx.locale_id == origin:
            return
        self.diags.record(ctx.locale_id, CommOp.AM)
        self._serve(
            ctx.clock,
            self.costs.am_latency,
            (self.progress[origin],),
            (self.costs.am_service,),
        )

    def am_roundtrip(self, ctx: "TaskContext", target: int) -> None:
        """Charge a generic RPC to ``target`` (request + response)."""
        c = self.costs
        if ctx.locale_id == target:
            ctx.clock.advance(c.cpu_load_latency)
            return
        self.diags.record(ctx.locale_id, CommOp.AM)
        self._serve(
            ctx.clock,
            2.0 * c.am_latency,
            (self.progress[target],),
            (c.am_service,),
        )

    # ------------------------------------------------------------------
    # memory management costs
    # ------------------------------------------------------------------
    def alloc(self, ctx: "TaskContext", home: int) -> None:
        """Charge allocating one object on ``home``.

        A remote allocation is remote execution (an AM round trip), which is
        why the paper allocates nodes locally and publishes them with one
        atomic.
        """
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.alloc_latency)
        else:
            self.am_roundtrip(ctx, home)
            ctx.clock.advance(c.alloc_latency)

    def free(self, ctx: "TaskContext", home: int) -> None:
        """Charge freeing one object on ``home`` (remote => RPC)."""
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.free_latency)
        else:
            self.am_roundtrip(ctx, home)
            ctx.clock.advance(c.free_latency)

    def bulk_free(self, ctx: "TaskContext", home: int, count: int) -> None:
        """Charge freeing ``count`` objects on ``home`` as one batch.

        This is the scatter-list payoff: one RPC (if remote) plus an
        amortized per-object cost, instead of ``count`` RPCs.
        """
        if count <= 0:
            return
        c = self.costs
        if ctx.locale_id != home:
            self.am_roundtrip(ctx, home)
        ctx.clock.advance(c.free_latency + (count - 1) * c.bulk_free_per_object)

    # ------------------------------------------------------------------
    # measurement control
    # ------------------------------------------------------------------
    def reset_measurements(self) -> None:
        """Zero all service points and counters (between benchmark trials)."""
        for p in self.nic:
            p.reset()
        for p in self.progress:
            p.reset()
        self.diags.reset()
