"""The network model: routing and charging every PGAS operation.

This is the single choke point between algorithm code and the simulated
interconnect.  Given the runtime's :class:`~repro.runtime.config.NetworkType`
and :class:`~repro.comm.costs.CostModel`, it decides for each operation

1. which *latency class* applies (CPU atomic / NIC atomic / active message /
   RDMA data),
2. which *serial resources* the operation occupies (the target locale's NIC
   pipeline, its progress thread, and the target cache line), and
3. which diagnostic counter to bump.

Routing rules (straight from the paper):

=====================  =======================  ==========================
operation              ``ugni``                 ``none``
=====================  =======================  ==========================
64-bit atomic, local   NIC atomic (incoherent!) CPU atomic
64-bit atomic, remote  NIC (RDMA) atomic        active message round trip
128-bit DCAS, local    CPU ``CMPXCHG16B``       CPU ``CMPXCHG16B``
128-bit DCAS, remote   active message           active message
GET/PUT, local         CPU load/store           CPU load/store
GET/PUT, remote        RDMA                     RDMA
remote fork (``on``)   active message           active message
=====================  =======================  ==========================

The 128-bit row is why the paper's ``AtomicObject (ABA)`` cannot use the
RDMA fast path: no interconnect offers a 16-byte network atomic.

Because every input to a routing decision is fixed at construction time,
the table above is *precompiled*: each home locale gets an 8-entry
:class:`~repro.comm.routes.AtomicRoute` table (the (wide, opt_out, local)
cube) and one :class:`~repro.comm.routes.DataRoute` per transfer class,
built lazily on first use and cached for the runtime's life.  The hot
paths (:meth:`charge_atomic`, :meth:`read`, :meth:`write`, :meth:`bulk`)
are straight-line: one table index, one precompiled diagnostic bump, one
or two service-point passes.  :meth:`atomic_op` keeps the branchy
reference semantics as a thin wrapper over the same tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..runtime.clock import ServicePoint, TaskClock
from .costs import CostModel
from .counters import CommDiagnostics, CommOp
from .routes import AtomicRoute, DataRoute, atomic_route_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.config import RuntimeConfig
    from ..runtime.context import TaskContext

__all__ = ["NetworkModel"]


class NetworkModel:
    """Charges virtual time and counts operations for one runtime instance."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.costs: CostModel = config.costs
        #: Per-locale NIC pipelines (serialize RDMA atomics & data ops).
        self.nic: List[ServicePoint] = [
            ServicePoint(f"nic[{i}]") for i in range(config.num_locales)
        ]
        #: Per-locale progress threads (serialize active messages).
        self.progress: List[ServicePoint] = [
            ServicePoint(f"progress[{i}]") for i in range(config.num_locales)
        ]
        #: Operation counters, bucketed by initiating locale.
        self.diags = CommDiagnostics(config.num_locales)
        # Precompiled route caches, one slot per home locale, filled on
        # first use (a 2**16-locale machine should not pay for 2**16
        # tables up front).
        nloc = config.num_locales
        self._atomic_tables: List[Optional[Tuple[AtomicRoute, ...]]] = [None] * nloc
        self._get_routes: List[Optional[DataRoute]] = [None] * nloc
        self._put_routes: List[Optional[DataRoute]] = [None] * nloc
        self._bulk_routes: List[Optional[DataRoute]] = [None] * nloc
        # Scalars lifted out of the hot paths.
        self._cpu_load_latency = self.costs.cpu_load_latency
        self._bulk_byte_cost = self.costs.rdma_byte_cost

    # ------------------------------------------------------------------
    # route compilation
    # ------------------------------------------------------------------
    def atomic_route_table(self, home: int) -> Tuple[AtomicRoute, ...]:
        """The 8-entry precompiled atomic route table for ``home``.

        Index layout: ``(wide << 2) | (opt_out << 1) | local`` — see
        :func:`repro.comm.routes.atomic_route_index`.  Cells fetch this
        once at construction; all cells on one home share one table.
        """
        table = self._atomic_tables[home]
        if table is None:
            table = self._compile_atomic_table(home)
            self._atomic_tables[home] = table
        return table

    def _compile_atomic_table(self, home: int) -> Tuple[AtomicRoute, ...]:
        c = self.costs
        idx = CommDiagnostics.op_index
        local_amo = idx(CommOp.LOCAL_AMO)
        amo = idx(CommOp.AMO)
        am = idx(CommOp.AM)
        progress = self.progress[home]
        nic = self.nic[home]

        cpu_local = AtomicRoute(
            local_amo, c.cpu_atomic_latency, None, 0.0, c.cpu_atomic_service
        )
        cpu_remote = AtomicRoute(
            am, 2.0 * c.am_latency, progress, c.am_service, c.cpu_atomic_service
        )
        dcas_local = AtomicRoute(
            local_amo, c.cpu_dcas_latency, None, 0.0, c.cpu_dcas_service
        )
        # Remote DCAS = remote execution: round trip through the target's
        # progress thread, then the line.
        dcas_remote = AtomicRoute(
            am, 2.0 * c.am_latency, progress, c.am_service, c.cpu_dcas_service
        )
        if self.config.uses_network_atomics:
            # ugni: every narrow atomic — even a locale-local one — rides
            # the NIC (network atomics are not coherent with CPU atomics).
            narrow_local = AtomicRoute(
                local_amo,
                c.nic_atomic_local_latency,
                nic,
                c.nic_atomic_service,
                c.nic_atomic_service,
            )
            narrow_remote = AtomicRoute(
                amo,
                c.nic_atomic_remote_latency,
                nic,
                c.nic_atomic_service,
                c.nic_atomic_service,
            )
        else:
            # none: local is a CPU atomic, remote demotes to an AM round trip.
            narrow_local = cpu_local
            narrow_remote = cpu_remote
        # Opting out removes the NIC detour, not physics: a remote access
        # to an opted-out atomic still pays the active-message price.
        # ``wide`` ignores opt_out entirely (a DCAS is never a NIC op).
        table: List[Optional[AtomicRoute]] = [None] * 8
        for wide in (False, True):
            for opt_out in (False, True):
                if wide:
                    remote, local = dcas_remote, dcas_local
                elif opt_out:
                    remote, local = cpu_remote, cpu_local
                else:
                    remote, local = narrow_remote, narrow_local
                table[atomic_route_index(wide, opt_out, False)] = remote
                table[atomic_route_index(wide, opt_out, True)] = local
        return tuple(table)

    def _data_route(
        self, cache: List[Optional[DataRoute]], home: int, op: str
    ) -> DataRoute:
        route = cache[home]
        if route is None:
            c = self.costs
            route = DataRoute(
                CommDiagnostics.op_index(op),
                c.rdma_small_latency,
                c.rdma_byte_cost,
                self.nic[home],
                c.rdma_service,
            )
            cache[home] = route
        return route

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _serve(
        self,
        clock: TaskClock,
        latency: float,
        points: Sequence[ServicePoint],
        services: Sequence[float],
    ) -> None:
        """Charge ``latency`` then pass through each (point, service) queue."""
        t = clock.advance(latency)
        for point, service in zip(points, services):
            t = point.serve(t, service)
        clock.advance_to(t)

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def charge_atomic(
        self, ctx: "TaskContext", line: ServicePoint, route: AtomicRoute
    ) -> None:
        """Charge one atomic op along a precompiled route (the hot path).

        ``line`` is the per-cell service point (the cache line / NIC-side
        address pipeline for that atomic variable) — this is what makes a
        *hot* atomic serialize even when the rest of the machine is idle.
        Equivalent to :meth:`atomic_op` with the branch chain already
        resolved; the clock algebra matches ``_serve`` exactly (the final
        time can never precede ``now + latency``, so the plain store is
        the same as ``advance`` + ``advance_to``).
        """
        diags = self.diags
        if diags._enabled:
            # Thread-local stripe, NOT the ctx.diag_rows cache: this entry
            # point may legitimately be reached with a ctx belonging to a
            # different runtime (cross-runtime get/put), and caching a
            # foreign diags' stripe on the context would poison every
            # later same-runtime record.  Only the runtime-guarded atomic
            # cell fast paths populate ctx.diag_rows.
            diags.record_index(ctx.locale_id, route.diag_index)
        clock = ctx.clock
        t = clock.now + route.latency
        point = route.point
        if point is not None:
            t = point.serve(t, route.point_service)
        clock.now = line.serve(t, route.line_service)

    def atomic_op(
        self,
        ctx: "TaskContext",
        home: int,
        line: ServicePoint,
        *,
        wide: bool = False,
        opt_out: bool = False,
    ) -> None:
        """Charge one atomic memory operation against locale ``home``.

        Reference entry point mirroring the routing table in the module
        docstring; resolves the precompiled route and defers to
        :meth:`charge_atomic`.  Cells bypass this wrapper by caching their
        home's table at construction.

        ``wide=True`` selects the 128-bit DCAS rules (never RDMA).

        ``opt_out=True`` models the paper's deliberate avoidance of network
        atomics for variables that are only ever accessed locally (e.g. the
        per-locale limbo-list heads): the op is priced as a CPU atomic even
        under ``ugni``.  A remote access to an opted-out atomic still pays
        the active-message price — opting out removes the NIC detour, not
        physics.
        """
        table = self.atomic_route_table(home)
        index = (
            (4 if wide else 0)
            | (2 if opt_out else 0)
            | (1 if ctx.locale_id == home else 0)
        )
        self.charge_atomic(ctx, line, table[index])

    # ------------------------------------------------------------------
    # one-sided data movement
    # ------------------------------------------------------------------
    def read(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a GET of ``nbytes`` from locale ``home``."""
        clock = ctx.clock
        if ctx.locale_id == home:
            clock.now += self._cpu_load_latency
            return
        r = self._get_routes[home]
        if r is None:
            r = self._data_route(self._get_routes, home, CommOp.GET)
        # Thread-local stripe, not the ctx cache (see charge_atomic).
        self.diags.record_index(ctx.locale_id, r.diag_index)
        t = clock.now + r.latency + nbytes * r.byte_cost
        clock.now = r.point.serve(t, r.service)

    def write(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a PUT of ``nbytes`` to locale ``home``."""
        clock = ctx.clock
        if ctx.locale_id == home:
            clock.now += self._cpu_load_latency
            return
        r = self._put_routes[home]
        if r is None:
            r = self._data_route(self._put_routes, home, CommOp.PUT)
        # Thread-local stripe, not the ctx cache (see charge_atomic).
        self.diags.record_index(ctx.locale_id, r.diag_index)
        t = clock.now + r.latency + nbytes * r.byte_cost
        clock.now = r.point.serve(t, r.service)

    def bulk(self, ctx: "TaskContext", home: int, nbytes: int) -> None:
        """Charge a bulk one-sided transfer of ``nbytes`` to/from ``home``."""
        clock = ctx.clock
        if ctx.locale_id == home:
            clock.now += self._cpu_load_latency + nbytes * self._bulk_byte_cost
            return
        r = self._bulk_routes[home]
        if r is None:
            r = self._data_route(self._bulk_routes, home, CommOp.BULK)
        self.diags.record_bulk(ctx.locale_id, nbytes)
        t = clock.now + r.latency + nbytes * r.byte_cost
        clock.now = r.point.serve(t, r.service)

    # ------------------------------------------------------------------
    # remote execution
    # ------------------------------------------------------------------
    def remote_fork(self, ctx: "TaskContext", target: int) -> None:
        """Charge initiating an ``on`` statement (blocking remote fork)."""
        if ctx.locale_id == target:
            return
        c = self.costs
        self.diags.record(ctx.locale_id, CommOp.FORK)
        self._serve(
            ctx.clock,
            c.task_spawn_remote,
            (self.progress[target],),
            (c.am_service,),
        )

    def remote_return(self, ctx: "TaskContext", origin: int) -> None:
        """Charge returning from an ``on`` statement back to ``origin``."""
        if ctx.locale_id == origin:
            return
        self.diags.record(ctx.locale_id, CommOp.AM)
        self._serve(
            ctx.clock,
            self.costs.am_latency,
            (self.progress[origin],),
            (self.costs.am_service,),
        )

    def am_roundtrip(self, ctx: "TaskContext", target: int) -> None:
        """Charge a generic RPC to ``target`` (request + response)."""
        c = self.costs
        if ctx.locale_id == target:
            ctx.clock.advance(c.cpu_load_latency)
            return
        self.diags.record(ctx.locale_id, CommOp.AM)
        self._serve(
            ctx.clock,
            2.0 * c.am_latency,
            (self.progress[target],),
            (c.am_service,),
        )

    # ------------------------------------------------------------------
    # memory management costs
    # ------------------------------------------------------------------
    def alloc(self, ctx: "TaskContext", home: int) -> None:
        """Charge allocating one object on ``home``.

        A remote allocation is remote execution (an AM round trip), which is
        why the paper allocates nodes locally and publishes them with one
        atomic.
        """
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.alloc_latency)
        else:
            self.am_roundtrip(ctx, home)
            ctx.clock.advance(c.alloc_latency)

    def free(self, ctx: "TaskContext", home: int) -> None:
        """Charge freeing one object on ``home`` (remote => RPC)."""
        c = self.costs
        if ctx.locale_id == home:
            ctx.clock.advance(c.free_latency)
        else:
            self.am_roundtrip(ctx, home)
            ctx.clock.advance(c.free_latency)

    def bulk_free(self, ctx: "TaskContext", home: int, count: int) -> None:
        """Charge freeing ``count`` objects on ``home`` as one batch.

        This is the scatter-list payoff: one RPC (if remote) plus an
        amortized per-object cost, instead of ``count`` RPCs.
        """
        if count <= 0:
            return
        c = self.costs
        if ctx.locale_id != home:
            self.am_roundtrip(ctx, home)
        ctx.clock.advance(c.free_latency + (count - 1) * c.bulk_free_per_object)

    # ------------------------------------------------------------------
    # measurement control
    # ------------------------------------------------------------------
    def reset_measurements(self) -> None:
        """Zero all service points and counters (between benchmark trials).

        Routes are untouched: they reference service points by identity,
        and ``reset`` zeroes points in place.
        """
        for p in self.nic:
            p.reset()
        for p in self.progress:
            p.reset()
        self.diags.reset()
