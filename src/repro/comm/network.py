"""The network model: routing and charging every PGAS operation.

This is the single choke point between algorithm code and the simulated
interconnect.  Given the runtime's :class:`~repro.runtime.config.NetworkType`,
:class:`~repro.comm.costs.CostModel` and
:class:`~repro.comm.topology.Topology`, it decides for each operation

1. which *latency class* applies (CPU atomic / NIC atomic / active message /
   RDMA data) — a function of the operation, the network flavour, and the
   **distance class** between the issuing locale and the home locale,
2. which *serial resources* the operation occupies (the target locale's NIC
   pipeline, its progress thread, its node/group's shared uplink, and the
   target cache line), and
3. which diagnostic counter to bump.

Routing rules for the flat (default) topology, straight from the paper:

=====================  =======================  ==========================
operation              ``ugni``                 ``none``
=====================  =======================  ==========================
64-bit atomic, local   NIC atomic (incoherent!) CPU atomic
64-bit atomic, remote  NIC (RDMA) atomic        active message round trip
128-bit DCAS, local    CPU ``CMPXCHG16B``       CPU ``CMPXCHG16B``
128-bit DCAS, remote   active message           active message
GET/PUT, local         CPU load/store           CPU load/store
GET/PUT, remote        RDMA                     RDMA
remote fork (``on``)   active message           active message
=====================  =======================  ==========================

The 128-bit row is why the paper's ``AtomicObject (ABA)`` cannot use the
RDMA fast path: no interconnect offers a 16-byte network atomic.

Multi-level topologies refine the "remote" column per distance class
(see :mod:`repro.comm.topology` and docs/TOPOLOGY.md): a ``coherent``
peer (same socket) pays CPU prices with no serial network resource, a
``nic`` peer (same node) rides the NIC fabric, and an ``am``/uplink peer
(cross-node, cross-group) pays scaled active-message prices through a
*shared* uplink service point.  A 128-bit DCAS against a coherent peer is
still a CPU ``CMPXCHG16B`` — coherence is exactly what a wide CAS needs.

Because every input to a routing decision is fixed at construction time,
the table above is *precompiled*: each home locale gets a per-distance-
class :class:`~repro.comm.routes.AtomicRoute` table (rows: narrow/wide x
plain/opt-out; columns: distance classes) plus one
:class:`~repro.comm.routes.DataRoute` per (transfer class, distance
class), built lazily on first use and cached for the runtime's life.
Under the flat topology this collapses to the legacy 8-entry (wide,
opt_out, local) cube — exposed unchanged via :meth:`atomic_route_table`
and verified entry-by-entry against the branchy reference compile in
tests/test_topology.py.  The hot paths (:meth:`charge_atomic`,
:meth:`read`, :meth:`write`, :meth:`bulk`) are straight-line: one
distance-row index, one precompiled diagnostic bump, one or two
service-point passes.  :meth:`atomic_op` keeps the branchy reference
semantics as a thin wrapper over the same tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..runtime.clock import ServicePoint, TaskClock
from .aggregation import UplinkAggregator
from .costs import CostModel
from .counters import CommDiagnostics, CommOp
from .routes import AtomicRoute, DataRoute, atomic_route_index
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.config import RuntimeConfig
    from ..runtime.context import TaskContext

__all__ = ["NetworkModel"]


class NetworkModel:
    """Charges virtual time and counts operations for one runtime instance."""

    def __init__(self, config: RuntimeConfig) -> None:
        self.config = config
        self.costs: CostModel = config.costs
        #: The interconnect shape (distance classes over locale pairs).
        self.topology: Topology = config.resolved_topology()
        #: Per-locale NIC pipelines (serialize RDMA atomics & data ops).
        self.nic: List[ServicePoint] = [
            ServicePoint(f"nic[{i}]") for i in range(config.num_locales)
        ]
        #: Per-locale progress threads (serialize active messages).
        self.progress: List[ServicePoint] = [
            ServicePoint(f"progress[{i}]") for i in range(config.num_locales)
        ]
        #: Shared uplink service points, one per topology uplink group —
        #: only materialized when some distance class declares one (the
        #: flat topology has none).
        self.uplinks: dict = {}
        if any(c.shared_uplink for c in self.topology.classes):
            groups = {
                self.topology.uplink_group(lid)
                for lid in range(config.num_locales)
            }
            self.uplinks = {
                g: ServicePoint(f"uplink[{g}]") for g in sorted(groups)
            }
        #: Operation counters, bucketed by initiating locale.
        self.diags = CommDiagnostics(config.num_locales)
        #: Full-detail trace recorder (docs/OBSERVABILITY.md), or None —
        #: the common case.  Installed by :meth:`install_tracer` when the
        #: runtime's trace detail is ``full``; charge sites then emit one
        #: ``op`` event per operation.  When None the only added cost per
        #: charge is the attribute check.
        self._tracer = None
        #: The validated message-aggregation window for this machine.
        self.aggregation = config.resolved_aggregation()
        # Per-distance-class cost models: the base model with only the
        # network-facing fields scaled by the class's link factor.  Scale
        # 1.0 returns the base object itself, keeping flat-topology routes
        # bit-identical to the legacy compile.
        self._class_costs: Tuple[CostModel, ...] = tuple(
            self.costs.network_scaled(c.scale) for c in self.topology.classes
        )
        #: Which classes are communication-free (self or CPU-coherent).
        self._coherent_class: Tuple[bool, ...] = tuple(
            i == 0 or c.transport == "coherent"
            for i, c in enumerate(self.topology.classes)
        )
        # Precompiled route caches, one slot per home locale, filled on
        # first use (a 2**16-locale machine should not pay for 2**16
        # tables up front).
        nloc = config.num_locales
        self._dist_rows: List[Optional[Tuple[int, ...]]] = [None] * nloc
        self._class_tables: List[
            Optional[Tuple[Tuple[AtomicRoute, ...], ...]]
        ] = [None] * nloc
        self._atomic_tables: List[Optional[Tuple[AtomicRoute, ...]]] = [None] * nloc
        self._get_routes: List[Optional[Tuple[Optional[DataRoute], ...]]] = [None] * nloc
        self._put_routes: List[Optional[Tuple[Optional[DataRoute], ...]]] = [None] * nloc
        self._bulk_routes: List[Optional[Tuple[Optional[DataRoute], ...]]] = [None] * nloc
        self._ctrl_tables: List[Optional[tuple]] = [None] * nloc
        # Scalars lifted out of the hot paths.
        self._cpu_load_latency = self.costs.cpu_load_latency
        self._bulk_byte_cost = self.costs.rdma_byte_cost
        #: The coalescing layer for same-uplink operation batches (see
        #: :mod:`repro.comm.aggregation`).  Inert — every call degenerates
        #: to the legacy per-op path — when the window is 1 or the
        #: topology has no shared uplinks.  The window is owned by the
        #: machine's window policy (docs/POLICY.md): static by default,
        #: adaptive under ``policy = "adaptive:lo..hi"``.
        self.aggregator = UplinkAggregator(
            self,
            self.aggregation,
            config.resolved_policy().make_window_policy(self.aggregation.window),
        )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def install_tracer(self, tracer) -> None:
        """Install a full-detail trace recorder on every charge site and
        ServicePoint (called once, at Runtime construction, when
        ``config.trace == "full"``).  Atomic-cell lines pick the recorder
        up from ``runtime._full_tracer`` at cell construction."""
        self._tracer = tracer
        for p in self.nic:
            p._tracer = tracer
        for p in self.progress:
            p._tracer = tracer
        for p in self.uplinks.values():
            p._tracer = tracer

    # ------------------------------------------------------------------
    # topology plumbing
    # ------------------------------------------------------------------
    def distance_row(self, home: int) -> Tuple[int, ...]:
        """Distance class of every source locale against ``home`` (cached).

        Cells fetch this once at construction; the hot paths index it by
        the issuing locale id — the only per-operation topology cost.
        """
        row = self._dist_rows[home]
        if row is None:
            row = self.topology.distance_row(home)
            self._dist_rows[home] = row
        return row

    def is_coherent(self, src: int, dst: int) -> bool:
        """True when ``src`` reaches ``dst`` without a network message
        (the same locale, or a peer in the same CPU-coherence domain)."""
        return self._coherent_class[self.distance_row(dst)[src]]

    def spawn_broadcast_cost(self, src: int, targets) -> float:
        """Per-hop cost of a spawn tree rooted at ``src`` spanning
        ``targets``: ``task_spawn_remote`` scaled by the *worst* distance
        class the broadcast crosses (a tree spanning a dragonfly's
        degraded inter-group links pays the degraded per-hop price).  A
        tree that never leaves ``src``'s coherence domain spawns over
        shared memory — ``task_spawn_local`` per hop, matching
        :meth:`remote_fork`'s pricing (and no-FORK accounting) for the
        same peers.  Class 0 keeps the legacy ``task_spawn_remote``
        constant: the pre-topology engine charged it for every spawn tree
        regardless of locality, and the flat baselines pin that."""
        # distance(src, target) orientation — rows are keyed by target.
        worst = max(
            (self.distance_row(t)[src] for t in targets), default=0
        )
        if worst and self._coherent_class[worst]:
            return self.costs.task_spawn_local
        return self._class_costs[worst].task_spawn_remote

    def _class_point(
        self, class_index: int, home: int, *, am_path: bool
    ) -> ServicePoint:
        """The serial resource class ``class_index`` ops against ``home``
        occupy: the shared uplink when the class declares one, else the
        home's NIC pipeline (``am_path=False``) or progress thread."""
        if self.topology.classes[class_index].shared_uplink:
            return self.uplinks[self.topology.uplink_group(home)]
        return (self.progress if am_path else self.nic)[home]

    # ------------------------------------------------------------------
    # route compilation
    # ------------------------------------------------------------------
    def atomic_class_routes(
        self, home: int
    ) -> Tuple[Tuple[AtomicRoute, ...], ...]:
        """The per-distance-class atomic route table for ``home``.

        Four rows — ``[narrow-plain, narrow-opt-out, wide-plain,
        wide-opt-out]`` (row index ``(2 if wide else 0) | (1 if opt_out
        else 0)``) — each a tuple with one :class:`AtomicRoute` per
        distance class, class 0 being the home locale itself.  Cells
        fetch the rows for their own ``opt_out`` once at construction and
        index them with their home's distance row.
        """
        table = self._class_tables[home]
        if table is None:
            table = self._compile_class_routes(home)
            self._class_tables[home] = table
        return table

    def _compile_class_routes(
        self, home: int
    ) -> Tuple[Tuple[AtomicRoute, ...], ...]:
        idx = CommDiagnostics.op_index
        local_amo = idx(CommOp.LOCAL_AMO)
        amo = idx(CommOp.AMO)
        am = idx(CommOp.AM)
        ugni = self.config.uses_network_atomics

        narrow_plain: List[AtomicRoute] = []
        narrow_opt: List[AtomicRoute] = []
        wide: List[AtomicRoute] = []
        for ci, cls in enumerate(self.topology.classes):
            cc = self._class_costs[ci]
            cpu = AtomicRoute(
                local_amo, cc.cpu_atomic_latency, None, 0.0, cc.cpu_atomic_service
            )
            dcas_cpu = AtomicRoute(
                local_amo, cc.cpu_dcas_latency, None, 0.0, cc.cpu_dcas_service
            )
            transport = cls.transport
            if transport == "local":
                # The issuing locale itself: under ugni even a local narrow
                # atomic rides the NIC (network atomics are not coherent
                # with CPU atomics); under none it is a plain CPU atomic.
                if ugni:
                    narrow = AtomicRoute(
                        local_amo,
                        cc.nic_atomic_local_latency,
                        self.nic[home],
                        cc.nic_atomic_service,
                        cc.nic_atomic_service,
                    )
                else:
                    narrow = cpu
                narrow_plain.append(narrow)
                narrow_opt.append(cpu)
                wide.append(dcas_cpu)
                continue
            if transport == "coherent":
                # Same CPU coherence domain: CPU prices, no network
                # resource — and a wide CAS is still a local CMPXCHG16B.
                narrow_plain.append(cpu)
                narrow_opt.append(cpu)
                wide.append(dcas_cpu)
                continue
            # Genuinely networked classes.  "remote" follows the flavour
            # ("nic" under ugni, "am" under none); an explicit "nic"
            # demotes to "am" when the network offers no atomics.
            effective = transport
            if effective == "remote":
                effective = "nic" if ugni else "am"
            elif effective == "nic" and not ugni:
                effective = "am"
            am_route = AtomicRoute(
                am,
                2.0 * cc.am_latency,
                self._class_point(ci, home, am_path=True),
                cc.am_service,
                cc.cpu_atomic_service,
            )
            if effective == "nic":
                narrow_plain.append(
                    AtomicRoute(
                        amo,
                        cc.nic_atomic_remote_latency,
                        self._class_point(ci, home, am_path=False),
                        cc.nic_atomic_service,
                        cc.nic_atomic_service,
                    )
                )
            else:
                narrow_plain.append(am_route)
            # Opting out removes the NIC detour, not physics: a networked
            # access to an opted-out atomic still pays the AM price.
            narrow_opt.append(am_route)
            # Remote DCAS = remote execution: round trip through the
            # class's serial point, then the line.
            wide.append(
                AtomicRoute(
                    am,
                    2.0 * cc.am_latency,
                    self._class_point(ci, home, am_path=True),
                    cc.am_service,
                    cc.cpu_dcas_service,
                )
            )
        # ``wide`` ignores opt_out entirely (a DCAS is never a NIC op).
        wide_row = tuple(wide)
        return (tuple(narrow_plain), tuple(narrow_opt), wide_row, wide_row)

    def atomic_route_table(self, home: int) -> Tuple[AtomicRoute, ...]:
        """The legacy 8-entry (wide, opt_out, local) route cube for ``home``.

        Index layout: ``(wide << 2) | (opt_out << 1) | local`` — see
        :func:`repro.comm.routes.atomic_route_index`.  Only meaningful
        for two-class topologies (flat), where "remote" is a single
        class; multi-level topologies must use
        :meth:`atomic_class_routes`.  Kept for tests and back-compat.
        """
        table = self._atomic_tables[home]
        if table is None:
            if len(self.topology.classes) != 2:
                raise ValueError(
                    f"atomic_route_table is the flat (two-class) view;"
                    f" topology {self.topology.spec()!r} has"
                    f" {len(self.topology.classes)} distance classes —"
                    f" use atomic_class_routes(home) instead"
                )
            rows = self.atomic_class_routes(home)
            flat: List[Optional[AtomicRoute]] = [None] * 8
            for wide in (False, True):
                for opt_out in (False, True):
                    row = rows[(2 if wide else 0) | (1 if opt_out else 0)]
                    flat[atomic_route_index(wide, opt_out, True)] = row[0]
                    flat[atomic_route_index(wide, opt_out, False)] = row[1]
            table = tuple(flat)
            self._atomic_tables[home] = table
        return table

    def _compile_legacy_atomic_table(self, home: int) -> Tuple[AtomicRoute, ...]:
        """The pre-topology branchy compile, kept as the reference the
        flat per-class compile is verified against (entry by entry) in
        tests/test_topology.py.  Not used on any production path."""
        c = self.costs
        idx = CommDiagnostics.op_index
        local_amo = idx(CommOp.LOCAL_AMO)
        amo = idx(CommOp.AMO)
        am = idx(CommOp.AM)
        progress = self.progress[home]
        nic = self.nic[home]

        cpu_local = AtomicRoute(
            local_amo, c.cpu_atomic_latency, None, 0.0, c.cpu_atomic_service
        )
        cpu_remote = AtomicRoute(
            am, 2.0 * c.am_latency, progress, c.am_service, c.cpu_atomic_service
        )
        dcas_local = AtomicRoute(
            local_amo, c.cpu_dcas_latency, None, 0.0, c.cpu_dcas_service
        )
        dcas_remote = AtomicRoute(
            am, 2.0 * c.am_latency, progress, c.am_service, c.cpu_dcas_service
        )
        if self.config.uses_network_atomics:
            narrow_local = AtomicRoute(
                local_amo,
                c.nic_atomic_local_latency,
                nic,
                c.nic_atomic_service,
                c.nic_atomic_service,
            )
            narrow_remote = AtomicRoute(
                amo,
                c.nic_atomic_remote_latency,
                nic,
                c.nic_atomic_service,
                c.nic_atomic_service,
            )
        else:
            narrow_local = cpu_local
            narrow_remote = cpu_remote
        table: List[Optional[AtomicRoute]] = [None] * 8
        for wide in (False, True):
            for opt_out in (False, True):
                if wide:
                    remote, local = dcas_remote, dcas_local
                elif opt_out:
                    remote, local = cpu_remote, cpu_local
                else:
                    remote, local = narrow_remote, narrow_local
                table[atomic_route_index(wide, opt_out, False)] = remote
                table[atomic_route_index(wide, opt_out, True)] = local
        return tuple(table)

    def _data_routes(
        self,
        cache: List[Optional[Tuple[Optional[DataRoute], ...]]],
        home: int,
        op: str,
    ) -> Tuple[Optional[DataRoute], ...]:
        routes = cache[home]
        if routes is None:
            diag = CommDiagnostics.op_index(op)
            built: List[Optional[DataRoute]] = []
            for ci in range(len(self.topology.classes)):
                if self._coherent_class[ci]:
                    # Self / same coherence domain: a bare local load —
                    # callers take the no-route fast path.
                    built.append(None)
                    continue
                cc = self._class_costs[ci]
                built.append(
                    DataRoute(
                        diag,
                        cc.rdma_small_latency,
                        cc.rdma_byte_cost,
                        self._class_point(ci, home, am_path=False),
                        cc.rdma_service,
                    )
                )
            routes = tuple(built)
            cache[home] = routes
        return routes

    def _ctrl_routes(self, home: int) -> tuple:
        """Per-class control-plane recipes for AMs/forks/allocs against
        ``home``: ``None`` for communication-free classes, else
        ``(point, class_costs)``."""
        table = self._ctrl_tables[home]
        if table is None:
            table = tuple(
                None
                if self._coherent_class[ci]
                else (self._class_point(ci, home, am_path=True), self._class_costs[ci])
                for ci in range(len(self.topology.classes))
            )
            self._ctrl_tables[home] = table
        return table

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _serve(
        self,
        clock: TaskClock,
        latency: float,
        points: Sequence[ServicePoint],
        services: Sequence[float],
    ) -> None:
        """Charge ``latency`` then pass through each (point, service) queue."""
        t = clock.advance(latency)
        for point, service in zip(points, services):
            t = point.serve(t, service)
        clock.advance_to(t)

    # ------------------------------------------------------------------
    # atomics
    # ------------------------------------------------------------------
    def charge_atomic(
        self, ctx: "TaskContext", line: ServicePoint, route: AtomicRoute
    ) -> None:
        """Charge one atomic op along a precompiled route (the hot path).

        ``line`` is the per-cell service point (the cache line / NIC-side
        address pipeline for that atomic variable) — this is what makes a
        *hot* atomic serialize even when the rest of the machine is idle.
        Equivalent to :meth:`atomic_op` with the branch chain already
        resolved; the clock algebra matches ``_serve`` exactly (the final
        time can never precede ``now + latency``, so the plain store is
        the same as ``advance`` + ``advance_to``).
        """
        diags = self.diags
        if diags._enabled:
            # Thread-local stripe, NOT the ctx.diag_rows cache: this entry
            # point may legitimately be reached with a ctx belonging to a
            # different runtime (cross-runtime get/put), and caching a
            # foreign diags' stripe on the context would poison every
            # later same-runtime record.  Only the runtime-guarded atomic
            # cell fast paths populate ctx.diag_rows.
            diags.record_index(ctx.locale_id, route.diag_index)
        clock = ctx.clock
        t = clock.now + route.latency
        point = route.point
        if point is not None:
            t = point.serve(t, route.point_service)
        clock.now = line.serve(t, route.line_service)

    def atomic_op(
        self,
        ctx: "TaskContext",
        home: int,
        line: ServicePoint,
        *,
        wide: bool = False,
        opt_out: bool = False,
    ) -> None:
        """Charge one atomic memory operation against locale ``home``.

        Reference entry point mirroring the routing table in the module
        docstring; resolves the precompiled route for the caller's
        distance class and defers to :meth:`charge_atomic`.  Cells bypass
        this wrapper by caching their home's rows at construction.

        ``wide=True`` selects the 128-bit DCAS rules (never RDMA).

        ``opt_out=True`` models the paper's deliberate avoidance of network
        atomics for variables that are only ever accessed locally (e.g. the
        per-locale limbo-list heads): the op is priced as a CPU atomic even
        under ``ugni``.  A networked access to an opted-out atomic still
        pays the active-message price — opting out removes the NIC detour,
        not physics.
        """
        rows = self.atomic_class_routes(home)
        row = rows[(2 if wide else 0) | (1 if opt_out else 0)]
        self.charge_atomic(
            ctx, line, row[self.distance_row(home)[ctx.locale_id]]
        )

    # ------------------------------------------------------------------
    # one-sided data movement
    # ------------------------------------------------------------------
    def read(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a GET of ``nbytes`` from locale ``home``."""
        clock = ctx.clock
        tr = self._tracer
        t0 = clock.now if tr is not None else 0.0
        row = self._dist_rows[home]
        if row is None:
            row = self.distance_row(home)
        routes = self._get_routes[home]
        if routes is None:
            routes = self._data_routes(self._get_routes, home, CommOp.GET)
        dclass = row[ctx.locale_id]
        r = routes[dclass]
        if r is None:
            # Self or coherent peer: one local load, no communication.
            clock.now += self._cpu_load_latency
        else:
            # Thread-local stripe, not the ctx cache (see charge_atomic).
            self.diags.record_index(ctx.locale_id, r.diag_index)
            t = clock.now + r.latency + nbytes * r.byte_cost
            clock.now = r.point.serve(t, r.service)
        if tr is not None:
            tr.op("get", t0, clock.now, dclass, home, nbytes=nbytes)

    def write(self, ctx: "TaskContext", home: int, nbytes: int = 8) -> None:
        """Charge a PUT of ``nbytes`` to locale ``home``."""
        clock = ctx.clock
        tr = self._tracer
        t0 = clock.now if tr is not None else 0.0
        row = self._dist_rows[home]
        if row is None:
            row = self.distance_row(home)
        routes = self._put_routes[home]
        if routes is None:
            routes = self._data_routes(self._put_routes, home, CommOp.PUT)
        dclass = row[ctx.locale_id]
        r = routes[dclass]
        if r is None:
            clock.now += self._cpu_load_latency
        else:
            # Thread-local stripe, not the ctx cache (see charge_atomic).
            self.diags.record_index(ctx.locale_id, r.diag_index)
            t = clock.now + r.latency + nbytes * r.byte_cost
            clock.now = r.point.serve(t, r.service)
        if tr is not None:
            tr.op("put", t0, clock.now, dclass, home, nbytes=nbytes)

    def bulk(self, ctx: "TaskContext", home: int, nbytes: int) -> None:
        """Charge a bulk one-sided transfer of ``nbytes`` to/from ``home``."""
        clock = ctx.clock
        tr = self._tracer
        t0 = clock.now if tr is not None else 0.0
        row = self._dist_rows[home]
        if row is None:
            row = self.distance_row(home)
        routes = self._bulk_routes[home]
        if routes is None:
            routes = self._data_routes(self._bulk_routes, home, CommOp.BULK)
        dclass = row[ctx.locale_id]
        r = routes[dclass]
        if r is None:
            clock.now += self._cpu_load_latency + nbytes * self._bulk_byte_cost
        else:
            self.diags.record_bulk(ctx.locale_id, nbytes)
            t = clock.now + r.latency + nbytes * r.byte_cost
            clock.now = r.point.serve(t, r.service)
        if tr is not None:
            tr.op("bulk", t0, clock.now, dclass, home, nbytes=nbytes)

    # ------------------------------------------------------------------
    # remote execution
    # ------------------------------------------------------------------
    def remote_fork(self, ctx: "TaskContext", target: int) -> None:
        """Charge initiating an ``on`` statement (blocking remote fork)."""
        dclass = self.distance_row(target)[ctx.locale_id]
        if dclass == 0:
            return
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        ctrl = self._ctrl_routes(target)[dclass]
        if ctrl is None:
            # Coherent peer: scheduling a task on a core we share memory
            # with — a local spawn, no message, so (like every other
            # coherent-class charge) nothing is recorded in comm diags.
            ctx.clock.advance(self.costs.task_spawn_local)
        else:
            self.diags.record(ctx.locale_id, CommOp.FORK)
            point, cc = ctrl
            self._serve(ctx.clock, cc.task_spawn_remote, (point,), (cc.am_service,))
        if tr is not None:
            tr.op("fork", t0, ctx.clock.now, dclass, target)

    def remote_return(self, ctx: "TaskContext", origin: int) -> None:
        """Charge returning from an ``on`` statement back to ``origin``."""
        dclass = self.distance_row(origin)[ctx.locale_id]
        if dclass == 0:
            return
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        ctrl = self._ctrl_routes(origin)[dclass]
        if ctrl is None:
            # Coherent peer: no return message either (see remote_fork).
            ctx.clock.advance(self._cpu_load_latency)
        else:
            self.diags.record(ctx.locale_id, CommOp.AM)
            point, cc = ctrl
            self._serve(ctx.clock, cc.am_latency, (point,), (cc.am_service,))
        if tr is not None:
            tr.op("return", t0, ctx.clock.now, dclass, origin)

    def am_roundtrip(self, ctx: "TaskContext", target: int) -> None:
        """Charge a generic RPC to ``target`` (request + response)."""
        dclass = self.distance_row(target)[ctx.locale_id]
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        ctrl = self._ctrl_routes(target)[dclass]
        if ctrl is None:
            # Self or coherent peer: a direct call over shared memory.
            ctx.clock.advance(self._cpu_load_latency)
        else:
            self.diags.record(ctx.locale_id, CommOp.AM)
            point, cc = ctrl
            self._serve(ctx.clock, 2.0 * cc.am_latency, (point,), (cc.am_service,))
        if tr is not None:
            tr.op("am", t0, ctx.clock.now, dclass, target)

    # ------------------------------------------------------------------
    # memory management costs
    # ------------------------------------------------------------------
    def alloc(self, ctx: "TaskContext", home: int) -> None:
        """Charge allocating one object on ``home``.

        A non-coherent remote allocation is remote execution (an AM round
        trip), which is why the paper allocates nodes locally and
        publishes them with one atomic.  A coherent peer's heap is shared
        memory: no message, just the allocator cost.
        """
        c = self.costs
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        dclass = self.distance_row(home)[ctx.locale_id]
        if not self._coherent_class[dclass]:
            self.am_roundtrip(ctx, home)
        ctx.clock.advance(c.alloc_latency)
        if tr is not None:
            # Encloses the "am" event the non-coherent path just emitted.
            tr.op("alloc", t0, ctx.clock.now, dclass, home)

    def free(self, ctx: "TaskContext", home: int) -> None:
        """Charge freeing one object on ``home`` (non-coherent => RPC)."""
        c = self.costs
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        dclass = self.distance_row(home)[ctx.locale_id]
        if not self._coherent_class[dclass]:
            self.am_roundtrip(ctx, home)
        ctx.clock.advance(c.free_latency)
        if tr is not None:
            tr.op("free", t0, ctx.clock.now, dclass, home)

    def bulk_free(
        self, ctx: "TaskContext", home: int, count: int, *, rpc: bool = True
    ) -> None:
        """Charge freeing ``count`` objects on ``home`` as one batch.

        This is the scatter-list payoff: one RPC (if non-coherent) plus an
        amortized per-object cost, instead of ``count`` RPCs.  ``rpc=False``
        charges only the amortized frees — for callers whose crossing was
        already paid by an aggregated batch.
        """
        if count <= 0:
            return
        c = self.costs
        tr = self._tracer
        t0 = ctx.clock.now if tr is not None else 0.0
        dclass = self.distance_row(home)[ctx.locale_id]
        if rpc and not self._coherent_class[dclass]:
            self.am_roundtrip(ctx, home)
        ctx.clock.advance(c.free_latency + (count - 1) * c.bulk_free_per_object)
        if tr is not None:
            tr.op("bulk_free", t0, ctx.clock.now, dclass, home, count=count)

    # ------------------------------------------------------------------
    # measurement control
    # ------------------------------------------------------------------
    def reset_measurements(self) -> None:
        """Zero all service points and counters (between benchmark trials).

        Routes are untouched: they reference service points by identity,
        and ``reset`` zeroes points in place.
        """
        for p in self.nic:
            p.reset()
        for p in self.progress:
            p.reset()
        for p in self.uplinks.values():
            p.reset()
        self.diags.reset()
        if self._tracer is not None:
            self._tracer.reset_points()
