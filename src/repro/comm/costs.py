"""Latency / service-time constants for the simulated interconnect.

The reproduction does not try to match the absolute microsecond figures of
the paper's Cray XC-50; it matches the *ordering and separation* between
operation classes, which is what drives every curve in the evaluation:

``cpu atomic  <<  NIC (RDMA) atomic  <<  active message``

Three behaviours called out in the paper are encoded here explicitly:

* Under ``ugni`` (``CHPL_NETWORK_ATOMICS``), NIC atomics are **not
  coherent** with CPU atomics, so even locale-local atomic operations must
  go through the NIC — the paper measures this at "as much as an order of
  magnitude" over a CPU atomic.  Hence ``nic_atomic_local_latency`` is ~10x
  ``cpu_atomic_latency``.
* Without network atomics (``none``), a *remote* atomic demotes to an
  active message handled by the target locale's progress thread: higher
  latency and, crucially, a serial service point (see
  :class:`~repro.runtime.clock.ServicePoint`).
* A 128-bit DCAS is never an RDMA operation — it is either a local
  ``CMPXCHG16B`` or remote execution — so the ABA-protected paths always
  pay CPU/AM prices, exactly as the ``AtomicObject (ABA)`` series do in
  Figure 3.

All times are in **seconds** of virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["CostModel", "DEFAULT_COSTS"]

#: One nanosecond, for readability of the constants below.
_NS = 1e-9
#: One microsecond.
_US = 1e-6


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost constants for every simulated operation class.

    Instances are immutable; use :meth:`scaled` or :func:`dataclasses.replace`
    to derive variants (e.g. a slower network for sensitivity studies).

    Attributes are grouped as ``*_latency`` (time charged to the issuing
    task) and ``*_service`` (time the contended resource — NIC pipeline or
    progress thread — is occupied; this is what serializes hot spots).
    """

    # -- CPU-side atomics (coherent, cache-line granularity) ------------
    #: Uncontended CPU atomic op (read/write/xchg/CAS on 64 bits).
    cpu_atomic_latency: float = 30 * _NS
    #: Exclusive cache-line occupancy per CPU atomic op.
    cpu_atomic_service: float = 15 * _NS
    #: CPU double-word (128-bit) CAS, e.g. CMPXCHG16B.
    cpu_dcas_latency: float = 60 * _NS
    #: Cache-line occupancy for a DCAS.
    cpu_dcas_service: float = 30 * _NS
    #: Plain (non-atomic) local load/store of a word or object field.
    cpu_load_latency: float = 2 * _NS

    # -- NIC-offloaded (RDMA) atomics: the `ugni` path -------------------
    #: NIC atomic issued against memory on the *same* locale.  Large on
    #: purpose: network atomics are not coherent, so local ops pay the NIC
    #: round trip too (paper: ~an order of magnitude over a CPU atomic).
    nic_atomic_local_latency: float = 400 * _NS
    #: NIC atomic against a remote locale (the paper's "ballpark of mere
    #: microseconds").
    nic_atomic_remote_latency: float = 1.1 * _US
    #: NIC pipeline occupancy per atomic; small because Aries pipelines
    #: network atomics aggressively.
    nic_atomic_service: float = 60 * _NS

    # -- Active messages (remote execution; the `none` remote path) ------
    #: One-way software latency for an active message (includes injection,
    #: wire time, and handler dispatch at the target).
    am_latency: float = 4.0 * _US
    #: Progress-thread occupancy per AM at the target locale.  This is the
    #: term that makes AM-bound locales a scaling bottleneck.
    am_service: float = 700 * _NS

    # -- One-sided data movement (GET / PUT) -----------------------------
    #: Small-message one-sided read/write latency.
    rdma_small_latency: float = 1.4 * _US
    #: Per-byte cost of bulk one-sided transfers (~10 GB/s).
    rdma_byte_cost: float = 0.1 * _NS
    #: NIC occupancy per RDMA data operation.
    rdma_service: float = 80 * _NS

    # -- Tasking ----------------------------------------------------------
    #: Spawning one task on the current locale.
    task_spawn_local: float = 2.0 * _US
    #: Spawning a task on a remote locale (an `on` statement / remote fork).
    task_spawn_remote: float = 6.0 * _US
    #: Joining a completed task group (charged once per construct).
    task_join: float = 1.0 * _US

    # -- Memory management -------------------------------------------------
    #: Allocating an object on the local heap.
    alloc_latency: float = 120 * _NS
    #: Freeing an object on the local heap.
    free_latency: float = 90 * _NS
    #: Marginal cost per object of a *bulk* free (amortized free-list ops);
    #: this is what the scatter list buys in `tryReclaim`.
    bulk_free_per_object: float = 25 * _NS

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every constant multiplied by ``factor``.

        Useful for sensitivity sweeps ("would the crossover move on a
        slower interconnect?") without editing individual fields.
        """
        fields: Dict[str, float] = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return CostModel(**fields)

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced.

        A thin, discoverable wrapper over :func:`dataclasses.replace`.
        """
        return replace(self, **overrides)


#: The default calibration used by every benchmark unless overridden.
DEFAULT_COSTS = CostModel()
