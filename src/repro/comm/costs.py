"""Latency / service-time constants for the simulated interconnect.

The reproduction does not try to match the absolute microsecond figures of
the paper's Cray XC-50; it matches the *ordering and separation* between
operation classes, which is what drives every curve in the evaluation:

``cpu atomic  <<  NIC (RDMA) atomic  <<  active message``

Three behaviours called out in the paper are encoded here explicitly:

* Under ``ugni`` (``CHPL_NETWORK_ATOMICS``), NIC atomics are **not
  coherent** with CPU atomics, so even locale-local atomic operations must
  go through the NIC — the paper measures this at "as much as an order of
  magnitude" over a CPU atomic.  Hence ``nic_atomic_local_latency`` is ~10x
  ``cpu_atomic_latency``.
* Without network atomics (``none``), a *remote* atomic demotes to an
  active message handled by the target locale's progress thread: higher
  latency and, crucially, a serial service point (see
  :class:`~repro.runtime.clock.ServicePoint`).
* A 128-bit DCAS is never an RDMA operation — it is either a local
  ``CMPXCHG16B`` or remote execution — so the ABA-protected paths always
  pay CPU/AM prices, exactly as the ``AtomicObject (ABA)`` series do in
  Figure 3.

All times are in **seconds** of virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional

__all__ = [
    "CostModel",
    "NETWORK_FIELDS",
    "DEFAULT_COSTS",
    "DEGRADED_COSTS",
    "WAN_COSTS",
    "COST_PROFILES",
    "resolve_cost_model",
]

#: One nanosecond, for readability of the constants below.
_NS = 1e-9
#: One microsecond.
_US = 1e-6

#: The *network-facing* cost fields: everything that models wire, NIC, or
#: progress-thread work (as opposed to CPU-side work, which is the same on
#: every link).  These are the fields a distance class's ``scale`` — and
#: the ``degraded`` profile — multiply; see
#: :meth:`CostModel.network_scaled` and :mod:`repro.comm.topology`.
NETWORK_FIELDS = (
    "nic_atomic_local_latency",
    "nic_atomic_remote_latency",
    "nic_atomic_service",
    "am_latency",
    "am_service",
    "am_batch_item_latency",
    "am_batch_item_service",
    "rdma_small_latency",
    "rdma_byte_cost",
    "rdma_service",
    "task_spawn_remote",
)


@dataclass(frozen=True)
class CostModel:
    """Virtual-time cost constants for every simulated operation class.

    Instances are immutable; use :meth:`scaled` or :func:`dataclasses.replace`
    to derive variants (e.g. a slower network for sensitivity studies).

    Attributes are grouped as ``*_latency`` (time charged to the issuing
    task) and ``*_service`` (time the contended resource — NIC pipeline or
    progress thread — is occupied; this is what serializes hot spots).
    """

    # -- CPU-side atomics (coherent, cache-line granularity) ------------
    #: Uncontended CPU atomic op (read/write/xchg/CAS on 64 bits).
    cpu_atomic_latency: float = 30 * _NS
    #: Exclusive cache-line occupancy per CPU atomic op.
    cpu_atomic_service: float = 15 * _NS
    #: CPU double-word (128-bit) CAS, e.g. CMPXCHG16B.
    cpu_dcas_latency: float = 60 * _NS
    #: Cache-line occupancy for a DCAS.
    cpu_dcas_service: float = 30 * _NS
    #: Plain (non-atomic) local load/store of a word or object field.
    cpu_load_latency: float = 2 * _NS

    # -- NIC-offloaded (RDMA) atomics: the `ugni` path -------------------
    #: NIC atomic issued against memory on the *same* locale.  Large on
    #: purpose: network atomics are not coherent, so local ops pay the NIC
    #: round trip too (paper: ~an order of magnitude over a CPU atomic).
    nic_atomic_local_latency: float = 400 * _NS
    #: NIC atomic against a remote locale (the paper's "ballpark of mere
    #: microseconds").
    nic_atomic_remote_latency: float = 1.1 * _US
    #: NIC pipeline occupancy per atomic; small because Aries pipelines
    #: network atomics aggressively.
    nic_atomic_service: float = 60 * _NS

    # -- Active messages (remote execution; the `none` remote path) ------
    #: One-way software latency for an active message (includes injection,
    #: wire time, and handler dispatch at the target).
    am_latency: float = 4.0 * _US
    #: Progress-thread occupancy per AM at the target locale.  This is the
    #: term that makes AM-bound locales a scaling bottleneck.
    am_service: float = 700 * _NS
    #: Marginal latency per *additional* operation riding an aggregated
    #: active message (see :mod:`repro.comm.aggregation`): payload
    #: marshalling plus the handler's per-item work, far below a full
    #: ``am_latency`` round trip — that gap is the whole point of
    #: batching.
    am_batch_item_latency: float = 250 * _NS
    #: Marginal uplink/progress occupancy per additional aggregated item.
    am_batch_item_service: float = 80 * _NS

    # -- One-sided data movement (GET / PUT) -----------------------------
    #: Small-message one-sided read/write latency.
    rdma_small_latency: float = 1.4 * _US
    #: Per-byte cost of bulk one-sided transfers (~10 GB/s).
    rdma_byte_cost: float = 0.1 * _NS
    #: NIC occupancy per RDMA data operation.
    rdma_service: float = 80 * _NS

    # -- Tasking ----------------------------------------------------------
    #: Spawning one task on the current locale.
    task_spawn_local: float = 2.0 * _US
    #: Spawning a task on a remote locale (an `on` statement / remote fork).
    task_spawn_remote: float = 6.0 * _US
    #: Joining a completed task group (charged once per construct).
    task_join: float = 1.0 * _US

    # -- Memory management -------------------------------------------------
    #: Allocating an object on the local heap.
    alloc_latency: float = 120 * _NS
    #: Freeing an object on the local heap.
    free_latency: float = 90 * _NS
    #: Marginal cost per object of a *bulk* free (amortized free-list ops);
    #: this is what the scatter list buys in `tryReclaim`.
    bulk_free_per_object: float = 25 * _NS

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every constant multiplied by ``factor``.

        Useful for sensitivity sweeps ("would the crossover move on a
        slower interconnect?") without editing individual fields.
        """
        fields: Dict[str, float] = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return CostModel(**fields)

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with the given fields replaced.

        A thin, discoverable wrapper over :func:`dataclasses.replace`.
        """
        return replace(self, **overrides)

    def network_scaled(self, factor: float) -> "CostModel":
        """Return a copy with only :data:`NETWORK_FIELDS` multiplied.

        This is the per-distance-class axis of the cost model: a slower
        *link* changes wire/NIC/progress-thread terms but not CPU-side
        work.  ``factor == 1.0`` returns ``self`` unchanged (identity, so
        the flat topology's routes are built from the very same model
        object and stay bit-identical to the legacy compile).
        """
        if factor == 1.0:
            return self
        return replace(
            self,
            **{name: getattr(self, name) * factor for name in NETWORK_FIELDS},
        )


#: The default calibration used by every benchmark unless overridden.
DEFAULT_COSTS = CostModel()

#: A congested / degraded interconnect: every *network-facing* cost is 8x
#: the default while CPU-side work is unchanged.  This widens the gap
#: between the RDMA and active-message regimes — useful for asking whether
#: a design's crossover points are artifacts of the default calibration.
DEGRADED_COSTS = DEFAULT_COSTS.network_scaled(8.0)

#: A wide-area-style profile: latencies two orders of magnitude over the
#: defaults (bandwidth-ish terms only 10x), for "would this design survive
#: geo-distribution at all" sensitivity sweeps.
WAN_COSTS = DEFAULT_COSTS.with_overrides(
    nic_atomic_local_latency=DEFAULT_COSTS.nic_atomic_local_latency * 100,
    nic_atomic_remote_latency=DEFAULT_COSTS.nic_atomic_remote_latency * 100,
    nic_atomic_service=DEFAULT_COSTS.nic_atomic_service * 10,
    am_latency=DEFAULT_COSTS.am_latency * 100,
    am_service=DEFAULT_COSTS.am_service * 10,
    rdma_small_latency=DEFAULT_COSTS.rdma_small_latency * 100,
    rdma_byte_cost=DEFAULT_COSTS.rdma_byte_cost * 10,
    rdma_service=DEFAULT_COSTS.rdma_service * 10,
    task_spawn_remote=DEFAULT_COSTS.task_spawn_remote * 100,
)

#: Named calibrations a scenario spec can ask for by string.
COST_PROFILES: Dict[str, CostModel] = {
    "default": DEFAULT_COSTS,
    "degraded": DEGRADED_COSTS,
    "wan": WAN_COSTS,
}


def resolve_cost_model(
    profile: str = "default",
    *,
    scale: float = 1.0,
    class_scale: float = 1.0,
    overrides: Optional[Mapping[str, float]] = None,
) -> CostModel:
    """Build a :class:`CostModel` from a named profile + adjustments.

    ``profile`` picks a base from :data:`COST_PROFILES`; ``scale``
    multiplies every constant uniformly; ``class_scale`` is the
    per-distance-class axis — it multiplies only the network-facing
    fields (:data:`NETWORK_FIELDS`), which is how a topology's distance
    classes derive their link calibration from one base model; and
    ``overrides`` then replaces individual fields.  Unknown profile names
    or override fields raise ``ValueError`` listing the valid choices —
    this is the validation surface the declarative scenario specs lean
    on.
    """
    try:
        model = COST_PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown cost profile {profile!r}; expected one of"
            f" {sorted(COST_PROFILES)}"
        ) from None
    for label, factor in (("cost scale", scale), ("class scale", class_scale)):
        if (
            not isinstance(factor, (int, float))
            or isinstance(factor, bool)
            or factor <= 0
        ):
            raise ValueError(
                f"{label} must be a positive number, got {factor!r}"
            )
    if scale != 1.0:
        model = model.scaled(scale)
    if class_scale != 1.0:
        model = model.network_scaled(class_scale)
    if overrides:
        bad = sorted(set(overrides) - set(CostModel.__dataclass_fields__))
        if bad:
            raise ValueError(
                f"unknown cost override field(s) {bad}; valid fields are"
                f" {sorted(CostModel.__dataclass_fields__)}"
            )
        model = model.with_overrides(**overrides)
    return model
