"""``IntervalReclaimer``: interval-based reclamation (birth-era tagging).

The design point between EBR and hazard pointers (after Wen et al.'s
interval-based reclamation): readers announce a cheap per-region **birth
era** instead of per-pointer hazards, and retired objects carry their
**retire era**.  An object may be freed once every active reader began
*after* it was retired — a stalled reader only holds back the garbage
retired since its own birth, never the whole history:

* a single **global era** counter lives on the creating locale (the only
  distributed state, like EBR's global epoch), with one locale-private
  cached copy per locale (plain CPU atomics, like EBR's
  ``locale_epoch``);
* ``pin`` reads the local era cache and publishes it as the guard's
  birth era (two local CPU atomics, with the same publish/re-validate
  loop as EBR's pin); ``unpin`` clears it;
* ``defer_delete`` tags the address with the locale era (one local
  atomic read + one plain store);
* ``try_reclaim`` — root-driven, at phase boundaries, like every other
  scheme here — advances the global era (a CAS, single-setter), refreshes
  every locale's cache (remote stores), scans every guard's birth cell
  (remote reads), and frees all retirements tagged strictly before the
  minimum live birth era.

Contrast with EBR: the era *always* advances — there is no global scan
veto — so a guard pinned forever cannot freeze the epoch cycle; it merely
pins the reclamation horizon at its own birth era while everything older
keeps draining (``tests/test_reclaimers.py`` demonstrates exactly this
against EBR's behaviour).  Contrast with HP: no per-pointer protect
traffic and no validation re-reads, but garbage is bounded by reader
*intervals* rather than by a hard per-guard constant.

Era advancement must not race reader pins (the stale-cache asymmetry the
EpochManager's DESIGN.md §6b analyses for EBR applies here too), which is
why ``try_reclaim`` belongs to the root task at quiescent phase
boundaries — the same discipline the scenario workloads already follow
for every scheme.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..atomics.integer import AtomicUInt64
from ..comm.aggregation import BatchCounters
from ..runtime.context import current_context, maybe_context
from .protocol import GuardBase, ReclaimerBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["IntervalReclaimer"]


class _IBRGuard(GuardBase):
    """Per-task birth-era announcement + retired buffer."""

    __slots__ = ("birth", "_era_cache")

    def __init__(
        self, reclaimer: "IntervalReclaimer", locale_id: int, guard_id: int
    ) -> None:
        super().__init__(reclaimer, locale_id, guard_id)
        #: Era this guard entered its current region at; 0 = inactive.
        self.birth = AtomicUInt64(
            reclaimer._rt,
            locale_id,
            0,
            name=f"ibr{guard_id}@{locale_id}",
            opt_out=True,
        )
        #: The locale's era cache (shared by every guard on the locale).
        self._era_cache = reclaimer._locale_eras[locale_id]

    def pin(self) -> None:
        """Publish the birth era (EBR-style publish + re-validate loop)."""
        self._check_usable()
        cache = self._era_cache
        birth = self.birth
        era = cache.read()
        while True:
            birth.write(era)
            current = cache.read()
            if current == era:
                break
            era = current
        self._note_pin()
        self._pinned = True

    def unpin(self) -> None:
        """Clear the birth era (one local atomic store)."""
        self._check_usable()
        self.birth.write(0)
        self._pinned = False

    def _retire_tag(self) -> int:
        return self._era_cache.read()

    def _on_unregister(self) -> None:
        if self._pinned:
            self.birth.write(0)


class IntervalReclaimer(ReclaimerBase):
    """Interval-based reclamation manager.

    Parameters
    ----------
    runtime:
        The simulated machine.
    home:
        Locale holding the global era (defaults to the creating task's
        locale, locale 0 outside a task) — mirrors ``EpochManager``.
    """

    scheme = "ibr"

    def __init__(self, runtime: "Runtime", *, home: Optional[int] = None) -> None:
        super().__init__(runtime)
        if home is None:
            ctx = maybe_context()
            home = ctx.locale_id if ctx is not None else 0
        self.home = runtime.locale(home).id
        #: The authoritative era (a true network atomic, like EBR's
        #: global epoch: remote locales read and CAS it during reclaim).
        self._era = AtomicUInt64(
            runtime, self.home, 1, name=f"ibr_era@{self.home}"
        )
        #: Locale-private era caches (plain CPU atomics for pins/retires).
        self._locale_eras: List[AtomicUInt64] = [
            AtomicUInt64(
                runtime, lid, 1, name=f"ibr_era_cache@{lid}", opt_out=True
            )
            for lid in range(runtime.num_locales)
        ]

    # ------------------------------------------------------------------
    def _make_guard(self, locale_id: int, guard_id: int) -> _IBRGuard:
        return _IBRGuard(self, locale_id, guard_id)

    def current_era(self) -> int:
        """Cost-free read of the global era (tests only)."""
        return self._era.peek()

    def try_reclaim(self) -> bool:
        """Advance the era and free everything older than every reader.

        Root/phase-boundary discipline applies (module docstring).  The
        CAS keeps advancement single-owner when callers race: losers back
        off and return ``False`` without draining, like EBR's advance.
        """
        self._check_alive()
        ctx = current_context()
        self._reclaim_attempts += 1
        self._note_pending()
        # Epoch-policy gate (docs/POLICY.md): a deferral leaves the era
        # untouched — no CAS, no cache refresh, no birth scan.
        if self._policy_defers():
            self._policy_tick()
            return False
        era = self._era.read()
        if not self._era.compare_and_swap(era, era + 1):
            # CAS loser: another racer owns this advance (and its tick).
            return False
        new_era = era + 1
        guards = self._registered_guards()
        aggregator = self._rt.network.aggregator
        if aggregator.active:
            # Domain-ordered refresh + scan (docs/AGGREGATION.md): era
            # pushes to caches behind one shared uplink ride one batched
            # AM per window, and so do the birth-era reads.
            counters = BatchCounters()
            aggregator.write_cells(
                ctx,
                [(cache, new_era) for cache in self._locale_eras],
                counters,
            )
            births = aggregator.read_cells(
                ctx, [guard.birth for guard in guards], counters  # type: ignore[attr-defined]
            )
            self._note_batches(counters)
            min_birth: Optional[int] = None
            for b in births:
                if b and (min_birth is None or b < min_birth):
                    min_birth = b
        else:
            # Refresh every locale's cache (remote stores from the caller —
            # the fan-out a real implementation would piggyback on its scan).
            for cache in self._locale_eras:
                cache.write(new_era)
            # Scan the birth eras (remote atomic reads).
            min_birth = None
            for guard in guards:
                b = guard.birth.read()  # type: ignore[attr-defined]
                if b and (min_birth is None or b < min_birth):
                    min_birth = b
        horizon = new_era if min_birth is None else min_birth
        freed = self._drain_retired(guards, lambda entry: entry[1] >= horizon)
        if freed:
            self._reclaims += 1
        tr = self._tracer
        if tr is not None:
            tr.reclaim(
                "advance",
                self.scheme,
                ctx.clock.now,
                era=new_era,
                horizon=horizon,
                freed=freed,
            )
        self._policy_tick()
        return True

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["era"] = self._era.peek()
        return out
