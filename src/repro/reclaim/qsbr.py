"""``QSBRReclaimer``: quiescent-state-based reclamation.

The cheapest possible read side: ``pin``/``unpin`` publish **nothing** —
no epoch announcement, no hazard slot, zero virtual cost beyond the plain
program order a real compiler fence would impose.  Safety instead comes
from *quiescent states*: moments a task declares it holds no protected
references.  In this repository those moments are the natural ``forall``
phase boundaries — :meth:`QSBRReclaimer.phase_boundary` (called by the
workload drivers after each phase joins) marks every unpinned guard
quiescent at the current interval; a long-running task may also call
:meth:`_QSBRGuard.quiesce` itself.

Mechanics (the classic interval scheme, as in userspace RCU):

* the manager keeps a monotonically increasing **interval counter**
  (advanced only by ``try_reclaim`` — root-driven, like the workload
  discipline for EBR's ``tryReclaim``);
* each guard owns one local atomic word holding the last interval at
  which it was quiescent (initialized at registration — registering is
  itself a quiescent point);
* ``defer_delete`` tags the retired address with the current interval
  and appends to the guard-local buffer (one plain local store);
* ``try_reclaim`` reads every guard's announcement (remote guards cost
  an active message — the write-side scan), computes the minimum, frees
  every retirement tagged strictly before it, then advances the
  interval.

The liveness trade is the mirror image of the read-side win: one guard
that never passes a quiescent point blocks **all** reclamation (worse
than IBR, same failure mode as a stuck EBR pin), and garbage is unbounded
between quiescent points — which is exactly what the write-heavy
cross-scheme scenarios make visible in ``peak_pending``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from ..atomics.integer import AtomicUInt64
from ..comm.aggregation import BatchCounters
from ..errors import TokenStateError
from ..runtime.context import current_context, maybe_context
from .protocol import GuardBase, ReclaimerBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["QSBRReclaimer"]


class _QSBRGuard(GuardBase):
    """Per-task quiescence announcement + retired buffer."""

    __slots__ = ("seen",)

    def __init__(
        self, reclaimer: "QSBRReclaimer", locale_id: int, guard_id: int
    ) -> None:
        super().__init__(reclaimer, locale_id, guard_id)
        #: Last interval this guard was quiescent at.  Local announcements
        #: are plain CPU atomics (opt-out); the reclaim scan reads them
        #: remotely.  Registration is a quiescent point, so start current.
        self.seen = AtomicUInt64(
            reclaimer._rt,
            locale_id,
            reclaimer._interval,
            name=f"qsbr{guard_id}@{locale_id}",
            opt_out=True,
        )

    # pin/unpin: inherited zero-cost flag flips — the QSBR selling point.

    def quiesce(self) -> None:
        """Announce a quiescent state (one local atomic store).

        Contract: the guard must not be pinned — a quiescent state means
        "this task holds no protected references right now".
        """
        self._check_usable()
        if self._pinned:
            raise TokenStateError("cannot quiesce while pinned")
        self.seen.write(self._rec._interval)  # type: ignore[attr-defined]

    def _retire_tag(self) -> int:
        # Interval reads are plain Python loads: the counter only moves
        # at root-driven try_reclaim, never concurrently with workers
        # under the workload discipline.
        return self._rec._interval  # type: ignore[attr-defined]


class QSBRReclaimer(ReclaimerBase):
    """Quiescent-state-based reclamation manager."""

    scheme = "qsbr"

    def __init__(self, runtime: "Runtime") -> None:
        super().__init__(runtime)
        #: The global interval counter.  Plain int: advanced only inside
        #: ``try_reclaim`` (root-driven), read racily-but-harmlessly by
        #: workers tagging retirements.
        self._interval = 1

    # ------------------------------------------------------------------
    def _make_guard(self, locale_id: int, guard_id: int) -> _QSBRGuard:
        return _QSBRGuard(self, locale_id, guard_id)

    def phase_boundary(self) -> None:
        """Mark every unpinned guard quiescent (the ``forall`` join hook).

        Charged from the calling (root) task: announcing for a guard on
        another locale is a remote store — the bookkeeping a real QSBR
        runtime would have folded into each task's own loop, surfaced
        here at the phase boundary where the workload discipline puts it.
        """
        self._check_alive()
        interval = self._interval
        guards = [g for g in self._registered_guards() if not g._pinned]
        ctx = maybe_context()
        aggregator = self._rt.network.aggregator
        if ctx is None or not aggregator.active:
            for guard in guards:
                guard.seen.write(interval)  # type: ignore[attr-defined]
            return
        # Quiescence announcements destined for guards behind one shared
        # uplink ride one aggregated AM per window-sized batch.
        counters = BatchCounters()
        aggregator.write_cells(
            ctx,
            [(guard.seen, interval) for guard in guards],  # type: ignore[attr-defined]
            counters,
        )
        self._note_batches(counters)

    def try_reclaim(self) -> bool:
        """Free everything retired before the minimum quiescent interval.

        Never blocks: with a never-quiescing guard the minimum pins the
        horizon and the call simply frees nothing and returns ``False``.
        """
        self._check_alive()
        ctx = current_context()
        self._reclaim_attempts += 1
        self._note_pending()
        # Epoch-policy gate (docs/POLICY.md): a deferral skips the
        # announcement scan and leaves the interval unchanged, so guards'
        # quiescence marks stay comparable on the next attempt.
        if self._policy_defers():
            self._policy_tick()
            return False
        min_seen = self._interval
        guards = self._registered_guards()
        aggregator = self._rt.network.aggregator
        if aggregator.active:
            # The write-side scan, domain-ordered: same-uplink guards'
            # announcements are read in batches (docs/AGGREGATION.md).
            counters = BatchCounters()
            seen = aggregator.read_cells(
                ctx, [guard.seen for guard in guards], counters  # type: ignore[attr-defined]
            )
            self._note_batches(counters)
            for s in seen:
                if s < min_seen:
                    min_seen = s
        else:
            for guard in guards:
                s = guard.seen.read()  # type: ignore[attr-defined]
                if s < min_seen:
                    min_seen = s
        freed = self._drain_retired(guards, lambda entry: entry[1] >= min_seen)
        self._interval += 1
        if freed:
            self._reclaims += 1
        tr = self._tracer
        if tr is not None:
            tr.reclaim(
                "advance",
                self.scheme,
                ctx.clock.now,
                interval=self._interval,
                min_seen=min_seen,
                freed=freed,
            )
        self._policy_tick()
        return freed > 0

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["interval"] = self._interval
        return out
