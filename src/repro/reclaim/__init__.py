"""Pluggable memory reclamation: four schemes behind one guard protocol.

The paper's distributed epoch-based scheme
(:class:`~repro.core.epoch_manager.EpochManager`) used to be hard-wired
into every structure; this package makes it the *baseline* of a
comparative harness instead:

* :class:`EBRReclaimer` — the paper's EBR, adapted (bit-identical
  virtual-time behaviour; verified against the scenario baselines);
* :class:`HazardPointerReclaimer` — per-task hazard slots, bounded
  unreclaimed garbage, per-pointer ``protect``/``clear`` costs;
* :class:`QSBRReclaimer` — quiescent-state-based, the cheapest read side,
  explicit quiescent points at ``forall`` phase boundaries;
* :class:`IntervalReclaimer` — birth-era/retire-era interval tagging:
  eras advance past stalled readers.

Scheme selection threads through ``RuntimeConfig.reclaimer`` /
``ScenarioSpec`` (``reclaimer = "ebr" | "hp" | "qsbr" | "ibr"``) and the
``--reclaimer`` CLI flag; :func:`default_reclaimer` is the one shared
default-construction factory.  See docs/RECLAMATION.md for the protocol,
each scheme's cost model, and when to pick which.
"""

from .ebr import EBRReclaimer
from .hp import HazardPointerReclaimer
from .ibr import IntervalReclaimer
from .protocol import (
    RECLAIMER_SCHEMES,
    GuardBase,
    ReclaimerBase,
    default_reclaimer,
    make_reclaimer,
)
from .qsbr import QSBRReclaimer

__all__ = [
    "GuardBase",
    "ReclaimerBase",
    "RECLAIMER_SCHEMES",
    "make_reclaimer",
    "default_reclaimer",
    "EBRReclaimer",
    "HazardPointerReclaimer",
    "QSBRReclaimer",
    "IntervalReclaimer",
]
