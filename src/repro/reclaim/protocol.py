"""The shared guard protocol every reclamation scheme implements.

The paper's :class:`~repro.core.epoch_manager.EpochManager` was the only
reclamation scheme in the repository; this package turns it into the
*baseline* of a comparative harness.  Every scheme presents the same
lifecycle::

    rec   = make_reclaimer(rt, "hp")       # or "ebr" / "qsbr" / "ibr"
    guard = rec.register()                 # per-task, on the task's locale
    guard.pin()                            # enter a protected region
    addr  = guard.protect(addr)            # announce a pointer (HP only;
                                           # a free no-op elsewhere)
    guard.defer_delete(addr)               # retire a logically-removed obj
    guard.unpin()                          # leave the region
    rec.phase_boundary()                   # quiescent point (forall join)
    rec.try_reclaim()                      # attempt to free retired objs
    rec.clear(); rec.destroy()             # quiescent teardown

Two halves:

* :class:`ReclaimerBase` — the manager: guard registry, retirement
  accounting, ``try_reclaim`` / ``clear`` / ``destroy`` / ``stats``.
* :class:`GuardBase` — the per-task handle: locale-bound like the EBR
  :class:`~repro.core.token.Token` (whose public surface it mirrors
  exactly, so the two are interchangeable anywhere a "token" is taken).

Protocol contracts (enforced, and covered by the conformance tests in
``tests/test_reclaimers.py``):

* ``defer_delete`` requires a pinned guard (:class:`TokenStateError`
  otherwise — *unguarded-access detection*);
* every manager entry point raises :class:`ReclaimerError` after
  ``destroy()`` (*use-after-destroy*);
* retiring the same address twice is not masked: the double free surfaces
  as :class:`~repro.errors.DoubleFreeError` when the object is physically
  reclaimed (*double-retire*);
* ``clear`` and ``destroy`` require caller-guaranteed quiescence, exactly
  as ``EpochManager.clear`` does;
* ``try_reclaim`` never blocks: a scheme that cannot make progress
  returns ``False``.

Determinism discipline: like EBR's ``tryReclaim``, the manager-level
``phase_boundary()`` / ``try_reclaim()`` pair is meant to run from the
root task at ``forall`` phase boundaries; guard-level ``try_reclaim`` is
allowed anywhere but its scan outcome may then depend on concurrent
hazard/quiescence state (see the determinism notes in
:mod:`repro.bench.workloads`).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..comm.aggregation import BatchCounters
from ..errors import ReclaimerError, TokenStateError
from ..memory.address import GlobalAddress
from ..runtime.config import RECLAIMER_SCHEMES
from ..runtime.context import _tls as _context_tls
from ..runtime.context import current_context, maybe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = [
    "GuardBase",
    "ReclaimerBase",
    "RECLAIMER_SCHEMES",
    "make_reclaimer",
    "default_reclaimer",
]


class GuardBase:
    """Per-task reclamation handle (the scheme-generic half of a Token).

    Subclasses supply the scheme's ``pin`` / ``unpin`` / retirement
    behaviour; the base class carries the registration/locale bookkeeping
    and the retired list shared by the list-based schemes (HP/QSBR/IBR).
    EBR's :class:`~repro.core.token.Token` does *not* inherit from this
    class — it predates it and must stay bit-identical — but exposes the
    same surface, which the conformance tests pin down.
    """

    #: True when the scheme requires per-pointer ``protect`` announcements
    #: (hazard pointers).  Structures consult this flag so the EBR path
    #: carries zero additional virtual cost.
    needs_protect = False

    __slots__ = (
        "_rec",
        "locale_id",
        "guard_id",
        "_registered",
        "_pinned",
        "_retired",
        "_retired_lock",
        "_last_pin_vt",
    )

    def __init__(self, reclaimer: "ReclaimerBase", locale_id: int, guard_id: int) -> None:
        self._rec = reclaimer
        self.locale_id = locale_id
        self.guard_id = guard_id
        self._registered = True
        self._pinned = False
        #: Guard-local retirement buffer: (address, tag) pairs.  Appended
        #: by the owning task; drained by reclaim calls.  The (real)
        #: lock costs no virtual time — it exists so a mid-phase
        #: guard-level ``try_reclaim`` racing another guard's
        #: ``defer_delete`` can never lose an entry or drain one twice
        #: (outcomes may still be nondeterministic mid-phase; see the
        #: module docstring's discipline notes).
        self._retired: List[Tuple[GlobalAddress, int]] = []
        self._retired_lock = threading.Lock()
        #: Virtual time of the most recent pin (docs/POLICY.md): recorded
        #: only while a pin-tracking (grace) policy is installed, written
        #: by the owning task only, max-folded by the root at decision
        #: points.
        self._last_pin_vt: "float | None" = None

    # ------------------------------------------------------------------
    def _check_usable(self) -> None:
        if not self._registered:
            raise TokenStateError("guard has been unregistered")
        try:
            ctx = _context_tls.ctx
        except AttributeError:
            ctx = None
        if ctx is None:
            ctx = current_context()
        if ctx.locale_id != self.locale_id:
            raise TokenStateError(
                f"guard registered on locale {self.locale_id} used from"
                f" locale {ctx.locale_id}; register per-task on each locale"
            )

    def _charge_local_load(self) -> None:
        """Charge one plain local load/store (the retire-buffer append)."""
        current_context().clock.advance(self._rec._costs.cpu_load_latency)

    @property
    def is_registered(self) -> bool:
        """True until :meth:`unregister` is called."""
        return self._registered

    @property
    def is_pinned(self) -> bool:
        """Cost-free pinned check (tests / assertions)."""
        return self._pinned

    # ------------------------------------------------------------------
    # the protected-region protocol
    # ------------------------------------------------------------------
    def _note_pin(self) -> None:
        """Record the pin's virtual timestamp when a policy wants it.

        One cached-bool branch per pin for every non-tracking policy;
        the store itself is thread-private (the owning task is the only
        writer) and costs zero virtual time — it is a *fact*, not an
        operation.
        """
        rec = self._rec
        if rec._track_pins:
            self._last_pin_vt = current_context().clock.now
        tr = rec._full
        if tr is not None:
            tr.guard("pin", rec.scheme, current_context().clock.now)

    def pin(self) -> None:
        """Enter a protected region (scheme-specific announcement cost)."""
        self._check_usable()
        self._note_pin()
        self._pinned = True

    def unpin(self) -> None:
        """Leave the protected region (become quiescent-eligible)."""
        self._check_usable()
        self._pinned = False

    def protect(self, addr: GlobalAddress, slot: int = 0) -> GlobalAddress:
        """Announce intent to dereference ``addr`` (no-op by default).

        Hazard-pointer guards override this with a real (charged) slot
        publication; every other scheme's region-based protection makes it
        free, which is exactly the read-side cost difference the
        cross-scheme scenarios measure.  Returns ``addr`` for chaining.
        """
        return addr

    def defer_delete(self, addr: GlobalAddress) -> None:
        """Retire a logically-removed object for deferred reclamation."""
        self._check_usable()
        if not self._pinned:
            raise TokenStateError("defer_delete requires a pinned guard")
        self._charge_local_load()
        rec = self._rec
        if rec._track_ages:
            # Limbo-age tracking (an age-reading policy or full tracing):
            # the entry carries its retire timestamp as a third element.
            # Every consumer indexes entries, so both shapes coexist.
            now = current_context().clock.now
            entry: Tuple = (addr, self._retire_tag(), now)
        else:
            entry = (addr, self._retire_tag())
        with self._retired_lock:
            self._retired.append(entry)
        tr = rec._full
        if tr is not None:
            tr.guard("retire", rec.scheme, now)
        self._after_retire()

    # Chapel-style alias, matching Token.
    deferDelete = defer_delete

    def _retire_tag(self) -> int:
        """The scheme-specific tag stored with a retired address."""
        return 0

    def _after_retire(self) -> None:
        """Hook run after each retirement (HP's threshold scan)."""

    def try_reclaim(self) -> bool:
        """Attempt reclamation (defers to the manager by default)."""
        self._check_usable()
        return self._rec.try_reclaim()

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    def unregister(self) -> None:
        """Release the guard (idempotent).

        Outstanding retirements are handed to the manager so a guard's
        death never leaks memory — they free at the next ``try_reclaim``
        or ``clear`` like any other retired object.
        """
        if not self._registered:
            return
        self._on_unregister()
        self._pinned = False
        self._registered = False
        with self._retired_lock:
            entries, self._retired = self._retired, []
        if entries:
            self._rec._adopt_orphans(entries)

    def _on_unregister(self) -> None:
        """Scheme hook: clear announcements before the guard goes away."""

    def close(self) -> None:
        """Alias for :meth:`unregister`; hooks ``forall`` task cleanup."""
        self.unregister()

    def __enter__(self) -> "GuardBase":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.unregister()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(id={self.guard_id},"
            f" locale={self.locale_id}, pinned={self._pinned},"
            f" registered={self._registered})"
        )


class ReclaimerBase:
    """Manager half of the guard protocol (registry + accounting).

    Subclasses implement ``_guard_class`` construction via
    :meth:`_make_guard` and the scheme's :meth:`try_reclaim`.  The retired
    lists live on the guards; the manager owns the registry, the orphan
    list (retirements of unregistered guards), and the free machinery.
    """

    #: Scheme name as accepted by :func:`make_reclaimer` / config.
    scheme = "base"

    def __init__(self, runtime: "Runtime", *, policy: Any = None) -> None:
        from ..policy import parse_policy

        self._rt = runtime
        self._costs = runtime.config.costs
        self._destroyed = False
        # The epoch-advance policy (docs/POLICY.md): gates the root-driven
        # ``try_reclaim`` of every list-based scheme on virtual-time
        # facts.  ``None`` resolves the runtime's configured policy axis.
        policy_spec = (
            runtime.config.resolved_policy()
            if policy is None
            else parse_policy(policy)
        )
        self.policy = policy_spec.make_epoch_policy()
        self._track_pins = self.policy.wants_pin_times
        # Flight-recorder hooks (docs/OBSERVABILITY.md): the spans-level
        # recorder carries policy decisions and root-driven reclaim
        # summaries; the full-detail one adds guard pin/retire events and
        # limbo-age histograms.  Both are None when tracing is off.
        self._tracer = getattr(runtime, "_tracer", None)
        self._full = getattr(runtime, "_full_tracer", None)
        #: Retire timestamps ride the retired entries only when the policy
        #: consumes limbo ages or full tracing is on — the stock policies
        #: pay zero per-retire work.
        self._track_ages = (
            self.policy.wants_retire_times or self._full is not None
        )
        #: Shared-uplink batch crossings folded per distance class — the
        #: :attr:`~repro.policy.EpochFacts.crossings` policy input.
        self._crossings_by_class: Dict[int, int] = {}
        self._guards: List[GuardBase] = []
        self._registry_lock = threading.Lock()
        self._guard_seq = 0
        #: Retirements inherited from unregistered guards.
        self._orphans: List[Tuple[GlobalAddress, int]] = []
        self._orphan_lock = threading.Lock()
        # Accounting (updated at root-driven reclaim points, so the values
        # are deterministic under the workload discipline).
        self._freed = 0
        self._peak_pending = 0
        self._reclaim_attempts = 0
        self._reclaims = 0
        # Uplink-aggregation diagnostics (docs/AGGREGATION.md): batched
        # messages issued and shared-uplink traversals paid by this
        # scheme's scan/free paths.  Zero with aggregation off or on a
        # flat machine.
        self._scan_batches = 0
        self._uplink_crossings = 0

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self._destroyed:
            raise ReclaimerError(
                f"{type(self).__name__} used after destroy()"
            )

    def register(self) -> GuardBase:
        """Obtain a guard on the calling task's locale."""
        self._check_alive()
        locale_id = current_context().locale_id
        with self._registry_lock:
            gid = self._guard_seq
            self._guard_seq += 1
        guard = self._make_guard(locale_id, gid)
        with self._registry_lock:
            self._guards.append(guard)
        return guard

    def _make_guard(self, locale_id: int, guard_id: int) -> GuardBase:
        raise NotImplementedError

    def _registered_guards(self) -> List[GuardBase]:
        """Registry snapshot (wall-clock lock only; zero virtual cost)."""
        with self._registry_lock:
            return [g for g in self._guards if g._registered]

    def _adopt_orphans(self, entries: List[Tuple[GlobalAddress, int]]) -> None:
        with self._orphan_lock:
            self._orphans.extend(entries)

    # ------------------------------------------------------------------
    # reclamation
    # ------------------------------------------------------------------
    def phase_boundary(self) -> None:
        """Declare a quiescent point (``forall`` join).  Default: no-op.

        QSBR overrides this to mark every unpinned guard quiescent — its
        explicit quiescent-state announcements happen here, at phase
        boundaries, rather than per operation.
        """
        self._check_alive()

    def try_reclaim(self) -> bool:
        """Attempt to free retired objects; never blocks."""
        raise NotImplementedError

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    # the epoch-advance policy gate (docs/POLICY.md)
    # ------------------------------------------------------------------
    def _policy_defers(self) -> bool:
        """True when the policy defers this reclaim attempt (cost-free).

        The default ``fixed`` policy short-circuits without computing
        facts, so the legacy paths stay bit-identical.  Schemes call this
        at the top of their root-driven ``try_reclaim`` — a deferral
        skips the whole scan/drain pipeline and charges nothing.
        """
        pol = self.policy
        if pol.always_advance:
            return False
        facts = self._policy_facts()
        advance = pol.decide(facts)
        tr = self._tracer
        if tr is not None:
            tr.policy_decision(
                pol.kind,
                "advance" if advance else "defer",
                facts.now,
                facts.as_dict(),
            )
        return not advance

    def _policy_facts(self):
        """Cost-free :class:`~repro.policy.EpochFacts` snapshot.

        Per-locale pending counts fold the registered guards' buffer
        lengths (exact at root decision points — workers are joined);
        orphaned retirements append one trailing entry.  The last-pin
        timestamp max-folds the per-guard records, which only exist while
        a pin-tracking policy is installed.
        """
        from ..policy import EpochFacts

        per_locale: Dict[int, int] = {}
        last_pin: "float | None" = None
        oldest: "float | None" = None
        want_pins = self.policy.wants_pin_times
        want_ages = self._track_ages
        for guard in self._registered_guards():
            per_locale[guard.locale_id] = per_locale.get(
                guard.locale_id, 0
            ) + len(guard._retired)
            if want_pins:
                t = guard._last_pin_vt
                if t is not None and (last_pin is None or t > last_pin):
                    last_pin = t
            if want_ages:
                with guard._retired_lock:
                    for entry in guard._retired:
                        if len(entry) > 2 and (oldest is None or entry[2] < oldest):
                            oldest = entry[2]
        pending = [per_locale[lid] for lid in sorted(per_locale)]
        with self._orphan_lock:
            orphans = len(self._orphans)
            if want_ages:
                for entry in self._orphans:
                    if len(entry) > 2 and (oldest is None or entry[2] < oldest):
                        oldest = entry[2]
        if orphans:
            pending.append(orphans)
        cbc = self._crossings_by_class
        crossings = (
            tuple(cbc.get(i, 0) for i in range(max(cbc) + 1)) if cbc else ()
        )
        ctx = maybe_context()
        now = ctx.clock.now if ctx is not None else 0.0
        return EpochFacts(
            now=now,
            pending=tuple(pending),
            last_pin=last_pin,
            crossings=crossings,
            oldest_retire=oldest,
        )

    def _policy_tick(self) -> None:
        """Window-policy tick at this sequential reclaim point."""
        self._rt.network.aggregator.policy_tick()

    def quiesce_check(self) -> None:
        """Hook before clear/destroy; subclasses may sanity-check state."""

    def _drain_retired(self, guards: List["GuardBase"], keep) -> int:
        """Drain ``guards``' buffers plus the orphans and free the rest.

        The one shared partition-and-free pipeline every scheme's reclaim
        path runs: entries satisfying ``keep(entry)`` stay buffered (a
        hazard names them / their tag is too recent), everything else is
        bulk-freed by owning locale.  ``keep=None`` frees unconditionally
        (the ``clear`` contract).  Buffer swaps happen under the per-guard
        locks so a racing ``defer_delete`` can never be lost.
        """
        to_free: List[Tuple[GlobalAddress, int]] = []
        for guard in guards:
            with guard._retired_lock:
                if keep is None:
                    to_free.extend(guard._retired)
                    guard._retired = []
                else:
                    kept = []
                    for entry in guard._retired:
                        if keep(entry):
                            kept.append(entry)
                        else:
                            to_free.append(entry)
                    guard._retired = kept
        with self._orphan_lock:
            orphans = self._orphans
            self._orphans = []
        if keep is None:
            to_free.extend(orphans)
        else:
            kept_orphans = [e for e in orphans if keep(e)]
            to_free.extend(e for e in orphans if not keep(e))
            if kept_orphans:
                self._adopt_orphans(kept_orphans)
        freed = self._free_entries(to_free)
        tr = self._full
        if tr is not None and to_free:
            self._emit_free_event(tr, to_free, freed)
        return freed

    def _emit_free_event(self, tr, entries, freed: int) -> None:
        """Full-detail ``reclaim free`` event with the limbo-age histogram
        of the freed entries (docs/OBSERVABILITY.md).  Ages exist exactly
        when the entries carry retire timestamps (``_track_ages``)."""
        from ..obs import age_bucket

        ctx = maybe_context()
        now = ctx.clock.now if ctx is not None else 0.0
        buckets: Dict[int, int] = {}
        ages = 0
        age_max = 0.0
        for entry in entries:
            if len(entry) > 2:
                age = now - entry[2]
                b = age_bucket(age)
                buckets[b] = buckets.get(b, 0) + 1
                ages += 1
                if age > age_max:
                    age_max = age
        fields: Dict[str, Any] = {"freed": freed, "count": len(entries)}
        if ages:
            fields["age_buckets"] = buckets
            fields["ages_count"] = ages
            fields["age_max"] = age_max
        tr.reclaim("free", self.scheme, now, **fields)

    def clear(self) -> int:
        """Free *everything* retired, unconditionally.

        Contract (same as ``EpochManager.clear``): the caller guarantees
        no other task is interacting with the reclaimer.
        """
        self._check_alive()
        self._note_pending()
        freed = self._drain_retired(self._registered_guards(), None)
        tr = self._tracer
        if tr is not None:
            ctx = maybe_context()
            tr.reclaim(
                "clear",
                self.scheme,
                ctx.clock.now if ctx is not None else 0.0,
                freed=freed,
            )
        # ``clear`` is a sequential quiescent point by contract — a valid
        # window-policy tick site (no-op for static windows).
        self._policy_tick()
        return freed

    def destroy(self) -> None:
        """Reclaim all remaining objects and retire the manager."""
        if self._destroyed:
            return
        self.clear()
        with self._registry_lock:
            for guard in self._guards:
                guard._registered = False
            self._guards = []
        self._destroyed = True

    # ------------------------------------------------------------------
    # shared free machinery
    # ------------------------------------------------------------------
    def _free_entries(self, entries: List[Tuple[GlobalAddress, int]]) -> int:
        """Free the given (address, tag) entries, bulk-grouped by locale.

        Mirrors the EpochManager's scatter-list economics: one bulk free
        per owning locale instead of one RPC per object — and, with the
        aggregation window open, one *uplink crossing* per window-sized
        batch of same-node target locales instead of one RPC crossing per
        locale (:mod:`repro.comm.aggregation`; the per-locale amortized
        free costs are unchanged).
        """
        if not entries:
            return 0
        by_locale: Dict[int, List[int]] = {}
        for entry in entries:
            addr = entry[0]
            by_locale.setdefault(addr.locale, []).append(addr.offset)
        ctx = maybe_context()
        if ctx is None:
            # No task context (pure-semantics tests): plain per-locale
            # bulk frees, uncharged by construction.
            freed = 0
            for lid in sorted(by_locale):
                freed += self._rt.free_bulk(lid, by_locale[lid])
        else:
            counters = BatchCounters()
            freed = self._rt.network.aggregator.free_grouped(
                self._rt, ctx, by_locale, counters
            )
            self._note_batches(counters)
        self._freed += freed
        return freed

    def _note_batches(self, counters: BatchCounters) -> None:
        """Fold one aggregated operation's tallies into the stats."""
        if counters.batches:
            self._scan_batches += counters.batches
            self._uplink_crossings += counters.crossings
            by_class = counters.by_class
            if by_class:
                # Per-distance-class crossing facts (EpochFacts.crossings):
                # only classes that actually traverse a shared uplink count.
                classes = self._rt.network.topology.classes
                fold = self._crossings_by_class
                for dclass, n in by_class.items():
                    if classes[dclass].shared_uplink:
                        fold[dclass] = fold.get(dclass, 0) + n

    def _note_pending(self) -> None:
        """Sample pending garbage into the peak counter (cost-free)."""
        pending = self.pending_count()
        if pending > self._peak_pending:
            self._peak_pending = pending

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Cost-free count of retired-but-unfreed objects (tests/stats)."""
        with self._registry_lock:
            pending = sum(len(g._retired) for g in self._guards)
        with self._orphan_lock:
            pending += len(self._orphans)
        return pending

    def _retired_total(self) -> int:
        """Total retirements ever (freed + still pending; cost-free)."""
        return self._freed + self.pending_count()

    def stats(self) -> Dict[str, Any]:
        """Normalized counters; every scheme reports at least these keys.

        ``retired`` / ``freed`` / ``pending`` / ``peak_pending`` are the
        cross-scheme comparison columns in the scenario JSON report;
        ``reclaim_attempts`` / ``objects_reclaimed`` keep the shape of the
        historical EpochManager stats dict.
        """
        return {
            "scheme": self.scheme,
            "retired": self._retired_total(),
            "freed": self._freed,
            "pending": self.pending_count(),
            "peak_pending": self._peak_pending,
            "reclaim_attempts": self._reclaim_attempts,
            "objects_reclaimed": self._freed,
            "reclaims": self._reclaims,
            "scan_batches": self._scan_batches,
            "uplink_crossings": self._uplink_crossings,
            # Policy diagnostics (docs/POLICY.md): the epoch half's spec
            # and deferral count, and the window policy's live window.
            "policy": self.policy.spec(),
            "policy_deferrals": self.policy.deferrals,
            "window": self._rt.network.aggregator.window,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(freed={self._freed}, pending={self.pending_count()})"


def make_reclaimer(runtime: "Runtime", scheme: str = "ebr", **kwargs: Any):
    """Construct a reclaimer by scheme name (``"ebr"|"hp"|"qsbr"|"ibr"``).

    ``kwargs`` pass through to the scheme constructor (e.g. EBR's ablation
    knobs ``use_election``/``use_scatter``, HP's ``scan_threshold``).
    """
    from .ebr import EBRReclaimer
    from .hp import HazardPointerReclaimer
    from .ibr import IntervalReclaimer
    from .qsbr import QSBRReclaimer

    classes = {
        "ebr": EBRReclaimer,
        "hp": HazardPointerReclaimer,
        "qsbr": QSBRReclaimer,
        "ibr": IntervalReclaimer,
    }
    try:
        cls = classes[scheme]
    except KeyError:
        raise ReclaimerError(
            f"unknown reclaimer scheme {scheme!r}; expected one of"
            f" {list(RECLAIMER_SCHEMES)}"
        ) from None
    return cls(runtime, **kwargs)


def default_reclaimer(runtime: "Runtime", **kwargs: Any):
    """The one shared default-reclaimer factory.

    Replaces the per-structure ``manager if manager is not None else
    EpochManager(runtime)`` copy-paste: structures (and anything else that
    wants "whatever this machine is configured for") call this and get the
    scheme selected by ``runtime.config.reclaimer`` (default: the paper's
    EBR).
    """
    return make_reclaimer(runtime, runtime.config.reclaimer, **kwargs)
