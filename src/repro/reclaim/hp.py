"""``HazardPointerReclaimer``: per-task hazard-pointer reclamation.

Michael's hazard pointers, mapped onto the simulated PGAS machine:

* every guard owns ``slots_per_guard`` **hazard slots** — 64-bit atomic
  words on the guard's locale holding compressed wide pointers (0 =
  empty).  They are opted out of network atomics (the owner publishes
  with plain CPU atomics — the cheap store+fence of real HP), so
  ``protect``/``clear`` cost one local CPU atomic each through the
  precompiled routes in :mod:`repro.comm.routes`; a *remote* scanner
  reading them pays the active-message price, which is precisely HP's
  distributed-memory weakness the cross-scheme scenarios expose;
* ``protect(addr, slot)`` publishes ``addr`` to a slot and returns it;
  callers must re-validate their source pointer afterwards (the
  structures in :mod:`repro.structures` do this when
  ``guard.needs_protect`` is set — the standard HP protect/validate
  handshake);
* ``defer_delete`` appends to a guard-local retired buffer; when the
  buffer reaches ``scan_threshold`` the guard **scans**: it reads every
  registered guard's slots, frees the retired objects no slot protects
  (bulk-grouped by owning locale), and keeps the rest.

The payoff relative to epoch-based schemes is the *bounded garbage*
guarantee: a guard's unreclaimed retirements never exceed
``scan_threshold`` plus the number of live hazard slots machine-wide,
regardless of stalled tasks — a stalled (even pinned) guard only holds
back the specific addresses its slots name.  The price is the scan
(remote reads proportional to guards x slots) and the per-pointer
protect traffic on the read side.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Set

from ..atomics.integer import AtomicUInt64
from ..comm.aggregation import BatchCounters
from ..errors import TokenStateError
from ..memory.address import GlobalAddress, is_nil
from ..memory.compression import COMPRESSED_NIL, compress
from ..runtime.context import current_context
from .protocol import GuardBase, ReclaimerBase

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["HazardPointerReclaimer"]


class _HPGuard(GuardBase):
    """One task's hazard slots + retired buffer."""

    needs_protect = True

    __slots__ = ("slots", "_occupied")

    def __init__(
        self, reclaimer: "HazardPointerReclaimer", locale_id: int, guard_id: int
    ) -> None:
        super().__init__(reclaimer, locale_id, guard_id)
        rt = reclaimer._rt
        self.slots: List[AtomicUInt64] = [
            AtomicUInt64(
                rt,
                locale_id,
                COMPRESSED_NIL,
                name=f"hp{guard_id}.{k}@{locale_id}",
                opt_out=True,
            )
            for k in range(reclaimer.slots_per_guard)
        ]
        #: Owner-local shadow of which slots hold a hazard, so ``unpin``
        #: only pays a (charged) clearing store for slots actually used.
        self._occupied = [False] * reclaimer.slots_per_guard

    # ------------------------------------------------------------------
    def protect(self, addr: GlobalAddress, slot: int = 0) -> GlobalAddress:
        """Publish ``addr`` in hazard ``slot`` (one local atomic store).

        The caller must re-read its source pointer afterwards and retry
        if it changed — publication alone does not prove the object was
        still reachable when the hazard became visible.
        """
        self._check_usable()
        if not self._pinned:
            raise TokenStateError("protect requires a pinned guard")
        word = COMPRESSED_NIL if is_nil(addr) else compress(addr)
        self.slots[slot].write(word)
        self._occupied[slot] = word != COMPRESSED_NIL
        return addr

    def clear_protection(self, slot: int = 0) -> None:
        """Drop the hazard in ``slot`` (one local atomic store)."""
        self._check_usable()
        if self._occupied[slot]:
            self.slots[slot].write(COMPRESSED_NIL)
            self._occupied[slot] = False

    def unpin(self) -> None:
        """Leave the region: clear every occupied slot, then unpin."""
        self._check_usable()
        for k, occupied in enumerate(self._occupied):
            if occupied:
                self.slots[k].write(COMPRESSED_NIL)
                self._occupied[k] = False
        self._pinned = False

    def _on_unregister(self) -> None:
        for k, occupied in enumerate(self._occupied):
            if occupied:
                self.slots[k].write(COMPRESSED_NIL)
                self._occupied[k] = False

    # ------------------------------------------------------------------
    def _after_retire(self) -> None:
        rec: "HazardPointerReclaimer" = self._rec  # type: ignore[assignment]
        if len(self._retired) >= rec.scan_threshold:
            rec._scan([self])

    def try_reclaim(self) -> bool:
        """Scan now, for this guard's retired buffer only."""
        self._check_usable()
        rec: "HazardPointerReclaimer" = self._rec  # type: ignore[assignment]
        return rec._scan([self]) > 0

    # Re-bind the Chapel-style alias to the override (the inherited name
    # would still point at GuardBase.try_reclaim — the manager-wide scan).
    tryReclaim = try_reclaim


class HazardPointerReclaimer(ReclaimerBase):
    """Hazard-pointer reclamation manager.

    Parameters
    ----------
    runtime:
        The simulated machine.
    slots_per_guard:
        Hazard slots per guard (default 4 — enough for the hand-over-hand
        traversals in :mod:`repro.structures`).
    scan_threshold:
        Retired-buffer length that triggers a guard's scan (default 128).
        Lower bounds garbage tighter but scans — and their remote slot
        reads — more often.
    """

    scheme = "hp"

    def __init__(
        self,
        runtime: "Runtime",
        *,
        slots_per_guard: int = 4,
        scan_threshold: int = 128,
    ) -> None:
        if slots_per_guard < 1:
            raise ValueError(
                f"slots_per_guard must be >= 1, got {slots_per_guard}"
            )
        if scan_threshold < 1:
            raise ValueError(
                f"scan_threshold must be >= 1, got {scan_threshold}"
            )
        super().__init__(runtime)
        self.slots_per_guard = int(slots_per_guard)
        self.scan_threshold = int(scan_threshold)
        self._scans = 0

    # ------------------------------------------------------------------
    def _make_guard(self, locale_id: int, guard_id: int) -> _HPGuard:
        return _HPGuard(self, locale_id, guard_id)

    def _hazard_set(self) -> Set[int]:
        """Read every registered guard's slots (charged atomic reads).

        Local slots cost a CPU atomic apiece; slots on other locales pay
        the active-message round trip — the scan is where HP's costs
        concentrate on distributed memory.  With the aggregation window
        open on a multi-level topology, slots of guards behind the same
        shared uplink are read in window-sized batches — one uplink
        traversal per batch instead of one AM round trip per slot — the
        domain-ordered scan of docs/AGGREGATION.md.  Outcomes are
        unchanged: the same words are observed, only the message count
        (and with it the charged time) drops.
        """
        cells = [
            cell
            for guard in self._registered_guards()
            for cell in guard.slots
        ]
        aggregator = self._rt.network.aggregator
        if aggregator.active:
            counters = BatchCounters()
            words = aggregator.read_cells(current_context(), cells, counters)
            self._note_batches(counters)
        else:
            words = [cell.read() for cell in cells]
        return {word for word in words if word != COMPRESSED_NIL}

    def _scan(self, guards: List[_HPGuard], *, global_sample: bool = False) -> int:
        """Scan hazards and free the unprotected retirements of ``guards``.

        Also drains the orphan list (retirements whose guard has
        unregistered) — orphans have no announcing task left, so only a
        live hazard can keep them.

        ``global_sample`` controls the peak-pending bookkeeping: the
        machine-wide sample is only meaningful (and only deterministic)
        from quiescent root calls; a guard's own mid-phase threshold
        scan samples just the buffers it is about to drain — other
        guards' buffers are concurrently mutating, and reading their
        lengths would make the reported peak depend on real-thread
        interleaving.
        """
        self._check_alive()
        self._reclaim_attempts += 1
        if global_sample:
            self._note_pending()
        else:
            pending = sum(len(g._retired) for g in guards)
            if pending > self._peak_pending:
                self._peak_pending = pending
        hazards = self._hazard_set()
        freed = self._drain_retired(
            guards, lambda entry: compress(entry[0]) in hazards
        )
        self._scans += 1
        if freed:
            self._reclaims += 1
        return freed

    def try_reclaim(self) -> bool:
        """Scan on behalf of *every* guard (root / phase-boundary use)."""
        ctx = current_context()  # protocol parity: requires a task context
        # Epoch-policy gate (docs/POLICY.md): a deferral skips the scan —
        # and with it every remote hazard read — entirely.  Guard-local
        # threshold scans (``_after_retire``) are NOT gated: they are HP's
        # bounded-garbage guarantee, not a cadence choice.
        if self._policy_defers():
            self._reclaim_attempts += 1
            self._policy_tick()
            return False
        freed = self._scan(
            self._registered_guards(), global_sample=True  # type: ignore[arg-type]
        )
        tr = self._tracer
        if tr is not None:
            # Root-driven summary (docs/OBSERVABILITY.md); guard-local
            # threshold scans are worker-driven and stay un-summarized.
            tr.reclaim("scan", self.scheme, ctx.clock.now, freed=freed)
        self._policy_tick()
        return freed > 0

    tryReclaim = try_reclaim

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out.update(
            scans=self._scans,
            slots_per_guard=self.slots_per_guard,
            scan_threshold=self.scan_threshold,
        )
        return out
