"""``EBRReclaimer``: the paper's EpochManager behind the guard protocol.

A *pure adapter*: every protocol method delegates straight to the wrapped
:class:`~repro.core.epoch_manager.EpochManager`, and ``register()`` hands
back the manager's own :class:`~repro.core.token.Token` (which already
satisfies the guard surface — ``pin`` / ``unpin`` / ``defer_delete`` /
``protect`` (a free no-op) / ``try_reclaim`` / ``unregister``).  The
adapter therefore charges **zero** additional virtual time: a workload
driven through ``EBRReclaimer`` is bit-identical — elapsed virtual
seconds and communication totals — to the same workload driven against a
raw ``EpochManager``, which the scenario regression baselines (and
``tests/test_reclaimers.py::TestEBRAdapterEquivalence``) pin down.

The only adapter-side state is diagnostic: peak-pending sampling at the
(cost-free) reclaim entry points, so the cross-scheme comparison report
has the same columns for EBR as for the list-based schemes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from ..core.epoch_manager import EpochManager
from ..core.token import Token
from ..errors import ReclaimerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["EBRReclaimer"]


class EBRReclaimer:
    """Distributed epoch-based reclamation (the paper's scheme), adapted.

    Parameters
    ----------
    runtime:
        The simulated machine.
    manager:
        Wrap an existing :class:`EpochManager` instead of creating one
        (the wrapper then does not own it: ``destroy()`` leaves it alive).
    **manager_kwargs:
        Forwarded to :class:`EpochManager` when one is created here
        (``use_election``, ``use_scatter``, ``home``, ``epoch_cycle``).
    """

    scheme = "ebr"

    def __init__(
        self,
        runtime: "Runtime",
        *,
        manager: Optional[EpochManager] = None,
        **manager_kwargs: Any,
    ) -> None:
        self._rt = runtime
        self._owns_manager = manager is None
        self.manager = manager if manager is not None else EpochManager(
            runtime, **manager_kwargs
        )
        self._peak_pending = 0

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.manager._destroyed:
            raise ReclaimerError("EBRReclaimer used after destroy()")

    def register(self) -> Token:
        """Obtain a token on the calling task's locale (pure delegation)."""
        return self.manager.register()

    def phase_boundary(self) -> None:
        """No-op: EBR needs no explicit quiescent-point announcements."""
        self._check_alive()

    def try_reclaim(self) -> bool:
        """Attempt an epoch advance (delegates; samples peak pending)."""
        self._check_alive()
        self._note_pending()
        return self.manager.try_reclaim()

    tryReclaim = try_reclaim

    def clear(self) -> int:
        """Reclaim everything (caller guarantees quiescence; delegates)."""
        self._check_alive()
        self._note_pending()
        return self.manager.clear()

    def destroy(self) -> None:
        """Tear down the wrapped manager iff this adapter created it.

        A *shared* manager is left completely untouched: its other users'
        pinned tokens may still guard limbo objects, so even a ``clear``
        here would bypass the epoch guarantee.  The manager's creator
        owns its teardown.
        """
        if self.manager._destroyed:
            return
        if self._owns_manager:
            self._note_pending()
            self.manager.destroy()

    # ------------------------------------------------------------------
    def pending_count(self) -> int:
        """Objects currently in limbo (cost-free; delegates)."""
        return self.manager.pending_count()

    def _note_pending(self) -> None:
        pending = self.manager.pending_count()
        if pending > self._peak_pending:
            self._peak_pending = pending

    def _retired_total(self) -> int:
        total = 0
        # One visit per distinct instance: under the socket-shared layout
        # several locales alias one instance, and per-locale iteration
        # would double-count its deferred tally.
        for lid in self.manager.instance_locales():
            total += self.manager.get_privatized_instance(lid).deferred_count
        return total

    def stats(self) -> Dict[str, Any]:
        """EpochManager counters plus the normalized cross-scheme keys."""
        out: Dict[str, Any] = dict(self.manager.stats.as_dict())
        out.update(
            scheme=self.scheme,
            retired=self._retired_total() if not self.manager._destroyed else out["objects_reclaimed"],
            freed=out["objects_reclaimed"],
            pending=self.pending_count() if not self.manager._destroyed else 0,
            peak_pending=self._peak_pending,
            reclaims=out["advances"],
            # Policy diagnostics (docs/POLICY.md), matching ReclaimerBase:
            # the manager's stats already carry ``policy_deferrals``.
            policy=self.manager.policy.spec(),
            window=self._rt.network.aggregator.window,
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EBRReclaimer({self.manager!r})"
