"""repro — distributed non-blocking building blocks for the PGAS model.

A production-style Python reproduction of *"Paving the way for Distributed
Non-Blocking Algorithms and Data Structures in the Partitioned Global
Address Space model"* (Dewan & Jenkins, 2020, arXiv:2002.03068), including
the simulated PGAS substrate (locales, one-sided operations, RDMA vs
active-message cost model) the constructs need to run and be measured.

Quickstart::

    from repro import Runtime, EpochManager, AtomicObject

    rt = Runtime(num_locales=4, network="ugni")

    def main():
        em = EpochManager(rt)
        head = AtomicObject(rt, locale=0)

        def body(i, tok):
            tok.pin()
            addr = rt.new_obj({"i": i})   # allocate on my locale
            old = head.exchange(addr)     # publish atomically
            if not old.is_nil:
                tok.defer_delete(old)     # safe deferred reclamation
            tok.unpin()

        rt.forall(range(1000), body, task_init=em.register)
        em.clear()

    rt.run(main)

Package map: :mod:`repro.runtime` (simulated machine),
:mod:`repro.comm` (cost model / diagnostics), :mod:`repro.memory` (wide
pointers, compression, heaps), :mod:`repro.atomics` (primitive atomics),
:mod:`repro.core` (the paper's AtomicObject + EpochManager),
:mod:`repro.reclaim` (pluggable memory reclamation: EBR / hazard
pointers / QSBR / interval-based behind one guard protocol),
:mod:`repro.structures` (non-blocking structures built on them),
:mod:`repro.baselines` (lock-based comparators), :mod:`repro.bench`
(figure-by-figure benchmark harness).
"""

from .comm import DEFAULT_COSTS, CommDiagnostics, CostModel, NetworkModel
from .core import (
    ABA,
    AtomicObject,
    EpochManager,
    GlobalAtomicObject,
    LimboList,
    LocalAtomicObject,
    LocalEpochManager,
    Token,
)
from .errors import (
    CompressionError,
    DoubleFreeError,
    EpochManagerError,
    ReclaimerError,
    ReproError,
    TokenStateError,
    TooManyLocalesError,
    UseAfterFreeError,
)
from .memory import NIL, GlobalAddress, compress, decompress, is_nil
from .reclaim import (
    RECLAIMER_SCHEMES,
    EBRReclaimer,
    HazardPointerReclaimer,
    IntervalReclaimer,
    QSBRReclaimer,
    default_reclaimer,
    make_reclaimer,
)
from .runtime import NetworkType, Runtime, RuntimeConfig, snapshot

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # runtime
    "Runtime",
    "RuntimeConfig",
    "NetworkType",
    "snapshot",
    # comm
    "CostModel",
    "DEFAULT_COSTS",
    "NetworkModel",
    "CommDiagnostics",
    # memory
    "GlobalAddress",
    "NIL",
    "is_nil",
    "compress",
    "decompress",
    # core
    "ABA",
    "AtomicObject",
    "GlobalAtomicObject",
    "LocalAtomicObject",
    "EpochManager",
    "LocalEpochManager",
    "LimboList",
    "Token",
    # reclaim
    "RECLAIMER_SCHEMES",
    "make_reclaimer",
    "default_reclaimer",
    "EBRReclaimer",
    "HazardPointerReclaimer",
    "QSBRReclaimer",
    "IntervalReclaimer",
    # errors
    "ReproError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "TooManyLocalesError",
    "CompressionError",
    "TokenStateError",
    "ReclaimerError",
    "EpochManagerError",
]
