"""Exception hierarchy for the ``repro`` package.

Every error raised by the simulated PGAS runtime, the memory substrate, or
the non-blocking building blocks derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the precise failure mode.

The memory-safety errors (:class:`UseAfterFreeError`,
:class:`DoubleFreeError`, :class:`InvalidAddressError`) are load-bearing for
the reproduction: the whole point of Epoch-Based Reclamation is that these
are *never* raised when a structure is protected by an
:class:`~repro.core.epoch_manager.EpochManager`, and the test suite asserts
both directions (naive reclamation raises them under contention; EBR does
not).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "RuntimeStateError",
    "NoTaskContextError",
    "LocaleError",
    "MemoryError_",
    "InvalidAddressError",
    "UseAfterFreeError",
    "DoubleFreeError",
    "HeapExhaustedError",
    "CompressionError",
    "TooManyLocalesError",
    "TokenStateError",
    "CompiledFallbackError",
    "ReclaimerError",
    "EpochManagerError",
    "StructureError",
    "EmptyStructureError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class RuntimeStateError(ReproError):
    """The simulated runtime was used in an invalid state.

    Examples: spawning tasks on a runtime that has been shut down, nesting
    two distinct runtimes on the same thread, or re-entering a one-shot
    timer region.
    """


class NoTaskContextError(RuntimeStateError):
    """An operation that requires a task context ran outside any task.

    All PGAS operations (remote atomics, GETs/PUTs, ``on`` blocks) charge
    virtual time to the *current task's* clock, so they must run inside a
    task spawned by :class:`~repro.runtime.runtime.Runtime` (or inside the
    implicit main task created by :meth:`Runtime.main_task`).
    """


class LocaleError(ReproError):
    """A locale id was out of range or otherwise invalid."""


class MemoryError_(ReproError):
    """Base class for simulated-heap failures.

    Named with a trailing underscore to avoid shadowing the Python builtin
    :class:`MemoryError`.
    """


class InvalidAddressError(MemoryError_):
    """A global address did not name an allocated object on its locale."""


class UseAfterFreeError(MemoryError_):
    """An object was accessed through an address that has been freed.

    The simulated heap tracks liveness per allocation precisely so this
    hazard — which on real hardware is silent data corruption — becomes a
    deterministic, testable failure.
    """


class DoubleFreeError(MemoryError_):
    """An address was freed twice without an intervening allocation."""


class HeapExhaustedError(MemoryError_):
    """A locale heap ran out of 48-bit address space (practically unreachable)."""


class CompressionError(ReproError):
    """A wide pointer could not be pointer-compressed into 64 bits."""


class TooManyLocalesError(CompressionError):
    """Pointer compression requires fewer than 2**16 locales.

    Mirrors the paper's constraint: 16 bits of locality information are
    packed into the upper bits of a 48-bit-addressed 64-bit pointer. The
    library falls back to DCAS (or the descriptor table extension) when this
    is raised.
    """


class TokenStateError(ReproError):
    """An EBR token was used in an invalid state.

    Examples: pinning an unregistered token, unregistering twice, or
    deferring a deletion through an unpinned token.
    """


class ReclaimerError(ReproError):
    """Generic misuse of a memory-reclamation scheme.

    The common parent for manager-level misuse across every scheme in
    :mod:`repro.reclaim` (hazard pointers, QSBR, interval-based) — e.g.
    using a reclaimer after ``destroy()``.  Guard-level misuse (pinning an
    unregistered guard, retiring without a pin) raises
    :class:`TokenStateError` for uniformity with the EBR tokens.
    """


class EpochManagerError(ReclaimerError):
    """Generic misuse of the epoch manager (e.g. after ``destroy()``)."""


class CompiledFallbackError(ReproError):
    """A workload phase fell back to the interpreter under strict mode.

    Raised only when the runtime is configured with
    ``engine="compiled-strict"`` (docs/ENGINE.md): the plain ``"compiled"``
    engine falls back silently and exactly, so coverage regressions can
    hide; the strict engine turns every fallback into this error, naming
    the workload and the reason the phase could not be lowered.
    """


class StructureError(ReproError):
    """Base class for errors raised by the provided data structures."""


class EmptyStructureError(StructureError):
    """A destructive read (pop/dequeue) was attempted on an empty structure."""
