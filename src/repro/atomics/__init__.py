"""Atomic primitives routed through the simulated interconnect.

* :class:`~repro.atomics.integer.AtomicInt64` /
  :class:`~repro.atomics.integer.AtomicUInt64` — 64-bit atomics (the RDMA
  fast path under ``ugni``; Chapel's ``atomic int`` baseline).
* :class:`~repro.atomics.integer.AtomicBool` — flags with
  ``test_and_set`` / ``clear`` (the election protocol's building block).
* :class:`~repro.atomics.wide.AtomicWide128` — 128-bit DCAS
  (``CMPXCHG16B``); never RDMA, remote = active message.
"""

from .cell import AtomicCell
from .integer import AtomicBool, AtomicInt64, AtomicUInt64
from .ref import AtomicRef
from .wide import AtomicWide128

__all__ = [
    "AtomicCell",
    "AtomicInt64",
    "AtomicUInt64",
    "AtomicBool",
    "AtomicWide128",
    "AtomicRef",
]
