"""128-bit double-word atomics (DCAS / ``CMPXCHG16B`` emulation).

Two of the paper's mechanisms need to update *two* adjacent 64-bit words as
one atomic unit:

* the **ABA wrapper**: a 64-bit (compressed) pointer next to a 64-bit
  modification counter — a CAS that also checks the counter cannot be fooled
  by address recycling;
* the **uncompressed fallback**: when more than 2**16 locales preclude
  pointer compression, the full wide pointer (48-bit address + locale word)
  must be swapped whole.

Crucially, *no interconnect offers a 128-bit network atomic*: a remote DCAS
is always remote execution (an active message handled by the target's
progress thread), never RDMA.  The routing in
:meth:`repro.comm.network.NetworkModel.atomic_op` encodes that with
``wide=True``, and it is why the paper's ``AtomicObject (ABA)`` series track
the active-message cost curves in Figure 3 even when ``ugni`` is available.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from .cell import AtomicCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicWide128"]

_MASK64 = (1 << 64) - 1

Pair = Tuple[int, int]


def _norm(pair: Pair) -> Pair:
    """Truncate both halves of a pair to 64-bit words."""
    lo, hi = pair
    return lo & _MASK64, hi & _MASK64


class AtomicWide128(AtomicCell):
    """An atomically-updated pair of 64-bit words ``(lo, hi)``.

    By convention throughout this library ``lo`` holds the (compressed)
    pointer word and ``hi`` holds the ABA counter — matching the paper's
    layout of a 64-bit counter adjacent to the 64-bit word.
    """

    __slots__ = ("_lo", "_hi")

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        initial: Pair = (0, 0),
        name: str = "",
        *,
        opt_out: bool = False,
    ) -> None:
        super().__init__(runtime, home, name, opt_out=opt_out)
        self._lo, self._hi = _norm(initial)

    # ------------------------------------------------------------------
    def read(self) -> Pair:
        """Atomically load the pair.

        A 128-bit atomic load is implemented on x86 via a DCAS of the value
        against itself, so it pays the wide-op price.
        """
        self._charge(wide=True)
        with self._lock:
            return self._lo, self._hi

    def write(self, pair: Pair) -> None:
        """Atomically store the pair."""
        self._charge(wide=True)
        lo, hi = _norm(pair)
        with self._lock:
            self._lo, self._hi = lo, hi

    def peek(self) -> Pair:
        """Cost-free load (tests only)."""
        return self._lo, self._hi

    def exchange(self, pair: Pair) -> Pair:
        """Atomically store ``pair``; return the previous pair."""
        self._charge(wide=True)
        lo, hi = _norm(pair)
        with self._lock:
            old = (self._lo, self._hi)
            self._lo, self._hi = lo, hi
            return old

    def compare_and_swap(self, expected: Pair, desired: Pair) -> bool:
        """DCAS: store ``desired`` iff the pair equals ``expected``.

        This is the operation that defeats ABA: even if the pointer half
        has been recycled back to the same bits, the counter half will have
        advanced and the DCAS fails.
        """
        self._charge(wide=True)
        elo, ehi = _norm(expected)
        dlo, dhi = _norm(desired)
        with self._lock:
            if self._lo == elo and self._hi == ehi:
                self._lo, self._hi = dlo, dhi
                return True
            return False

    def compare_exchange(self, expected: Pair, desired: Pair) -> Tuple[bool, Pair]:
        """DCAS returning ``(success, observed_pair)``."""
        self._charge(wide=True)
        elo, ehi = _norm(expected)
        dlo, dhi = _norm(desired)
        with self._lock:
            observed = (self._lo, self._hi)
            if observed == (elo, ehi):
                self._lo, self._hi = dlo, dhi
                return True, observed
            return False, observed

    # ------------------------------------------------------------------
    def bump_exchange_lo(self, lo: int) -> Pair:
        """Atomically set ``lo`` and increment the counter; return old pair.

        Convenience for exchange-style operations that still want ABA
        protection on subsequent CASes (used by the limbo list's node
        recycling stack).
        """
        self._charge(wide=True)
        lo &= _MASK64
        with self._lock:
            old = (self._lo, self._hi)
            self._lo = lo
            self._hi = (self._hi + 1) & _MASK64
            return old
