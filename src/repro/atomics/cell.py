"""Base machinery shared by all simulated atomic variables.

An atomic cell lives on a *home locale* and owns a per-cell
:class:`~repro.runtime.clock.ServicePoint` modelling its cache line / NIC
address pipeline — the resource that serializes concurrent operations on a
*hot* atomic even when the rest of the machine is idle.

Real-thread atomicity is provided by a per-cell lock; virtual time and
communication counters are charged along routes precompiled by the
runtime's :class:`~repro.comm.network.NetworkModel`, which applies the
paper's routing rules (CPU vs NIC vs active message) based on the
*distance class* between the calling task's locale and the cell's home
(see :mod:`repro.comm.topology`) and whether the runtime has network
atomics.  The cell caches its home's distance row — a tuple mapping
source locale to class index — so resolving the route on the hot path is
one tuple index, for any topology.

Lock domains (the engine's one-lock-cycle-per-op design)
--------------------------------------------------------
Every charged operation must (a) reserve virtual time on its service
points and (b) mutate the cell value atomically with respect to real
threads.  Doing those under separate locks costs two lock cycles per
operation — the dominant wall-clock cost of the old engine — so the cell
picks ONE lock at construction and runs the whole sequence under it:

* When every narrow route of the cell rides the *same* home-level point
  (the flat ``ugni`` case: local and remote narrow atomics both pass the
  home NIC pipeline), that point's lock is the cell lock: point
  reservation, line reservation, and value commit all happen in one
  critical section (``ServicePoint.serve_locked``).
* Otherwise (``none`` network, an opted-out cell, or a multi-level
  topology whose classes route through different points) the **line's
  lock** is the cell lock; any home-level service point on a route keeps
  its own lock and is served nested inside (lock order is always
  cell-lock → point-lock, never the reverse, so this cannot deadlock).

The line's own lock is therefore bypassed on hot paths whenever the cell
lock is the NIC's; ``reset``/``utilization`` still take it, which is safe
because measurement control runs at quiescent points only.

Operations charge costs only when a task context is installed; this lets
unit tests exercise pure semantics without standing up a runtime task.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..runtime.clock import ServicePoint
from ..runtime.context import _tls as _context_tls

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicCell"]


class AtomicCell:
    """Common state & charging logic for one atomic memory location."""

    __slots__ = (
        "_rt",
        "home",
        "_lock",
        "line",
        "name",
        "opt_out",
        "_dist",
        "_narrow_hot",
        "_wide_hot",
        "_diags",
        "_hot",
    )

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        name: str = "",
        *,
        opt_out: bool = False,
    ) -> None:
        #: Owning runtime (supplies the network model).
        self._rt = runtime
        #: Locale the cell's memory lives on.
        self.home = home
        #: Per-cell serial resource (hot-line contention).
        self.line = ServicePoint(name or f"line@{home}")
        # Full-detail tracing (docs/OBSERVABILITY.md): the line emits its
        # own serve events, covering every cell fast path — including the
        # integer cells' inlined bodies — without touching them.
        self.line._tracer = getattr(runtime, "_full_tracer", None)
        self.name = name
        #: When True, the cell "opts out" of network atomics (priced as a
        #: CPU atomic even under `ugni`) — the paper's optimization for
        #: variables only ever touched by tasks on their home locale.
        self.opt_out = opt_out

        # ---- precompiled charge plan (see module docstring) ------------
        # Per-distance-class route rows for this home; tuples are indexed
        # by the caller's distance class (class 0 = the home itself).
        rows = runtime.network.atomic_class_routes(home)
        narrow_routes = rows[1] if opt_out else rows[0]
        wide_routes = rows[3] if opt_out else rows[2]
        #: Distance class of every source locale against this home.
        self._dist = runtime.network.distance_row(home)

        # Only classes that actually occur in this home's distance row can
        # ever be indexed — a dragonfly whose locales all fit in one group
        # must keep the one-lock-cycle fast path even though the (dead)
        # inter-group class compiles a different point.
        reachable = set(self._dist)
        shared_point = narrow_routes[0].point
        if shared_point is not None and all(
            narrow_routes[ci].point is shared_point for ci in reachable
        ):
            # Every *reachable* narrow class rides one home-level point
            # (flat ugni: the NIC pipeline) — adopt its lock and reserve
            # it via serve_locked.  Unreachable classes keep their own
            # point's self-locking serve; they are never indexed.
            self._lock = shared_point._lock
            narrow_plans = tuple(
                self._plan(
                    r, shared_point.serve_locked if ci in reachable else None
                )
                for ci, r in enumerate(narrow_routes)
            )
        else:
            self._lock = self.line._lock
            narrow_plans = tuple(self._plan(r, None) for r in narrow_routes)
        # Wide (and any) routes through a progress thread or uplink keep
        # that point's own lock and are served nested inside the cell lock.
        self._narrow_hot = narrow_plans
        self._wide_hot = tuple(self._plan(r, None) for r in wide_routes)
        self._diags = runtime.network.diags
        #: Hot-path bundle for the inlined integer fast paths: one
        #: attribute load + UNPACK_SEQUENCE hands a method everything it
        #: needs (runtime for the identity check, the distance row, routes,
        #: diagnostics, and prebound lock/serve callables).
        self._hot = (
            runtime,
            self._dist,
            self._narrow_hot,
            self._diags,
            self._lock.acquire,
            self._lock.release,
            self.line.serve_locked,
        )

    @staticmethod
    def _plan(route, locked_point_serve):
        """Flatten one route into the hot 5-tuple.

        ``(diag_index, latency, outer, point_service, line_service)`` where
        ``outer`` is the home-level serve callable to run inside the cell
        lock — ``serve_locked`` when the cell lock IS that point's lock,
        the point's self-locking ``serve`` when it is a different
        (progress) point, or ``None`` for pure-CPU routes.
        """
        if route.point is None:
            outer = None
        elif locked_point_serve is not None:
            outer = locked_point_serve
        else:
            outer = route.point.serve
        return (route.diag_index, route.latency, outer, route.point_service, route.line_service)

    # ------------------------------------------------------------------
    def _charge(self, *, wide: bool = False) -> None:
        """Charge one atomic op according to caller locality & network mode.

        No-op outside a task context (pure-semantics unit tests).  The
        route (latency class, service points, diagnostic index, lock
        domain) was precompiled at construction; only the caller's
        locality is decided here.  The integer cell's ``read``/``write``/
        ``exchange``/``compare_and_swap`` inline this body (fused with
        their value commit) — keep the implementations in sync.
        """
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is None:
            return
        rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
        if ctx.runtime is not rt:
            return
        locale = ctx.locale_id
        diag_index, latency, outer, point_service, line_service = (
            self._wide_hot if wide else narrow
        )[dist[locale]]
        if diags._enabled:
            rows = ctx.diag_rows
            if rows is None:
                rows = ctx.diag_rows = diags._rows()
            rows[locale][diag_index] += 1
        clock = ctx.clock
        t = clock.now + latency
        acquire()
        try:
            if outer is not None:
                t = outer(t, point_service)
            clock.now = line_serve_locked(t, line_service)
        finally:
            release()

    def reset_measurements(self) -> None:
        """Zero the cell's contention bookkeeping (between bench trials)."""
        self.line.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(home={self.home}, name={self.name!r})"
