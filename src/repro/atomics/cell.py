"""Base machinery shared by all simulated atomic variables.

An atomic cell lives on a *home locale* and owns a per-cell
:class:`~repro.runtime.clock.ServicePoint` modelling its cache line / NIC
address pipeline — the resource that serializes concurrent operations on a
*hot* atomic even when the rest of the machine is idle.

Real-thread atomicity is provided by a per-cell ``threading.Lock``; virtual
time and communication counters are charged through the runtime's
:class:`~repro.comm.network.NetworkModel`, which applies the paper's routing
rules (CPU vs NIC vs active message) based on where the calling task is and
whether the runtime has network atomics.

Operations charge costs only when a task context is installed; this lets
unit tests exercise pure semantics without standing up a runtime task.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional

from ..runtime.clock import ServicePoint
from ..runtime.context import maybe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicCell"]


class AtomicCell:
    """Common state & charging logic for one atomic memory location."""

    __slots__ = ("_rt", "home", "_lock", "line", "name", "opt_out")

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        name: str = "",
        *,
        opt_out: bool = False,
    ) -> None:
        #: Owning runtime (supplies the network model).
        self._rt = runtime
        #: Locale the cell's memory lives on.
        self.home = home
        self._lock = threading.Lock()
        #: Per-cell serial resource (hot-line contention).
        self.line = ServicePoint(name or f"line@{home}")
        self.name = name
        #: When True, the cell "opts out" of network atomics (priced as a
        #: CPU atomic even under `ugni`) — the paper's optimization for
        #: variables only ever touched by tasks on their home locale.
        self.opt_out = opt_out

    # ------------------------------------------------------------------
    def _charge(self, *, wide: bool = False) -> None:
        """Charge one atomic op according to caller locality & network mode.

        No-op outside a task context (pure-semantics unit tests).
        """
        ctx = maybe_context()
        if ctx is not None and ctx.runtime is self._rt:
            self._rt.network.atomic_op(
                ctx, self.home, self.line, wide=wide, opt_out=self.opt_out
            )

    def reset_measurements(self) -> None:
        """Zero the cell's contention bookkeeping (between bench trials)."""
        self.line.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(home={self.home}, name={self.name!r})"
