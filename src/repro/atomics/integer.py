"""64-bit atomic integers and booleans (Chapel's ``atomic int`` analogue).

These are the primitives the paper benchmarks ``AtomicObject`` against in
Figure 3, and the raw material the rest of the library is built from: the
compressed-pointer word inside :class:`~repro.core.atomic_object.AtomicObject`
is an :class:`AtomicUInt64`, and every flag in the epoch manager's election
protocol is an :class:`AtomicBool`.

Semantics follow Chapel's ``atomic`` type closely:

* ``read`` / ``write`` / ``exchange`` / ``compareAndSwap`` (spelled
  ``compare_and_swap``, returning ``bool``) / ``compareExchange``
  (returning the observed value too) / ``fetch_add`` & friends;
* integer arithmetic wraps modulo 2**64, with :class:`AtomicInt64`
  interpreting the word as two's-complement signed.

Every operation is routed through the network model: under ``ugni`` it pays
the NIC price even locally (network atomics are not coherent); under
``none`` a remote op pays an active-message round trip.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..runtime.context import _tls as _context_tls
from .cell import AtomicCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicUInt64", "AtomicInt64", "AtomicBool"]

_MASK64 = (1 << 64) - 1
_SIGN_BIT = 1 << 63
_TWO64 = 1 << 64


def _to_signed(word: int) -> int:
    """Interpret a 64-bit word as two's-complement signed."""
    return word - (1 << 64) if word & _SIGN_BIT else word


def _to_word(value: int) -> int:
    """Truncate a Python int to a 64-bit word (two's complement)."""
    return value & _MASK64


class AtomicUInt64(AtomicCell):
    """An unsigned 64-bit atomic word.

    The workhorse: compressed ``AtomicObject`` pointers live in one of
    these, so its operation set and costs are exactly what the paper's
    RDMA-atomic fast path pays.
    """

    __slots__ = ("_value",)

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        initial: int = 0,
        name: str = "",
        *,
        opt_out: bool = False,
    ) -> None:
        super().__init__(runtime, home, name, opt_out=opt_out)
        self._value = _to_word(initial)

    # -- reads / writes ---------------------------------------------------
    # read/write are the two hottest operations in the whole simulator
    # (every epoch pin/unpin is made of them), so both inline the narrow
    # _charge body instead of calling it — keep them in sync with
    # AtomicCell._charge.

    def read(self) -> int:
        """Atomically load the current value.

        Lock-free: every mutator commits with one attribute store (its
        last action, under the cell lock), so a bare load always observes
        a fully committed value — linearizable without touching the lock.
        """
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is not None:
            rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
            if ctx.runtime is rt:
                locale = ctx.locale_id
                diag_index, latency, outer, point_service, line_service = narrow[
                    dist[locale]
                ]
                if diags._enabled:
                    rows = ctx.diag_rows
                    if rows is None:
                        rows = ctx.diag_rows = diags._rows()
                    rows[locale][diag_index] += 1
                clock = ctx.clock
                t = clock.now + latency
                acquire()
                try:
                    if outer is not None:
                        t = outer(t, point_service)
                    clock.now = line_serve_locked(t, line_service)
                finally:
                    release()
        return self._value

    def write(self, value: int) -> None:
        """Atomically store ``value``.

        The lock orders the store against in-flight read-modify-writes
        (a blind store racing a fetch_add must serialize, not vanish).
        """
        rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is None or ctx.runtime is not rt:
            with self._lock:
                self._value = value & _MASK64
            return
        locale = ctx.locale_id
        diag_index, latency, outer, point_service, line_service = narrow[
            dist[locale]
        ]
        if diags._enabled:
            rows = ctx.diag_rows
            if rows is None:
                rows = ctx.diag_rows = diags._rows()
            rows[locale][diag_index] += 1
        clock = ctx.clock
        t = clock.now + latency
        acquire()
        try:
            if outer is not None:
                t = outer(t, point_service)
            clock.now = line_serve_locked(t, line_service)
            self._value = value & _MASK64
        finally:
            release()

    def peek(self) -> int:
        """Non-atomic, cost-free load (test/debug instrumentation only)."""
        return self._value

    def poke(self, value: int) -> None:
        """Non-atomic, cost-free store (test/debug instrumentation only)."""
        self._value = _to_word(value)

    # -- read-modify-write -------------------------------------------------
    def exchange(self, value: int) -> int:
        """Atomically store ``value`` and return the previous value."""
        # Inlined narrow charge (Figure 3 mix hot path; see read()).
        rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is None or ctx.runtime is not rt:
            with self._lock:
                old = self._value
                self._value = value & _MASK64
                return old
        locale = ctx.locale_id
        diag_index, latency, outer, point_service, line_service = narrow[
            dist[locale]
        ]
        if diags._enabled:
            rows = ctx.diag_rows
            if rows is None:
                rows = ctx.diag_rows = diags._rows()
            rows[locale][diag_index] += 1
        clock = ctx.clock
        t = clock.now + latency
        acquire()
        try:
            if outer is not None:
                t = outer(t, point_service)
            clock.now = line_serve_locked(t, line_service)
            old = self._value
            self._value = value & _MASK64
            return old
        finally:
            release()

    def compare_and_swap(self, expected: int, desired: int) -> bool:
        """CAS: store ``desired`` iff the value equals ``expected``.

        Returns ``True`` on success (Chapel's ``compareAndSwap``).
        """
        # Inlined narrow charge (Figure 3 mix hot path; see read()).
        rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is None or ctx.runtime is not rt:
            expected &= _MASK64
            with self._lock:
                if self._value == expected:
                    self._value = desired & _MASK64
                    return True
                return False
        locale = ctx.locale_id
        diag_index, latency, outer, point_service, line_service = narrow[
            dist[locale]
        ]
        if diags._enabled:
            rows = ctx.diag_rows
            if rows is None:
                rows = ctx.diag_rows = diags._rows()
            rows[locale][diag_index] += 1
        clock = ctx.clock
        t = clock.now + latency
        expected &= _MASK64
        acquire()
        try:
            if outer is not None:
                t = outer(t, point_service)
            clock.now = line_serve_locked(t, line_service)
            if self._value == expected:
                self._value = desired & _MASK64
                return True
            return False
        finally:
            release()

    def compare_exchange(self, expected: int, desired: int) -> Tuple[bool, int]:
        """CAS returning ``(success, observed_value)``."""
        self._charge()
        expected &= _MASK64
        with self._lock:
            observed = self._value
            if observed == expected:
                self._value = desired & _MASK64
                return True, observed
            return False, observed

    def fetch_add(self, delta: int) -> int:
        """Atomically add ``delta`` (mod 2**64); return the previous value."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = (old + delta) & _MASK64
            return old

    def add(self, delta: int) -> None:
        """Atomically add ``delta`` (result discarded)."""
        self.fetch_add(delta)

    def fetch_sub(self, delta: int) -> int:
        """Atomically subtract ``delta``; return the previous value."""
        return self.fetch_add(-delta)

    def sub(self, delta: int) -> None:
        """Atomically subtract ``delta`` (result discarded)."""
        self.fetch_add(-delta)

    def fetch_or(self, bits: int) -> int:
        """Atomic bitwise OR; returns the previous value."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = (old | bits) & _MASK64
            return old

    def fetch_and(self, bits: int) -> int:
        """Atomic bitwise AND; returns the previous value."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = (old & bits) & _MASK64
            return old

    def fetch_xor(self, bits: int) -> int:
        """Atomic bitwise XOR; returns the previous value."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = (old ^ bits) & _MASK64
            return old


class AtomicInt64(AtomicUInt64):
    """A signed 64-bit atomic integer (Chapel's ``atomic int``).

    Shares the unsigned machinery; only the value interpretation differs.
    This is the baseline type in Figure 3's ``atomic int`` series.
    """

    __slots__ = ()

    def read(self) -> int:
        """Atomically load, interpreted as signed (lock-free, see base)."""
        # Inlined narrow charge (Figure 3 baseline hot path; see
        # AtomicUInt64.read).
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is not None:
            rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
            if ctx.runtime is rt:
                locale = ctx.locale_id
                diag_index, latency, outer, point_service, line_service = narrow[
                    dist[locale]
                ]
                if diags._enabled:
                    rows = ctx.diag_rows
                    if rows is None:
                        rows = ctx.diag_rows = diags._rows()
                    rows[locale][diag_index] += 1
                clock = ctx.clock
                t = clock.now + latency
                acquire()
                try:
                    if outer is not None:
                        t = outer(t, point_service)
                    clock.now = line_serve_locked(t, line_service)
                finally:
                    release()
        value = self._value
        return value - _TWO64 if value & _SIGN_BIT else value

    def peek(self) -> int:
        """Cost-free signed load (tests only)."""
        return _to_signed(super().peek())

    def exchange(self, value: int) -> int:
        """Atomic exchange, returning the previous signed value.

        Inlined like the base-class hot ops (25% of the Figure 3 mix); the
        only difference is the signed interpretation of the old value.
        """
        rt, dist, narrow, diags, acquire, release, line_serve_locked = self._hot
        try:
            ctx = _context_tls.ctx
        except AttributeError:  # thread never entered a task scope
            ctx = None
        if ctx is None or ctx.runtime is not rt:
            with self._lock:
                old = self._value
                self._value = value & _MASK64
            return old - _TWO64 if old & _SIGN_BIT else old
        locale = ctx.locale_id
        diag_index, latency, outer, point_service, line_service = narrow[
            dist[locale]
        ]
        if diags._enabled:
            rows = ctx.diag_rows
            if rows is None:
                rows = ctx.diag_rows = diags._rows()
            rows[locale][diag_index] += 1
        clock = ctx.clock
        t = clock.now + latency
        acquire()
        try:
            if outer is not None:
                t = outer(t, point_service)
            clock.now = line_serve_locked(t, line_service)
            old = self._value
            self._value = value & _MASK64
        finally:
            release()
        return old - _TWO64 if old & _SIGN_BIT else old

    def compare_exchange(self, expected: int, desired: int) -> Tuple[bool, int]:
        """CAS returning ``(success, observed)`` with signed ``observed``."""
        ok, observed = super().compare_exchange(expected, desired)
        return ok, _to_signed(observed)

    def fetch_add(self, delta: int) -> int:
        """Wrapping atomic add, returning the previous signed value."""
        return _to_signed(super().fetch_add(delta))

    def fetch_sub(self, delta: int) -> int:
        """Wrapping atomic subtract, returning the previous signed value."""
        return _to_signed(super().fetch_sub(delta))


class AtomicBool(AtomicCell):
    """An atomic boolean flag with ``testAndSet`` / ``clear``.

    The epoch manager's election protocol (Listing 4) is built on exactly
    two of these per manager: the per-locale flag and the global flag.
    """

    __slots__ = ("_value",)

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        initial: bool = False,
        name: str = "",
        *,
        opt_out: bool = False,
    ) -> None:
        super().__init__(runtime, home, name, opt_out=opt_out)
        self._value = bool(initial)

    def read(self) -> bool:
        """Atomically load the flag (lock-free; mutators commit with one
        store, so a bare load is linearizable)."""
        self._charge()
        return self._value

    def write(self, value: bool) -> None:
        """Atomically store the flag."""
        self._charge()
        with self._lock:
            self._value = bool(value)

    def peek(self) -> bool:
        """Cost-free load (tests only)."""
        return self._value

    def exchange(self, value: bool) -> bool:
        """Atomically store ``value``; return the previous flag."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = bool(value)
            return old

    def test_and_set(self) -> bool:
        """Set the flag; return the *previous* value.

        Chapel semantics: a return of ``False`` means the caller won the
        flag (it was clear); ``True`` means someone else holds it.
        """
        return self.exchange(True)

    def clear(self) -> None:
        """Reset the flag to ``False``."""
        self.write(False)

    def compare_and_swap(self, expected: bool, desired: bool) -> bool:
        """CAS on the flag; returns success."""
        self._charge()
        with self._lock:
            if self._value == bool(expected):
                self._value = bool(desired)
                return True
            return False
