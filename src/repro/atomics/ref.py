"""Atomic references to in-memory Python objects (runtime-internal).

The public ``AtomicObject`` works on *heap addresses* (wide pointers) so it
can model compression, RDMA, and reclamation hazards.  The library's own
metadata — token free lists, the allocated-token list, limbo-list nodes —
doesn't live in the simulated heap; it is ordinary Python data private to a
locale.  :class:`AtomicRef` gives those structures a CAS-able cell holding
any Python object, priced like a 64-bit atomic.

CAS compares by **identity** (``is``), matching pointer-CAS semantics.
Because Python objects are garbage collected, Treiber-style structures over
``AtomicRef`` cannot suffer ABA-induced *corruption* (a node's identity is
never recycled while referenced) — which is precisely the "with a GC this
is safe" footnote from the shared-memory literature.  The simulated-heap
structures, which *can* suffer ABA, are where the paper's ``ABA`` wrapper
earns its keep.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Tuple

from .cell import AtomicCell

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["AtomicRef"]


class AtomicRef(AtomicCell):
    """A CAS-able cell holding an arbitrary Python object (or ``None``)."""

    __slots__ = ("_value",)

    def __init__(
        self,
        runtime: "Runtime",
        home: int,
        initial: Any = None,
        name: str = "",
        *,
        opt_out: bool = True,
    ) -> None:
        # opt_out defaults True: AtomicRef is used for locale-private
        # metadata, exactly the variables the paper opts out of network
        # atomics for.
        super().__init__(runtime, home, name, opt_out=opt_out)
        self._value = initial

    def read(self) -> Any:
        """Atomically load the referenced object."""
        self._charge()
        with self._lock:
            return self._value

    def write(self, value: Any) -> None:
        """Atomically store ``value``."""
        self._charge()
        with self._lock:
            self._value = value

    def peek(self) -> Any:
        """Cost-free load (tests only)."""
        return self._value

    def exchange(self, value: Any) -> Any:
        """Atomically store ``value``; return the previous reference."""
        self._charge()
        with self._lock:
            old = self._value
            self._value = value
            return old

    def compare_and_swap(self, expected: Any, desired: Any) -> bool:
        """Identity CAS: store ``desired`` iff the cell holds ``expected``."""
        self._charge()
        with self._lock:
            if self._value is expected:
                self._value = desired
                return True
            return False

    def compare_exchange(self, expected: Any, desired: Any) -> Tuple[bool, Any]:
        """Identity CAS returning ``(success, observed)``."""
        self._charge()
        with self._lock:
            observed = self._value
            if observed is expected:
                self._value = desired
                return True, observed
            return False, observed
