"""Generic parameter-sweep driver with CSV export.

The figure drivers in :mod:`repro.bench.figures` are purpose-built for the
paper's plots; this module is the general tool behind them for anyone
extending the study: declare a grid of parameters, a ``run`` callable that
builds a fresh runtime per point and returns a
:class:`~repro.bench.workloads.WorkloadResult`, and get back tidy rows
(optionally written as CSV) carrying virtual time, throughput, and the
communication totals for every point.

Example::

    from repro.bench.sweep import Sweep
    from repro.bench.workloads import run_epoch_workload
    from repro.runtime import Runtime

    sweep = Sweep(
        name="reclaim-frequency",
        grid={
            "locales": [2, 8, 32],
            "network": ["none", "ugni"],
            "every": [1, 64, 1024],
        },
        run=lambda p: run_epoch_workload(
            Runtime(num_locales=p["locales"], network=p["network"]),
            ops_per_task=1024,
            reclaim_every=p["every"],
        ),
    )
    rows = sweep.execute()
    sweep.write_csv("reclaim_frequency.csv", rows)
"""

from __future__ import annotations

import concurrent.futures
import csv
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence

from .workloads import WorkloadResult

__all__ = ["SweepRow", "Sweep"]


@dataclass
class SweepRow:
    """One grid point's parameters and measurements."""

    #: The parameter assignment for this point.
    params: Dict[str, Any]
    #: Virtual seconds of the timed region.
    elapsed: float
    #: Simulated operations performed.
    operations: int
    #: Simulated ops per virtual second.
    throughput: float
    #: Wall-clock seconds the simulation itself took (harness health).
    wall_seconds: float
    #: Communication totals for the point.
    comm: Dict[str, int] = field(default_factory=dict)

    def flat(self) -> Dict[str, Any]:
        """Single-level dict (CSV-friendly)."""
        out: Dict[str, Any] = dict(self.params)
        out["elapsed_s"] = self.elapsed
        out["operations"] = self.operations
        out["throughput_ops_s"] = self.throughput
        out["wall_s"] = self.wall_seconds
        for k, v in self.comm.items():
            out[f"comm_{k}"] = v
        return out


class Sweep:
    """Cartesian-product sweep over a parameter grid.

    Parameters
    ----------
    name:
        Label used in progress output and default filenames.
    grid:
        Mapping of parameter name to the values it sweeps over; points are
        the cartesian product in declaration order.
    run:
        Callable taking one parameter dict and returning a
        :class:`WorkloadResult`.  It must build (and own) any runtime it
        needs — sweeps never share simulator state between points.
    progress:
        Optional callable invoked with each finished :class:`SweepRow`.
    """

    def __init__(
        self,
        name: str,
        grid: Mapping[str, Sequence[Any]],
        run: Callable[[Dict[str, Any]], WorkloadResult],
        progress: Optional[Callable[[SweepRow], None]] = None,
    ) -> None:
        if not grid:
            raise ValueError("sweep grid must have at least one parameter")
        for key, values in grid.items():
            if not list(values):
                raise ValueError(f"sweep parameter {key!r} has no values")
        self.name = name
        self.grid = {k: list(v) for k, v in grid.items()}
        self.run = run
        self.progress = progress

    def points(self) -> Iterator[Dict[str, Any]]:
        """Yield every parameter assignment in the grid."""
        keys = list(self.grid)
        for combo in itertools.product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    @property
    def size(self) -> int:
        """Number of grid points."""
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def _run_point(self, params: Dict[str, Any]) -> SweepRow:
        t0 = time.time()
        result = self.run(dict(params))
        return SweepRow(
            params=dict(params),
            elapsed=result.elapsed,
            operations=result.operations,
            throughput=result.ops_per_second,
            wall_seconds=time.time() - t0,
            comm=dict(result.comm),
        )

    def execute(self, *, max_workers: Optional[int] = None) -> List[SweepRow]:
        """Run every point; returns rows in grid order.

        ``max_workers`` > 1 executes points concurrently on a thread pool.
        Because each point's ``run`` builds (and owns) its own runtime,
        points share no simulator state and the virtual-time results are
        identical to a serial execution — only the wall clock changes.
        Rows still come back in grid order; ``progress`` fires in
        completion order.
        """
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_workers is None or max_workers == 1:
            rows: List[SweepRow] = []
            for params in self.points():
                row = self._run_point(params)
                rows.append(row)
                if self.progress is not None:
                    self.progress(row)
            return rows
        all_points = list(self.points())
        rows_by_index: List[Optional[SweepRow]] = [None] * len(all_points)
        with concurrent.futures.ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(self._run_point, params): i
                for i, params in enumerate(all_points)
            }
            for fut in concurrent.futures.as_completed(futures):
                row = fut.result()
                rows_by_index[futures[fut]] = row
                if self.progress is not None:
                    self.progress(row)
        return [row for row in rows_by_index if row is not None]

    @staticmethod
    def write_csv(path: str, rows: Sequence[SweepRow]) -> None:
        """Write rows to ``path`` as CSV (union of all columns)."""
        if not rows:
            raise ValueError("no rows to write")
        flats = [r.flat() for r in rows]
        columns: List[str] = []
        for f in flats:
            for k in f:
                if k not in columns:
                    columns.append(k)
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=columns)
            writer.writeheader()
            for f in flats:
                writer.writerow(f)
