"""Figure drivers: regenerate every plot in the paper's evaluation.

Each ``figure_*`` function sweeps the paper's parameter grid and returns
:class:`~repro.bench.report.Panel` objects whose series correspond one to
one with the lines in the paper's plots.  The CLI (``python -m
repro.bench``) and the pytest-benchmark entry points under ``benchmarks/``
both drive these functions; EXPERIMENTS.md records their output.

Since the scenario engine landed, the drivers here are *thin wrappers*
over registered scenario specs (:mod:`repro.bench.scenarios`): each grid
point derives the paper base scenario (``paper-atomic-mix`` or
``paper-reclaim-endonly``) with the point's topology and workload
parameters and hands it to :func:`~repro.bench.scenarios.run_scenario` —
one engine serves the paper's grid and every new scenario alike.

Scale note: ``ops_per_task`` defaults keep a full figure under a few
minutes of wall time on a laptop; the *virtual* seconds reported scale
linearly with it, so curve shapes (the reproduction target) are unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .report import Panel
from .scenarios import get_scenario, run_scenario

__all__ = [
    "DEFAULT_SHARED_TASKS",
    "DEFAULT_LOCALES",
    "figure3_shared",
    "figure3_distributed",
    "figure_epoch_deletion",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
]

#: Task counts of Figure 3's shared-memory panel.
DEFAULT_SHARED_TASKS: Sequence[int] = (1, 2, 4, 8, 16, 32)
#: Locale counts of the distributed panels (Figures 3-6; Fig 7 starts at 2).
DEFAULT_LOCALES: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
#: Locale counts for the epoch-manager figures (paper starts them at 2).
DEFAULT_EPOCH_LOCALES: Sequence[int] = (2, 4, 8, 16, 32, 64)


def _point_elapsed(
    base: str,
    *,
    locales: int,
    network: str,
    tasks_per_locale: int,
    **workload: Any,
) -> float:
    """Virtual seconds for one grid point derived from a base scenario."""
    spec = (
        get_scenario(base)
        .with_topology(
            locales=locales, network=network, tasks_per_locale=tasks_per_locale
        )
        .with_workload(**workload)
    )
    return run_scenario(spec).result.elapsed


# ---------------------------------------------------------------------------
# Figure 3 — AtomicObject vs atomic int
# ---------------------------------------------------------------------------


def figure3_shared(
    *,
    tasks: Sequence[int] = DEFAULT_SHARED_TASKS,
    total_ops: int = 1 << 15,
) -> Panel:
    """Figure 3 (left): shared memory, strong scaling over task counts.

    Total operation count is fixed; each task performs ``total/tasks`` ops
    on locale-local cells.  Series: ``atomic int``, ``AtomicObject``,
    ``AtomicObject (ABA)``.
    """
    panel = Panel(title="Figure 3 (shared memory) — time (s)", xlabel="tasks", xs=list(tasks))
    series: Dict[str, List[float]] = {
        "atomic int": [],
        "AtomicObject": [],
        "AtomicObject (ABA)": [],
    }
    kinds = {
        "atomic int": "atomic_int",
        "AtomicObject": "atomic_object",
        "AtomicObject (ABA)": "atomic_object_aba",
    }
    for ntasks in tasks:
        ops_per_task = max(1, total_ops // ntasks)
        for label, kind in kinds.items():
            series[label].append(
                _point_elapsed(
                    "paper-atomic-mix",
                    locales=1,
                    network="none",
                    tasks_per_locale=ntasks,
                    cell=kind,
                    ops_per_task=ops_per_task,
                )
            )
    for label, vals in series.items():
        panel.add(label, vals)
    return panel


def figure3_distributed(
    *,
    locales: Sequence[int] = DEFAULT_LOCALES,
    ops_per_task: int = 1 << 11,
    tasks_per_locale: int = 1,
) -> Panel:
    """Figure 3 (right): distributed, 1-64 locales.

    Each task performs a fixed number of operations against cyclically
    distributed cells (the remote fraction grows with locales).  Series:
    ``atomic int (none/ugni)``, ``AtomicObject (ABA)``,
    ``AtomicObject (none/ugni)``.
    """
    panel = Panel(
        title="Figure 3 (distributed memory) — time (s)", xlabel="locales", xs=list(locales)
    )
    specs = [
        ("atomic int (none)", "atomic_int", "none"),
        ("atomic int (ugni)", "atomic_int", "ugni"),
        ("AtomicObject (ABA)", "atomic_object_aba", "ugni"),
        ("AtomicObject (none)", "atomic_object", "none"),
        ("AtomicObject (ugni)", "atomic_object", "ugni"),
    ]
    for label, kind, network in specs:
        vals: List[float] = []
        for nloc in locales:
            vals.append(
                _point_elapsed(
                    "paper-atomic-mix",
                    locales=nloc,
                    network=network,
                    tasks_per_locale=tasks_per_locale,
                    cell=kind,
                    ops_per_task=ops_per_task,
                )
            )
        panel.add(label, vals)
    return panel


# ---------------------------------------------------------------------------
# Figures 4-7 — EpochManager
# ---------------------------------------------------------------------------


def figure_epoch_deletion(
    *,
    figure_name: str,
    reclaim_every: Optional[int],
    locales: Sequence[int] = DEFAULT_EPOCH_LOCALES,
    ops_per_task: int = 1 << 10,
    tasks_per_locale: int = 1,
    remote_percents: Sequence[int] = (0, 50, 100),
) -> List[Panel]:
    """Shared driver for Figures 4, 5 and 6 (three panels each).

    ``reclaim_every``: 1024 -> Figure 4 (sparse), 1 -> Figure 5 (dense),
    ``None`` -> Figure 6 (cleanup only at the end).
    """
    panels: List[Panel] = []
    for rp in remote_percents:
        panel = Panel(
            title=f"{figure_name} — {rp}% remote objects — time (s)",
            xlabel="locales",
            xs=list(locales),
        )
        for network in ("none", "ugni"):
            vals: List[float] = []
            for nloc in locales:
                vals.append(
                    _point_elapsed(
                        "paper-reclaim-endonly",
                        locales=nloc,
                        network=network,
                        tasks_per_locale=tasks_per_locale,
                        ops_per_task=ops_per_task,
                        remote_percent=rp,
                        delete=True,
                        reclaim_every=reclaim_every,
                        cleanup_at_end=True,
                    )
                )
            panel.add(network, vals)
        panels.append(panel)
    return panels


def figure4(**kwargs) -> List[Panel]:
    """Figure 4: deletion with ``tryReclaim`` once per 1024 iterations."""
    kwargs.setdefault("reclaim_every", 1024)
    return figure_epoch_deletion(
        figure_name="Figure 4 (Pin-Unpin w/ Sparse tryReclaim)", **kwargs
    )


def figure5(**kwargs) -> List[Panel]:
    """Figure 5: deletion with ``tryReclaim`` called every iteration."""
    kwargs.setdefault("reclaim_every", 1)
    return figure_epoch_deletion(
        figure_name="Figure 5 (Pin-Unpin w/ Dense tryReclaim)", **kwargs
    )


def figure6(**kwargs) -> List[Panel]:
    """Figure 6: deletion with reclamation only performed at the end."""
    kwargs.setdefault("reclaim_every", None)
    return figure_epoch_deletion(
        figure_name="Figure 6 (Pin-Unpin w/ Deletion + Cleanup)", **kwargs
    )


def figure7(
    *,
    locales: Sequence[int] = DEFAULT_EPOCH_LOCALES,
    ops_per_task: int = 1 << 11,
    tasks_per_locale: int = 1,
) -> Panel:
    """Figure 7: read-only pin/unpin workload (no deletion).

    The paper's headline privatization result: the curve stays essentially
    flat across locales because every pin/unpin touches only locale-local
    state.
    """
    panel = Panel(
        title="Figure 7 (Pin-Unpin, read-only) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for network in ("none", "ugni"):
        vals: List[float] = []
        for nloc in locales:
            vals.append(
                _point_elapsed(
                    "paper-reclaim-endonly",
                    locales=nloc,
                    network=network,
                    tasks_per_locale=tasks_per_locale,
                    ops_per_task=ops_per_task,
                    remote_percent=0,
                    delete=False,
                    reclaim_every=None,
                    cleanup_at_end=False,
                )
            )
        panel.add(network, vals)
    return panel
