"""Benchmark harness: regenerate every figure in the paper's evaluation.

Entry points:

* ``python -m repro.bench --figure all`` — print every figure's series.
* :mod:`repro.bench.figures` — programmatic drivers (used by the pytest
  benchmarks under ``benchmarks/``).
* :mod:`repro.bench.ablations` — the design-choice ablations from
  DESIGN.md Section 6.
* :mod:`repro.bench.workloads` — the underlying workload generators.
"""

from .ablations import (
    ablation_compression,
    ablation_epoch_cycle,
    ablation_election,
    ablation_privatization,
    ablation_reclaimers,
    ablation_scatter,
)
from .figures import (
    figure3_distributed,
    figure3_shared,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .report import Panel, Series, render_figure, render_panel
from .sweep import Sweep, SweepRow
from .workloads import WorkloadResult, run_atomic_mix, run_epoch_workload

__all__ = [
    "figure3_shared",
    "figure3_distributed",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ablation_compression",
    "ablation_epoch_cycle",
    "ablation_privatization",
    "ablation_scatter",
    "ablation_election",
    "ablation_reclaimers",
    "Panel",
    "Series",
    "render_panel",
    "render_figure",
    "Sweep",
    "SweepRow",
    "WorkloadResult",
    "run_atomic_mix",
    "run_epoch_workload",
]
