"""Benchmark harness: regenerate every figure in the paper's evaluation.

Entry points:

* ``python -m repro.bench --figure all`` — print every figure's series.
* ``python -m repro.bench scenarios --list/--run/--all`` — the declarative
  scenario engine (docs/SCENARIOS.md).
* :mod:`repro.bench.figures` — programmatic drivers (used by the pytest
  benchmarks under ``benchmarks/``), thin wrappers over registered
  scenarios.
* :mod:`repro.bench.scenarios` — scenario specs, registry, parallel grid
  runner, regression baselines.
* :mod:`repro.bench.ablations` — the design-choice ablations from
  DESIGN.md Section 6.
* :mod:`repro.bench.workloads` — the underlying workload generators.
"""

from .ablations import (
    ablation_compression,
    ablation_epoch_cycle,
    ablation_election,
    ablation_privatization,
    ablation_reclaimers,
    ablation_scatter,
)
from .figures import (
    figure3_distributed,
    figure3_shared,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .report import Panel, Series, render_figure, render_panel
from .scenarios import (
    MeasureSpec,
    ScenarioError,
    ScenarioRun,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    build_report,
    get_scenario,
    iter_scenarios,
    register_scenario,
    run_scenario,
    run_scenario_grid,
    scenario_names,
)
from .sweep import Sweep, SweepRow
from .workloads import (
    WorkloadResult,
    run_atomic_hotspot,
    run_atomic_mix,
    run_epoch_mixed,
    run_epoch_workload,
    run_multi_structure,
    run_producer_consumer,
)

__all__ = [
    "figure3_shared",
    "figure3_distributed",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "ablation_compression",
    "ablation_epoch_cycle",
    "ablation_privatization",
    "ablation_scatter",
    "ablation_election",
    "ablation_reclaimers",
    "Panel",
    "Series",
    "render_panel",
    "render_figure",
    "Sweep",
    "SweepRow",
    "WorkloadResult",
    "run_atomic_mix",
    "run_epoch_workload",
    "run_atomic_hotspot",
    "run_epoch_mixed",
    "run_producer_consumer",
    "run_multi_structure",
    # scenarios
    "ScenarioError",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "MeasureSpec",
    "ScenarioRun",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "run_scenario",
    "run_scenario_grid",
    "build_report",
]
