"""Plain-text reporting: the figures' series as aligned tables.

The paper presents log-log line plots; offline and headless, we print the
same data as one table per panel — x-axis (tasks or locales) down the
rows, one column per series — in a format that is easy to diff between
runs and to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

__all__ = ["Series", "Panel", "render_panel", "render_figure"]


@dataclass
class Series:
    """One line of a panel: a name and y-values aligned with the panel xs."""

    name: str
    values: List[float] = field(default_factory=list)


@dataclass
class Panel:
    """One subplot: title, x-axis label/values, and the series."""

    title: str
    xlabel: str
    xs: List[int] = field(default_factory=list)
    series: List[Series] = field(default_factory=list)

    def add(self, name: str, values: Sequence[float]) -> None:
        """Attach a series (must align with ``xs``)."""
        self.series.append(Series(name, list(values)))

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (EXPERIMENTS.md provenance blobs)."""
        return {
            "title": self.title,
            "xlabel": self.xlabel,
            "xs": list(self.xs),
            "series": {s.name: list(s.values) for s in self.series},
        }


def _fmt(v: float) -> str:
    """Format a time in seconds with enough significant digits for ratios."""
    if v == 0:
        return "0"
    if v >= 100:
        return f"{v:.1f}"
    if v >= 1:
        return f"{v:.3f}"
    return f"{v:.3g}"


def render_panel(panel: Panel) -> str:
    """Render one panel as an aligned monospace table."""
    headers = [panel.xlabel] + [s.name for s in panel.series]
    rows: List[List[str]] = []
    for i, x in enumerate(panel.xs):
        row = [str(x)]
        for s in panel.series:
            row.append(_fmt(s.values[i]) if i < len(s.values) else "-")
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows)) if rows else len(headers[c])
        for c in range(len(headers))
    ]
    out: List[str] = []
    out.append(panel.title)
    out.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append("  " + "  ".join("-" * w for w in widths))
    for r in rows:
        out.append("  " + "  ".join(r[i].ljust(widths[i]) for i in range(len(r))))
    return "\n".join(out)


def render_figure(title: str, panels: Sequence[Panel]) -> str:
    """Render a whole figure (title + each panel, blank-line separated)."""
    parts = [f"== {title} ==", ""]
    for p in panels:
        parts.append(render_panel(p))
        parts.append("")
    return "\n".join(parts)
