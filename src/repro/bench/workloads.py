"""Workload generators mirroring the paper's microbenchmarks.

Two families, matching Section III:

* :func:`run_atomic_mix` — the Figure 3 workload: every task performs a
  fixed number of operations against an array of atomic cells distributed
  cyclically over locales, with the paper's mix of 25% read / 25% write /
  25% compare-and-swap / 25% exchange.  The cell type is selectable:
  Chapel's ``atomic int`` baseline, ``AtomicObject``, or
  ``AtomicObject (ABA)``.

* :func:`run_epoch_workload` — the Figures 4–7 workload (the paper's
  Listing 5): pre-allocate ``num_objects`` objects with a controlled
  fraction living on a *remote* locale relative to the task that will
  retire them, then ``forall`` over them with a task-private token doing
  ``pin / [deferDelete] / unpin`` and optionally calling ``tryReclaim``
  every *k* iterations; reclamation frequency and the final cleanup are
  knobs so one generator covers sparse (Fig 4), dense (Fig 5), end-only
  (Fig 6) and read-only (Fig 7) variants.

Both return a :class:`WorkloadResult` with the virtual elapsed seconds and
communication/diagnostic snapshots, which the figure drivers turn into the
paper's series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..core.atomic_object import AtomicObject
from ..core.epoch_manager import EpochManager
from ..memory.address import NIL, GlobalAddress
from ..runtime.runtime import Runtime

__all__ = ["WorkloadResult", "run_atomic_mix", "run_epoch_workload"]


@dataclass
class WorkloadResult:
    """Outcome of one workload execution on one runtime configuration."""

    #: Virtual seconds for the timed region (the paper's y-axis).
    elapsed: float
    #: Total simulated operations issued by all tasks.
    operations: int
    #: Communication totals (GETs/PUTs/AMOs/AMs/forks/bulk).
    comm: Dict[str, int] = field(default_factory=dict)
    #: Extra per-workload diagnostics (epoch-manager stats, etc.).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        """Throughput in simulated op/s."""
        return self.operations / self.elapsed if self.elapsed > 0 else float("inf")


# ---------------------------------------------------------------------------
# Figure 3: atomic-operation mix
# ---------------------------------------------------------------------------


def run_atomic_mix(
    rt: Runtime,
    *,
    kind: str,
    ops_per_task: int,
    tasks_per_locale: int = 1,
    num_cells: Optional[int] = None,
) -> WorkloadResult:
    """Run the 25/25/25/25 read/write/CAS/exchange mix of Figure 3.

    ``kind`` is one of ``"atomic_int"``, ``"atomic_object"`` or
    ``"atomic_object_aba"``.  Cells are distributed cyclically; each task
    targets a deterministic pseudo-random cell per operation, so with more
    locales the remote fraction rises exactly as on a real Cyclic array.
    """
    if kind not in ("atomic_int", "atomic_object", "atomic_object_aba"):
        raise ValueError(f"unknown atomic-mix kind {kind!r}")
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    ncells = num_cells if num_cells is not None else max(64, 2 * ntasks)

    def main() -> WorkloadResult:
        if kind == "atomic_int":
            cells = [rt.atomic_int(0, locale=i % nloc) for i in range(ncells)]
            # Two distinct operand values per cell for CAS/exchange churn.
            operands: List[Any] = [1, 2]
        else:
            aba = kind == "atomic_object_aba"
            cells = [
                AtomicObject(rt, locale=i % nloc, aba_protection=aba)
                for i in range(ncells)
            ]
            # Pre-allocate two target objects per cell's locale to swap
            # between (the paper's workload swaps class instances).
            operands_by_locale = [
                [rt.new_obj(object(), locale=lid) for _ in range(2)]
                for lid in range(nloc)
            ]
            operands = operands_by_locale

        use_aba = kind == "atomic_object_aba"

        # One body per cell kind, dispatched *outside* the per-op loop: the
        # op stream (one randrange per op, 4-op cycle) is identical across
        # variants, so virtual time and comm counts don't depend on which
        # body runs — but the hot loop carries no per-op string compares.
        def body_int(task_idx: int) -> None:
            from ..runtime.context import current_context

            rng = current_context().rng
            # Random.randrange(n) is a thin, surprisingly expensive wrapper
            # over _randbelow(n) for a positive int bound; calling the
            # latter directly consumes the identical bit stream (so the op
            # sequence — and therefore virtual time and comm counts — is
            # unchanged) at a fraction of the call cost.
            randbelow = rng._randbelow
            # The 4-op mix cycles deterministically with op_i, so unroll it:
            # same cell draws, same operands, no per-op dispatch.
            whole = ops_per_task & ~3
            for op_i in range(0, whole, 4):
                cells[randbelow(ncells)].read()
                cells[randbelow(ncells)].write(op_i + 1)
                cells[randbelow(ncells)].compare_and_swap(0, op_i + 2)
                cells[randbelow(ncells)].exchange(op_i + 3)
            for op_i in range(whole, ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                if op == 0:
                    cell.read()
                elif op == 1:
                    cell.write(op_i)
                elif op == 2:
                    cell.compare_and_swap(0, op_i)
                else:
                    cell.exchange(op_i)

        def body_aba(task_idx: int) -> None:
            from ..runtime.context import current_context

            rng = current_context().rng
            # Random.randrange(n) is a thin, surprisingly expensive wrapper
            # over _randbelow(n) for a positive int bound; calling the
            # latter directly consumes the identical bit stream (so the op
            # sequence — and therefore virtual time and comm counts — is
            # unchanged) at a fraction of the call cost.
            randbelow = rng._randbelow
            for op_i in range(ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                target = operands[cell.home][op_i & 1]
                if op == 0:
                    cell.read_aba()
                elif op == 1:
                    cell.write_aba(target)
                elif op == 2:
                    snap = cell.read_aba()
                    cell.compare_and_swap_aba(snap, target)
                else:
                    cell.exchange_aba(target)

        def body_obj(task_idx: int) -> None:
            from ..runtime.context import current_context

            rng = current_context().rng
            # Random.randrange(n) is a thin, surprisingly expensive wrapper
            # over _randbelow(n) for a positive int bound; calling the
            # latter directly consumes the identical bit stream (so the op
            # sequence — and therefore virtual time and comm counts — is
            # unchanged) at a fraction of the call cost.
            randbelow = rng._randbelow
            for op_i in range(ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                target = operands[cell.home][op_i & 1]
                if op == 0:
                    cell.read()
                elif op == 1:
                    cell.write(target)
                elif op == 2:
                    expected = cell.read()
                    cell.compare_and_swap(expected, target)
                else:
                    cell.exchange(target)

        if kind == "atomic_int":
            body = body_int
        elif use_aba:
            body = body_aba
        else:
            body = body_obj

        rt.reset_measurements()
        with rt.timed() as t:
            # owner_of is omitted: the default cyclic distribution is
            # exactly idx % num_locales, without a per-item callback.
            rt.forall(range(ntasks), body, tasks_per_locale=tasks_per_locale)
        ops = ntasks * ops_per_task
        return WorkloadResult(
            elapsed=t.elapsed, operations=ops, comm=rt.comm_totals()
        )

    return rt.run(main)


# ---------------------------------------------------------------------------
# Figures 4-7: epoch-manager workloads (paper Listing 5)
# ---------------------------------------------------------------------------


def run_epoch_workload(
    rt: Runtime,
    *,
    ops_per_task: int,
    tasks_per_locale: int = 1,
    remote_percent: int = 0,
    delete: bool = True,
    reclaim_every: Optional[int] = None,
    cleanup_at_end: bool = True,
    manager_kwargs: Optional[Dict[str, Any]] = None,
) -> WorkloadResult:
    """Run the Listing 5 microbenchmark.

    Parameters
    ----------
    remote_percent:
        Percentage (0/50/100) of objects allocated on a locale *different*
        from the task that retires them — the Figures 4–6 x-axis variant.
    delete:
        When False the body only pins/unpins (Figure 7's read-only
        workload).
    reclaim_every:
        Call ``tok.tryReclaim()`` every this-many iterations (1024 for
        Figure 4, 1 for Figure 5, ``None`` = never, as in Figures 6/7).
    cleanup_at_end:
        Include ``manager.clear()`` in the timed region (Figure 6's
        "reclamation only performed at end" and general teardown).
    """
    if not (0 <= remote_percent <= 100):
        raise ValueError("remote_percent must be within [0, 100]")
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    num_objects = ntasks * ops_per_task

    def main() -> WorkloadResult:
        em = EpochManager(rt, **(manager_kwargs or {}))

        # Pre-allocate the objects *outside* the timed region (the paper
        # randomizes placement before the loop).  Object i is iterated by
        # the task on locale (i % nloc); with probability remote_percent it
        # is allocated on the next locale over instead (guaranteed remote).
        objs: List[GlobalAddress] = []
        if delete:
            import random as _random

            rng = _random.Random(rt.config.seed ^ 0x9E3779B9)
            for i in range(num_objects):
                owner = i % nloc
                if nloc > 1 and rng.randrange(100) < remote_percent:
                    target = (owner + 1 + rng.randrange(nloc - 1)) % nloc
                else:
                    target = owner
                objs.append(rt.new_obj(object(), locale=target))
        else:
            objs = [NIL] * num_objects  # placeholders; body ignores them

        class _TaskState:
            """Listing 5's task intents: a token plus the `M` counter."""

            __slots__ = ("tok", "m")

            def __init__(self) -> None:
                self.tok = em.register()
                self.m = 0

            def close(self) -> None:  # forall auto-cleanup hook
                self.tok.unregister()

        def body(item_idx: int, st: "_TaskState") -> None:
            tok = st.tok
            tok.pin()
            if delete:
                tok.defer_delete(objs[item_idx])
            tok.unpin()
            if reclaim_every is not None:
                st.m += 1
                if st.m % reclaim_every == 0:
                    tok.try_reclaim()

        rt.reset_measurements()
        with rt.timed() as t:
            # owner_of omitted: default cyclic distribution == idx % nloc.
            rt.forall(
                range(num_objects),
                body,
                task_init=_TaskState,
                tasks_per_locale=tasks_per_locale,
            )
            if cleanup_at_end:
                em.clear()
        stats = em.stats.as_dict()
        leftovers = em.pending_count()
        if not cleanup_at_end:
            em.clear()
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=num_objects,
            comm=rt.comm_totals(),
            extra={"em": stats, "pending_after": leftovers},
        )

    return rt.run(main)
