"""Workload generators mirroring the paper's microbenchmarks.

Two families, matching Section III:

* :func:`run_atomic_mix` — the Figure 3 workload: every task performs a
  fixed number of operations against an array of atomic cells distributed
  cyclically over locales, with the paper's mix of 25% read / 25% write /
  25% compare-and-swap / 25% exchange.  The cell type is selectable:
  Chapel's ``atomic int`` baseline, ``AtomicObject``, or
  ``AtomicObject (ABA)``.

* :func:`run_epoch_workload` — the Figures 4–7 workload (the paper's
  Listing 5): pre-allocate ``num_objects`` objects with a controlled
  fraction living on a *remote* locale relative to the task that will
  retire them, then ``forall`` over them with a task-private token doing
  ``pin / [deferDelete] / unpin`` and optionally calling ``tryReclaim``
  every *k* iterations; reclamation frequency and the final cleanup are
  knobs so one generator covers sparse (Fig 4), dense (Fig 5), end-only
  (Fig 6) and read-only (Fig 7) variants.

Both return a :class:`WorkloadResult` with the virtual elapsed seconds and
communication/diagnostic snapshots, which the figure drivers turn into the
paper's series.
"""

from __future__ import annotations

import bisect
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.atomic_object import AtomicObject
from ..engine import (
    compiled_plan,
    fast_randbelow,
    mix_column_fn,
    note_phase,
    run_alloc_phase,
    run_ebr_epoch_phase,
    run_epoch_workload_phase,
    run_guard_epoch_phase,
    run_uniform_atomic_phase,
    serial_tasks,
    zipf_column_fn,
)
from ..memory.address import NIL, GlobalAddress
from ..reclaim import make_reclaimer
from ..runtime.axes import compiled_requested
from ..runtime.runtime import Runtime

__all__ = [
    "WorkloadResult",
    "run_atomic_mix",
    "run_epoch_workload",
    "run_atomic_hotspot",
    "run_epoch_mixed",
    "run_producer_consumer",
    "run_multi_structure",
]


def _phase_tier(rt: Runtime, kind: str, **shape: Any) -> str:
    """Resolve a phase's execution tier under the runtime's engine.

    Interpreted engines skip the whole machinery (no log entry — nothing
    was asked for).  Compiled engines consult
    :func:`~repro.engine.coverage.compiled_plan` with the runtime's
    resolved trace detail plus the workload ``shape``, record the
    effective tier on the runtime's engine log, and — under
    ``compiled-strict`` — raise on any interpreter fallback.
    """
    if not compiled_requested(rt.config.engine):
        return "interpreted"
    tier, reason = compiled_plan(kind, trace=rt.config.trace, **shape)
    return note_phase(rt, kind, tier, reason)


def _policy_wants(rt: Runtime) -> Dict[str, bool]:
    """The resolved policy's fact appetites, as ``compiled_plan`` kwargs.

    A pin- or retire-time-tracking policy (grace — docs/POLICY.md) reads
    virtual-time facts the columnar replay never records (it charges pins
    without calling ``pin()``), so those shapes take the serial tier.
    """
    policy = rt.config.resolved_policy().make_epoch_policy()
    return {
        "wants_pin_times": policy.wants_pin_times,
        "wants_retire_times": policy.wants_retire_times,
    }


def _reclaimer_for(rt: Runtime, manager_kwargs: Optional[Dict[str, Any]] = None):
    """The runtime-configured reclaimer for a workload.

    ``manager_kwargs`` are :class:`~repro.core.epoch_manager.EpochManager`
    ablation knobs (``use_election``/``use_scatter``/``epoch_cycle``) and
    therefore require the ``"ebr"`` scheme — rejected with a clear error
    otherwise, instead of an opaque ``TypeError`` from another scheme's
    constructor.  On the default (``"ebr"``) configuration this
    constructs exactly the ``EpochManager`` the generators used to build
    directly, wrapped in the zero-cost adapter — virtual results are
    bit-identical.
    """
    scheme = rt.config.reclaimer
    if manager_kwargs and scheme != "ebr":
        raise ValueError(
            f"manager_kwargs {sorted(manager_kwargs)} are EpochManager"
            f" (ebr) ablation knobs; the runtime is configured with"
            f" reclaimer={scheme!r}"
        )
    return make_reclaimer(rt, scheme, **(manager_kwargs or {}))


@dataclass
class WorkloadResult:
    """Outcome of one workload execution on one runtime configuration."""

    #: Virtual seconds for the timed region (the paper's y-axis).
    elapsed: float
    #: Total simulated operations issued by all tasks.
    operations: int
    #: Communication totals (GETs/PUTs/AMOs/AMs/forks/bulk).
    comm: Dict[str, int] = field(default_factory=dict)
    #: Extra per-workload diagnostics (epoch-manager stats, etc.).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def ops_per_second(self) -> float:
        """Throughput in simulated op/s."""
        return self.operations / self.elapsed if self.elapsed > 0 else float("inf")


# ---------------------------------------------------------------------------
# Figure 3: atomic-operation mix
# ---------------------------------------------------------------------------


def run_atomic_mix(
    rt: Runtime,
    *,
    kind: str,
    ops_per_task: int,
    tasks_per_locale: int = 1,
    num_cells: Optional[int] = None,
) -> WorkloadResult:
    """Run the 25/25/25/25 read/write/CAS/exchange mix of Figure 3.

    ``kind`` is one of ``"atomic_int"``, ``"atomic_object"`` or
    ``"atomic_object_aba"``.  Cells are distributed cyclically; each task
    targets a deterministic pseudo-random cell per operation, so with more
    locales the remote fraction rises exactly as on a real Cyclic array.
    """
    if kind not in ("atomic_int", "atomic_object", "atomic_object_aba"):
        raise ValueError(f"unknown atomic-mix kind {kind!r}")
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    ncells = num_cells if num_cells is not None else max(64, 2 * ntasks)

    if _phase_tier(rt, "atomic_mix") == "columnar":
        # Compiled lowering: every variant's op stream is one cell draw
        # per op, so the phase replays from target columns alone (shared
        # across kinds through the compilation cache — the draw stream is
        # kind-independent).  Cells and operand objects are never
        # materialized — creating them charges nothing, and nothing
        # observes them after the phase.  The integer mix charges one
        # narrow route per op; the object bodies charge the cycle-
        # dependent ``(1, 1, 2, 1)`` pattern (their CAS case is a read
        # plus a CAS on the same cell) on the narrow (plain) or wide
        # (ABA) route row.  Full-detail tracing takes the documented
        # interpreter fallback (docs/OBSERVABILITY.md): the replay does
        # not emit per-op events.
        def main_compiled() -> WorkloadResult:
            if kind != "atomic_int":
                # The interpreted object bodies allocate two operand
                # objects per locale on the *root* clock before the
                # measured window; replaying those alloc charges keeps
                # the timed window's float base — and hence elapsed —
                # bit-identical.
                from ..runtime.context import current_context

                ctx = current_context()
                for lid in range(nloc):
                    rt.network.alloc(ctx, lid)
                    rt.network.alloc(ctx, lid)
            rt.reset_measurements()
            with rt.timed() as t:
                run_uniform_atomic_phase(
                    rt,
                    homes=[i % nloc for i in range(ncells)],
                    tasks_per_locale=tasks_per_locale,
                    column_fn=mix_column_fn(ops_per_task, ncells),
                    op_charges=(
                        None if kind == "atomic_int" else (1, 1, 2, 1)
                    ),
                    route_row=2 if kind == "atomic_object_aba" else 0,
                    column_key=("mix", ops_per_task, ncells),
                )
            return WorkloadResult(
                elapsed=t.elapsed,
                operations=ntasks * ops_per_task,
                comm=rt.comm_totals(),
            )

        return rt.run(main_compiled)

    def main() -> WorkloadResult:
        if kind == "atomic_int":
            cells = [rt.atomic_int(0, locale=i % nloc) for i in range(ncells)]
            # Two distinct operand values per cell for CAS/exchange churn.
            operands: List[Any] = [1, 2]
        else:
            aba = kind == "atomic_object_aba"
            cells = [
                AtomicObject(rt, locale=i % nloc, aba_protection=aba)
                for i in range(ncells)
            ]
            # Pre-allocate two target objects per cell's locale to swap
            # between (the paper's workload swaps class instances).
            operands_by_locale = [
                [rt.new_obj(object(), locale=lid) for _ in range(2)]
                for lid in range(nloc)
            ]
            operands = operands_by_locale

        use_aba = kind == "atomic_object_aba"

        # One body per cell kind, dispatched *outside* the per-op loop: the
        # op stream (one randrange per op, 4-op cycle) is identical across
        # variants, so virtual time and comm counts don't depend on which
        # body runs — but the hot loop carries no per-op string compares.
        def body_int(task_idx: int) -> None:
            from ..runtime.context import current_context

            randbelow = fast_randbelow(current_context().rng)
            # The 4-op mix cycles deterministically with op_i, so unroll it:
            # same cell draws, same operands, no per-op dispatch.
            whole = ops_per_task & ~3
            for op_i in range(0, whole, 4):
                cells[randbelow(ncells)].read()
                cells[randbelow(ncells)].write(op_i + 1)
                cells[randbelow(ncells)].compare_and_swap(0, op_i + 2)
                cells[randbelow(ncells)].exchange(op_i + 3)
            for op_i in range(whole, ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                if op == 0:
                    cell.read()
                elif op == 1:
                    cell.write(op_i)
                elif op == 2:
                    cell.compare_and_swap(0, op_i)
                else:
                    cell.exchange(op_i)

        def body_aba(task_idx: int) -> None:
            from ..runtime.context import current_context

            randbelow = fast_randbelow(current_context().rng)
            for op_i in range(ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                target = operands[cell.home][op_i & 1]
                if op == 0:
                    cell.read_aba()
                elif op == 1:
                    cell.write_aba(target)
                elif op == 2:
                    snap = cell.read_aba()
                    cell.compare_and_swap_aba(snap, target)
                else:
                    cell.exchange_aba(target)

        def body_obj(task_idx: int) -> None:
            from ..runtime.context import current_context

            randbelow = fast_randbelow(current_context().rng)
            for op_i in range(ops_per_task):
                cell = cells[randbelow(ncells)]
                op = op_i & 3
                target = operands[cell.home][op_i & 1]
                if op == 0:
                    cell.read()
                elif op == 1:
                    cell.write(target)
                elif op == 2:
                    expected = cell.read()
                    cell.compare_and_swap(expected, target)
                else:
                    cell.exchange(target)

        if kind == "atomic_int":
            body = body_int
        elif use_aba:
            body = body_aba
        else:
            body = body_obj

        rt.reset_measurements()
        with rt.timed() as t:
            # owner_of is omitted: the default cyclic distribution is
            # exactly idx % num_locales, without a per-item callback.
            rt.forall(range(ntasks), body, tasks_per_locale=tasks_per_locale)
        ops = ntasks * ops_per_task
        return WorkloadResult(
            elapsed=t.elapsed, operations=ops, comm=rt.comm_totals()
        )

    return rt.run(main)


# ---------------------------------------------------------------------------
# Figures 4-7: epoch-manager workloads (paper Listing 5)
# ---------------------------------------------------------------------------


def run_epoch_workload(
    rt: Runtime,
    *,
    ops_per_task: int,
    tasks_per_locale: int = 1,
    remote_percent: int = 0,
    delete: bool = True,
    reclaim_every: Optional[int] = None,
    cleanup_at_end: bool = True,
    manager_kwargs: Optional[Dict[str, Any]] = None,
) -> WorkloadResult:
    """Run the Listing 5 microbenchmark.

    Parameters
    ----------
    remote_percent:
        Percentage (0/50/100) of objects allocated on a locale *different*
        from the task that retires them — the Figures 4–6 x-axis variant.
    delete:
        When False the body only pins/unpins (Figure 7's read-only
        workload).
    reclaim_every:
        Call ``tok.tryReclaim()`` every this-many iterations (1024 for
        Figure 4, 1 for Figure 5, ``None`` = never, as in Figures 6/7).
    cleanup_at_end:
        Include ``manager.clear()`` in the timed region (Figure 6's
        "reclamation only performed at end" and general teardown).
    """
    if not (0 <= remote_percent <= 100):
        raise ValueError("remote_percent must be within [0, 100]")
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    num_objects = ntasks * ops_per_task

    def main() -> WorkloadResult:
        em = _reclaimer_for(rt, manager_kwargs)

        # Compiled lowering (docs/ENGINE.md): with one task per locale and
        # no mid-phase ``tryReclaim`` the per-item charge stream is fixed
        # for every scheme, so the forall replays columnar — in-task
        # register/unregister run for real on the replayed task clocks.
        # ``reclaim_every`` (schedule-scoped scan elections) and >1 task
        # per locale (in-forall token reuse follows real arrival order)
        # fall back; a pin/retire-time-tracking policy takes the serial
        # tier (real bodies, canonical pool-size-1 schedule, exact facts).
        tier = _phase_tier(
            rt,
            "epoch",
            tasks_per_locale=tasks_per_locale,
            reclaim_every=reclaim_every,
            **_policy_wants(rt),
        )

        # Pre-allocate the objects *outside* the timed region (the paper
        # randomizes placement before the loop).  Object i is iterated by
        # the task on locale (i % nloc); with probability remote_percent it
        # is allocated on the next locale over instead (guaranteed remote).
        objs: List[GlobalAddress] = []
        if delete:
            import random as _random

            rng = _random.Random(rt.config.seed ^ 0x9E3779B9)
            # Same bit stream as randrange, minus the wrapper (opstream).
            randbelow = fast_randbelow(rng)
            targets: List[int] = []
            for i in range(num_objects):
                owner = i % nloc
                if nloc > 1 and randbelow(100) < remote_percent:
                    target = (owner + 1 + randbelow(nloc - 1)) % nloc
                else:
                    target = owner
                targets.append(target)
            if tier != "interpreted":
                # Same placements, same charges — replayed in one batch
                # (the loop runs on the root clock before the timed
                # window, so skipping the replay would shift the window's
                # float base and perturb ``elapsed`` by an ulp).
                objs = run_alloc_phase(rt, targets)
            else:
                objs = [rt.new_obj(object(), locale=tg) for tg in targets]
        else:
            objs = [NIL] * num_objects  # placeholders; body ignores them

        class _TaskState:
            """Listing 5's task intents: a token plus the `M` counter."""

            __slots__ = ("tok", "m")

            def __init__(self) -> None:
                self.tok = em.register()
                self.m = 0

            def close(self) -> None:  # forall auto-cleanup hook
                self.tok.unregister()

        def body(item_idx: int, st: "_TaskState") -> None:
            tok = st.tok
            tok.pin()
            if delete:
                tok.defer_delete(objs[item_idx])
            tok.unpin()
            if reclaim_every is not None:
                st.m += 1
                if st.m % reclaim_every == 0:
                    tok.try_reclaim()

        rt.reset_measurements()
        with rt.timed() as t:
            if tier == "columnar":
                run_epoch_workload_phase(
                    rt,
                    em=em,
                    objs=objs,
                    num_objects=num_objects,
                    delete=delete,
                )
            elif tier == "serial":
                with serial_tasks(rt):
                    rt.forall(
                        range(num_objects),
                        body,
                        task_init=_TaskState,
                        tasks_per_locale=tasks_per_locale,
                    )
            else:
                # owner_of omitted: default cyclic distribution == idx % nloc.
                rt.forall(
                    range(num_objects),
                    body,
                    task_init=_TaskState,
                    tasks_per_locale=tasks_per_locale,
                )
            if cleanup_at_end:
                em.clear()
        stats = em.stats()
        leftovers = em.pending_count()
        if not cleanup_at_end:
            em.clear()
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=num_objects,
            comm=rt.comm_totals(),
            extra={
                "em": stats,
                "reclaimer": rt.config.reclaimer,
                "pending_after": leftovers,
            },
        )

    return rt.run(main)


# ---------------------------------------------------------------------------
# Scenario workloads (beyond the paper's grid; see repro.bench.scenarios)
# ---------------------------------------------------------------------------
#
# Determinism contract: every generator below produces virtual-time and
# comm-diagnostic results that are bit-identical across repeated runs and
# worker-pool sizes.  The rules that make that true (and that any new
# generator must follow):
#
# * fixed operation streams — per-task op counts and targets come from the
#   seeded task RNG or precomputed tables, never from values another task
#   wrote (CAS *outcomes* may differ between real schedules, but the cost
#   charged per attempt is route-determined and the attempt count is fixed);
# * no unbounded retry loops against state another task mutates — shared
#   structures are driven by exactly one task at a time (phase-exclusive
#   ownership), so their internal CAS loops always succeed first try;
# * `tryReclaim` only from the root task at phase boundaries (a concurrent
#   election/scan is decided by *real-time* interleaving and is therefore
#   scheduling-dependent — measured directly in tests/test_scenarios.py).
#   The same discipline covers every scheme in repro.reclaim: QSBR/IBR
#   reclamation and quiescent-point announcements are root-driven via
#   `phase_boundary()` + `try_reclaim()`, and hazard-pointer threshold
#   scans are sound mid-phase only because structure ownership is
#   phase-exclusive (no other guard's hazard slots can ever name an
#   address this guard retired, so scan outcomes are schedule-independent);
# * token registration outside the timed region — `register`/`unregister`
#   are lock-free CAS loops over a shared per-locale free list, charged per
#   *attempt*, so registering from inside a `forall` with several workers
#   per locale costs a scheduling-dependent amount (see :class:`_TokenBank`);
# * with MORE than one worker per locale, reclaim only at the END: a
#   locale's workers saturate shared cache-line service points (limbo-list
#   heads), and while per-phase finish times stay order-independent, the
#   *split* of a saturated line's state between `next_free` and its idle
#   bank is not.  A mid-workload root scan touching those lines converts
#   that hidden residue into virtual-time noise in later contended rounds;
#   as the final phase before the measurement ends it is harmless, because
#   nothing consults the banks afterwards.  With one worker per locale no
#   line ever saturates from two real threads, so phase-boundary
#   reclamation is exactly deterministic.


class _TokenBank:
    """Pre-registered tokens, handed to worker tasks at zero virtual cost.

    The root task registers ``per_locale`` tokens on every locale (via
    ``rt.on``, outside the timed region), so the allocated-token set — and
    with it the cost of every ``tryReclaim`` scan — is fixed for the whole
    workload.  A worker task picks its token by ``task_id % per_locale``:
    task ids are assigned in spawn-submission order (scheduling-
    independent), ``forall`` spawns a locale's workers with consecutive
    ids, and the selection itself charges no virtual time — so *which*
    token (which cache line) each worker's pins hammer is identical on
    every run.  A real-lock hand-off here would be subtly wrong: pop order
    follows real-thread arrival, which reshuffles the worker-to-line
    mapping between runs and perturbs service-point interleavings.

    Scheme-generic: ``em`` is any reclaimer implementing the guard
    protocol (:mod:`repro.reclaim`); the bank stores whatever
    ``register()`` returns.
    """

    def __init__(self, rt: Runtime, em, per_locale: int) -> None:
        self._per_locale = per_locale
        self._tokens: List[List[Any]] = []
        for lid in range(rt.num_locales):
            with rt.on(lid):
                self._tokens.append([em.register() for _ in range(per_locale)])

    def task_init(self) -> "_TokenSlot":
        """Factory suitable for ``forall(task_init=...)``."""
        return _TokenSlot(self)


class _TokenSlot:
    """One worker task's token lease from a :class:`_TokenBank`."""

    __slots__ = ("tok",)

    def __init__(self, bank: _TokenBank) -> None:
        from ..runtime.context import current_context

        ctx = current_context()
        self.tok = bank._tokens[ctx.locale_id][ctx.task_id % bank._per_locale]


def _check_phased_reclaim(
    tasks_per_locale: int, rounds: int, reclaim_between_rounds: bool
) -> None:
    """Reject the combination the determinism notes above forbid.

    Mid-workload root reclamation with more than one worker per locale
    makes virtual time depend on real-thread scheduling (saturated-line
    idle-bank residue); fail fast instead of surfacing as a flaky
    determinism error under `scenarios --repeats`.
    """
    if reclaim_between_rounds and tasks_per_locale > 1 and rounds > 1:
        raise ValueError(
            "reclaim_between_rounds requires tasks_per_locale == 1 when"
            " rounds > 1: a mid-workload root scan after a phase where"
            " several workers shared a locale is not deterministic (see the"
            " determinism notes in repro.bench.workloads); use"
            " reclaim_between_rounds=False (end-only reclamation) instead"
        )


def run_atomic_hotspot(
    rt: Runtime,
    *,
    cell: str = "atomic_int",
    ops_per_task: int,
    tasks_per_locale: int = 1,
    num_cells: int = 64,
    zipf_exponent: float = 1.2,
) -> WorkloadResult:
    """Zipf-skewed hotspot variant of the Figure 3 atomic mix.

    Cell *ranks* are drawn from a truncated Zipf distribution with the
    given exponent, so a handful of cells — and, because cells are
    distributed cyclically, a handful of *locales*, locale 0 hottest —
    absorb most of the traffic.  Under ``ugni`` the hot locale's NIC
    pipeline is the contended resource; under ``none`` it is the progress
    thread serving active messages, which saturates far sooner.  The op
    mix is the paper's 25/25/25/25 read/write/CAS/exchange cycle.
    """
    if cell not in ("atomic_int", "atomic_object"):
        raise ValueError(f"unknown hotspot cell kind {cell!r}")
    if num_cells < 1:
        raise ValueError(f"num_cells must be >= 1, got {num_cells}")
    if zipf_exponent <= 0:
        raise ValueError(f"zipf_exponent must be > 0, got {zipf_exponent}")
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale

    # Truncated-Zipf cumulative weights over cell ranks; one rng.random()
    # draw + bisect per op keeps the stream deterministic per task.
    weights = [1.0 / ((rank + 1) ** zipf_exponent) for rank in range(num_cells)]
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc)
    total_w = cdf[-1]

    if _phase_tier(rt, "atomic_hotspot") == "columnar":
        # Compiled lowering: same shape as the uniform mix — one CDF draw
        # per op yields the target column (kind-independent, so the cache
        # shares it between cell kinds); the object body adds the
        # ``(1, 1, 2, 1)`` cycle charges on the same narrow route.
        # Full-detail tracing falls back to the interpreter (see above).
        def main_compiled() -> WorkloadResult:
            if cell != "atomic_int":
                # Root-clock operand allocations, as in the uniform mix.
                from ..runtime.context import current_context

                ctx = current_context()
                for lid in range(nloc):
                    rt.network.alloc(ctx, lid)
                    rt.network.alloc(ctx, lid)
            rt.reset_measurements()
            with rt.timed() as t:
                run_uniform_atomic_phase(
                    rt,
                    homes=[i % nloc for i in range(num_cells)],
                    tasks_per_locale=tasks_per_locale,
                    column_fn=zipf_column_fn(ops_per_task, cdf, total_w),
                    op_charges=(
                        None if cell == "atomic_int" else (1, 1, 2, 1)
                    ),
                    column_key=(
                        "zipf", ops_per_task, num_cells, zipf_exponent
                    ),
                )
            return WorkloadResult(
                elapsed=t.elapsed,
                operations=ntasks * ops_per_task,
                comm=rt.comm_totals(),
                extra={"hot_cell_share": weights[0] / total_w},
            )

        return rt.run(main_compiled)

    def main() -> WorkloadResult:
        if cell == "atomic_int":
            cells = [rt.atomic_int(0, locale=i % nloc) for i in range(num_cells)]
        else:
            cells = [AtomicObject(rt, locale=i % nloc) for i in range(num_cells)]
            operands_by_locale = [
                [rt.new_obj(object(), locale=lid) for _ in range(2)]
                for lid in range(nloc)
            ]

        def body_int(task_idx: int) -> None:
            from ..runtime.context import current_context

            random = current_context().rng.random
            pick = bisect.bisect_left
            for op_i in range(ops_per_task):
                c = cells[pick(cdf, random() * total_w)]
                op = op_i & 3
                if op == 0:
                    c.read()
                elif op == 1:
                    c.write(op_i)
                elif op == 2:
                    c.compare_and_swap(0, op_i)
                else:
                    c.exchange(op_i)

        def body_obj(task_idx: int) -> None:
            from ..runtime.context import current_context

            random = current_context().rng.random
            pick = bisect.bisect_left
            for op_i in range(ops_per_task):
                c = cells[pick(cdf, random() * total_w)]
                op = op_i & 3
                target = operands_by_locale[c.home][op_i & 1]
                if op == 0:
                    c.read()
                elif op == 1:
                    c.write(target)
                elif op == 2:
                    expected = c.read()
                    c.compare_and_swap(expected, target)
                else:
                    c.exchange(target)

        body = body_int if cell == "atomic_int" else body_obj
        rt.reset_measurements()
        with rt.timed() as t:
            rt.forall(range(ntasks), body, tasks_per_locale=tasks_per_locale)
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=ntasks * ops_per_task,
            comm=rt.comm_totals(),
            extra={"hot_cell_share": weights[0] / total_w},
        )

    return rt.run(main)


def run_epoch_mixed(
    rt: Runtime,
    *,
    ops_per_task: int,
    tasks_per_locale: int = 1,
    write_percent: int = 25,
    remote_percent: int = 0,
    rounds: int = 1,
    reclaim_between_rounds: bool = True,
    manager_kwargs: Optional[Dict[str, Any]] = None,
) -> WorkloadResult:
    """Mixed pin/deferDelete traffic: a read-write ratio over Listing 5.

    Every iteration pins and unpins; ``write_percent`` percent of them
    (chosen by a seeded table, so the stream is deterministic) also retire
    an object.  The iteration space is split into ``rounds`` consecutive
    ``forall`` phases with a root-task ``tryReclaim`` between phases —
    reclamation interleaves with ongoing traffic at epoch granularity
    without the scheduling-dependent election races a concurrent in-loop
    ``tryReclaim`` would introduce.
    """
    if not (0 <= write_percent <= 100):
        raise ValueError("write_percent must be within [0, 100]")
    if not (0 <= remote_percent <= 100):
        raise ValueError("remote_percent must be within [0, 100]")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    _check_phased_reclaim(tasks_per_locale, rounds, reclaim_between_rounds)
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    num_items = ntasks * ops_per_task

    import random as _random

    table_rng = _random.Random(rt.config.seed ^ 0x5DEECE66D)
    # Same bit stream as randrange(100), minus the wrapper (opstream).
    _rb = fast_randbelow(table_rng)
    is_write = [_rb(100) < write_percent for _ in range(num_items)]

    def main() -> WorkloadResult:
        em = _reclaimer_for(rt, manager_kwargs)

        # Every scheme's pin/defer/unpin round has a fixed charge stream
        # (no mid-phase epoch/era/interval advances — reclamation is
        # root-driven between rounds), so the rounds lower to a batch
        # replay: EBR against the token/limbo/pool cells, hp/qsbr/ibr
        # against the guard buffers (threshold scans run real — see
        # repro.engine.executor).  A pin- or retire-time-tracking policy
        # (grace — docs/POLICY.md) takes the serial tier instead: the
        # columnar replay charges pins without calling ``pin()``, so the
        # virtual-time facts the policy's decisions read would be missing;
        # inline-serial execution runs the real bodies in the canonical
        # pool-size-1 schedule and records them exactly.  Full-detail
        # tracing stays the documented interpreter fallback
        # (docs/OBSERVABILITY.md): no tier emits per-op events.
        tier = _phase_tier(rt, "epoch_mixed", **_policy_wants(rt))

        objs: List[GlobalAddress] = [NIL] * num_items
        place_rng = _random.Random(rt.config.seed ^ 0x9E3779B9)
        randbelow = fast_randbelow(place_rng)
        alloc_idx: List[int] = []
        targets: List[int] = []
        for i in range(num_items):
            if not is_write[i]:
                continue
            owner = i % nloc
            if nloc > 1 and randbelow(100) < remote_percent:
                target = (owner + 1 + randbelow(nloc - 1)) % nloc
            else:
                target = owner
            alloc_idx.append(i)
            targets.append(target)
        if tier != "interpreted":
            # Batch-replay the placement allocations (run_alloc_phase):
            # same root-clock charges, so the timed window starts on the
            # same float base as the interpreted loop.
            for i, addr in zip(alloc_idx, run_alloc_phase(rt, targets)):
                objs[i] = addr
        else:
            for i, tg in zip(alloc_idx, targets):
                objs[i] = rt.new_obj(object(), locale=tg)

        bank = _TokenBank(rt, em, tasks_per_locale)

        def body(item_idx: int, st: "_TokenSlot") -> None:
            tok = st.tok
            tok.pin()
            if is_write[item_idx]:
                tok.defer_delete(objs[item_idx])
            tok.unpin()

        # Round bounds are aligned to the locale count so that item i is
        # always iterated by locale (i % nloc) — the invariant the object
        # placement above (remote_percent) is defined against.
        bounds = [num_items * r // rounds // nloc * nloc for r in range(rounds)]
        bounds.append(num_items)
        scheme = rt.config.reclaimer
        advances = 0
        rt.reset_measurements()
        with rt.timed() as t:
            for r in range(rounds):
                chunk = range(bounds[r], bounds[r + 1])
                if len(chunk) == 0:
                    continue
                if tier == "columnar" and scheme == "ebr":
                    run_ebr_epoch_phase(
                        rt,
                        items=chunk,
                        is_write=is_write,
                        objs=objs,
                        tokens=bank._tokens,
                        tokens_per_locale=tasks_per_locale,
                    )
                elif tier == "columnar":
                    run_guard_epoch_phase(
                        rt,
                        scheme=scheme,
                        items=chunk,
                        is_write=is_write,
                        objs=objs,
                        guards=bank._tokens,
                        guards_per_locale=tasks_per_locale,
                    )
                elif tier == "serial":
                    with serial_tasks(rt):
                        rt.forall(
                            chunk,
                            body,
                            task_init=bank.task_init,
                            tasks_per_locale=tasks_per_locale,
                        )
                else:
                    rt.forall(
                        chunk,
                        body,
                        task_init=bank.task_init,
                        tasks_per_locale=tasks_per_locale,
                    )
                if reclaim_between_rounds and r + 1 < rounds:
                    em.phase_boundary()
                    if em.try_reclaim():
                        advances += 1
            em.clear()
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=num_items,
            comm=rt.comm_totals(),
            extra={
                "em": em.stats(),
                "reclaimer": rt.config.reclaimer,
                "writes": sum(is_write),
                "root_advances": advances,
            },
        )

    return rt.run(main)


def _churn_partners(rt: Runtime, ntasks: int, pairing: str) -> List[int]:
    """The consume-phase partner permutation for :func:`run_producer_consumer`.

    Always a bijection over slots, so every structure keeps exactly one
    mutator per phase (the determinism discipline above).  Computed from
    locale ids and the topology only — never from runtime state — so the
    mapping is identical on every run.

    * ``"ring"`` — slot *i* drains slot *i+1* (the legacy shape).
    * ``"near"`` — the candidate permutation (adjacent-pair involution or
      any uniform rotation) that *minimizes* total topology distance —
      rack-affine placement: on ``hier`` shapes with sibling locales the
      involution wins (drain your coherent socket sibling); on shapes
      with no coherent siblings the closest available rung wins instead
      of silently pretending to be socket-local.  An odd slot count
      leaves the involution's last slot draining its own (most local)
      structure.
    * ``"far"`` — the uniform rotation that *maximizes* total topology
      distance (smallest offset wins ties, so flat topologies reduce to
      the ring): deliberately anti-local cross-node/cross-group traffic.
    """
    if pairing == "ring":
        return [(i + 1) % ntasks for i in range(ntasks)]
    if pairing not in ("near", "far"):
        raise ValueError(
            f"unknown churn pairing {pairing!r}; expected one of"
            f" ['far', 'near', 'ring']"
        )
    nloc = rt.num_locales
    topo = rt.network.topology

    def total_distance(partners: List[int]) -> int:
        return sum(
            topo.distance(i % nloc, partners[i] % nloc) for i in range(ntasks)
        )

    if pairing == "near":
        involution = list(range(ntasks))
        for i in range(0, ntasks - 1, 2):
            involution[i], involution[i + 1] = i + 1, i
        candidates = [involution] + [
            [(i + d) % ntasks for i in range(ntasks)]
            for d in range(1, ntasks)
        ]
        return min(candidates, key=total_distance)
    # "far": rotations only (the involution can never beat the best
    # rotation at maximizing, and rotations keep the traffic a cycle).
    best, best_score = [(i + 1) % ntasks for i in range(ntasks)], -1
    for d in range(1, ntasks):
        candidate = [(i + d) % ntasks for i in range(ntasks)]
        score = total_distance(candidate)
        if score > best_score:
            best, best_score = candidate, score
    return best


def run_producer_consumer(
    rt: Runtime,
    *,
    structure: str = "queue",
    items_per_task: int,
    tasks_per_locale: int = 1,
    rounds: int = 2,
    reclaim_between_rounds: bool = True,
    pairing: str = "ring",
) -> WorkloadResult:
    """Producer-consumer churn over the non-blocking queue or stack.

    One structure per task slot, homed on the slot's locale and run in the
    plain-CAS mode (``aba_protection=False``) under EBR — the RDMA fast
    path the paper builds the reclamation system to enable.  Each round
    has a produce phase (slot *i* fills its own, locale-local structure)
    and a consume phase (slot *i* drains its partner's structure — remote
    CAS/GET traffic), with retirement of unlinked nodes deferred through
    task tokens.  ``pairing`` picks the consumer-to-producer mapping (see
    :func:`_churn_partners`): the legacy ring, topology-``near``
    (rack-affine: drain your socket sibling), or topology-``far``
    (anti-local: drain across the uplinks).  Phases are separate
    ``forall`` joins, so every structure has exactly one mutator at a
    time: churn comes from allocation / retirement / address reuse, not
    from scheduling-dependent CAS races.
    """
    from ..structures.msqueue import LockFreeQueue
    from ..structures.treiber_stack import LockFreeStack

    if structure not in ("queue", "stack"):
        raise ValueError(f"unknown churn structure {structure!r}")
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    _check_phased_reclaim(tasks_per_locale, rounds, reclaim_between_rounds)
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale
    partners = _churn_partners(rt, ntasks, pairing)

    def main() -> WorkloadResult:
        em = _reclaimer_for(rt)
        if structure == "queue":
            structs = [
                LockFreeQueue(rt, locale=i % nloc, aba_protection=False)
                for i in range(ntasks)
            ]
        else:
            structs = [
                LockFreeStack(rt, locale=i % nloc, aba_protection=False)
                for i in range(ntasks)
            ]

        bank = _TokenBank(rt, em, tasks_per_locale)

        def produce(slot: int, st: "_TokenSlot") -> None:
            tok = st.tok
            s = structs[slot]
            if structure == "queue":
                for v in range(items_per_task):
                    tok.pin()
                    s.enqueue(v, tok)
                    tok.unpin()
            else:
                for v in range(items_per_task):
                    tok.pin()
                    s.push(v)
                    tok.unpin()

        def consume(slot: int, st: "_TokenSlot") -> None:
            tok = st.tok
            s = structs[partners[slot]]
            if structure == "queue":
                for _ in range(items_per_task):
                    tok.pin()
                    s.try_dequeue(tok)
                    tok.unpin()
            else:
                for _ in range(items_per_task):
                    tok.pin()
                    s.try_pop(tok)
                    tok.unpin()

        # Structure traversals are value-dependent (CAS loops over live
        # heads), so churn never lowers to columns — but the shape is
        # pool-size-deterministic, so the compiled engine runs the whole
        # timed region on the serial tier (inline tasks, the canonical
        # pool-size-1 schedule; see repro.engine.coverage).
        tier = _phase_tier(rt, "churn")
        engine_scope = serial_tasks(rt) if tier == "serial" else nullcontext()
        advances = 0
        rt.reset_measurements()
        with rt.timed() as t, engine_scope:
            for _ in range(rounds):
                rt.forall(
                    range(ntasks),
                    produce,
                    task_init=bank.task_init,
                    tasks_per_locale=tasks_per_locale,
                )
                rt.forall(
                    range(ntasks),
                    consume,
                    task_init=bank.task_init,
                    tasks_per_locale=tasks_per_locale,
                )
                if reclaim_between_rounds:
                    em.phase_boundary()
                    if em.try_reclaim():
                        advances += 1
            em.clear()
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=2 * ntasks * items_per_task * rounds,
            comm=rt.comm_totals(),
            extra={
                "em": em.stats(),
                "reclaimer": rt.config.reclaimer,
                "root_advances": advances,
                "pairing": pairing,
            },
        )

    return rt.run(main)


def run_multi_structure(
    rt: Runtime,
    *,
    ops_per_slot: int,
    tasks_per_locale: int = 1,
    rounds: int = 1,
    reclaim_between_rounds: bool = True,
    hash_buckets: int = 16,
) -> WorkloadResult:
    """Combined traffic: stack + queue + hash table sharing one manager.

    Each task slot drives its own trio of structures (stack and queue in
    plain-CAS mode, an :class:`InterlockedHashTable` slice of buckets
    spread over every locale) through a fixed op cycle under a pinned
    token, all retiring into one shared :class:`EpochManager` — the
    "many structures, one reclamation domain" deployment shape the paper
    argues for.  Epochs advance from the root between rounds.
    """
    from ..structures.interlocked_hash_table import InterlockedHashTable
    from ..structures.msqueue import LockFreeQueue
    from ..structures.treiber_stack import LockFreeStack

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    _check_phased_reclaim(tasks_per_locale, rounds, reclaim_between_rounds)
    nloc = rt.num_locales
    ntasks = nloc * tasks_per_locale

    def main() -> WorkloadResult:
        em = _reclaimer_for(rt)
        stacks = [
            LockFreeStack(rt, locale=i % nloc, aba_protection=False)
            for i in range(ntasks)
        ]
        queues = [
            LockFreeQueue(rt, locale=i % nloc, aba_protection=False)
            for i in range(ntasks)
        ]
        tables = [
            InterlockedHashTable(
                rt, buckets=hash_buckets, reclaimer=em, aba_protection=False
            )
            for i in range(ntasks)
        ]

        bank = _TokenBank(rt, em, tasks_per_locale)
        key_space = max(1, hash_buckets * 2)

        def body(slot: int, st: "_TokenSlot") -> None:
            tok = st.tok
            stack, queue, table = stacks[slot], queues[slot], tables[slot]
            for k in range(ops_per_slot):
                key = k % key_space
                tok.pin()
                stack.push(k)
                queue.enqueue(k, tok)
                table.put(key, k, tok)
                stack.pop(tok)
                queue.dequeue(tok)
                if k & 1:
                    table.remove(key, tok)
                tok.unpin()

        ops_per_cycle = 5  # push/enqueue/put/pop/dequeue (+remove on odds)
        total_ops = ntasks * rounds * (
            ops_per_slot * ops_per_cycle + ops_per_slot // 2
        )

        # Hand-over-hand bucket walks and structure CAS loops keep this
        # off the columnar tier; the serial tier (inline tasks) covers it
        # for the compiled engines (see repro.engine.coverage).
        tier = _phase_tier(rt, "multi_structure")
        engine_scope = serial_tasks(rt) if tier == "serial" else nullcontext()
        advances = 0
        rt.reset_measurements()
        with rt.timed() as t, engine_scope:
            for _ in range(rounds):
                rt.forall(
                    range(ntasks),
                    body,
                    task_init=bank.task_init,
                    tasks_per_locale=tasks_per_locale,
                )
                if reclaim_between_rounds:
                    em.phase_boundary()
                    if em.try_reclaim():
                        advances += 1
            em.clear()
        return WorkloadResult(
            elapsed=t.elapsed,
            operations=total_ops,
            comm=rt.comm_totals(),
            extra={
                "em": em.stats(),
                "reclaimer": rt.config.reclaimer,
                "root_advances": advances,
            },
        )

    return rt.run(main)
