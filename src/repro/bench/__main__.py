"""CLI: regenerate the paper's figures (and the ablations) as text tables.

Usage::

    python -m repro.bench --figure 3a          # Figure 3 shared-memory panel
    python -m repro.bench --figure 4           # Figure 4 (all three panels)
    python -m repro.bench --figure all         # everything (minutes)
    python -m repro.bench --figure ablations   # the design ablations
    python -m repro.bench --figure 5 --ops 256 --max-locales 16   # quick pass

``--ops`` scales per-task operation counts (virtual seconds scale linearly;
shapes are invariant).  ``--max-locales`` truncates the locale axis for
quick runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Sequence

from . import ablations, figures
from .report import Panel, render_figure

#: Figure ids accepted by --figure.
FIGURES = ("3a", "3b", "4", "5", "6", "7", "ablations", "all")


def _locales(max_locales: int, base: Sequence[int]) -> List[int]:
    return [x for x in base if x <= max_locales]


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures on the simulated PGAS runtime.",
    )
    ap.add_argument("--figure", choices=FIGURES, default="all", help="which figure to run")
    ap.add_argument("--ops", type=int, default=None, help="per-task operation count override")
    ap.add_argument(
        "--max-locales", type=int, default=64, help="truncate the locale axis (quick runs)"
    )
    ap.add_argument(
        "--tasks-per-locale", type=int, default=1, help="worker tasks per locale"
    )
    ap.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump every panel's series to PATH as JSON",
    )
    args = ap.parse_args(argv)

    todo = [args.figure] if args.figure != "all" else ["3a", "3b", "4", "5", "6", "7", "ablations"]
    t0 = time.time()
    json_doc: Dict[str, list] = {}

    for fig in todo:
        panels: List[Panel] = []
        title = ""
        if fig == "3a":
            title = "Figure 3 — AtomicObject vs atomic int (shared memory)"
            kw = {}
            if args.ops:
                kw["total_ops"] = args.ops * 32
            panels = [figures.figure3_shared(**kw)]
        elif fig == "3b":
            title = "Figure 3 — AtomicObject vs atomic int (distributed memory)"
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = [figures.figure3_distributed(**kw)]
        elif fig in ("4", "5", "6"):
            titles = {
                "4": "Figure 4 — Deletion with tryReclaim once per 1024 iterations",
                "5": "Figure 5 — Deletion with tryReclaim every iteration",
                "6": "Figure 6 — Deletion with reclamation only performed at end",
            }
            title = titles[fig]
            fn = {"4": figures.figure4, "5": figures.figure5, "6": figures.figure6}[fig]
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_EPOCH_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = fn(**kw)
        elif fig == "7":
            title = "Figure 7 — Read-only workload without deletion"
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_EPOCH_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = [figures.figure7(**kw)]
        elif fig == "ablations":
            title = "Ablations — DESIGN.md Section 6"
            ab_kw = {}
            if args.ops:
                ab_kw["ops_per_task"] = args.ops
            panels = [
                ablations.ablation_compression(**ab_kw),
                ablations.ablation_privatization(**ab_kw),
                ablations.ablation_scatter(**ab_kw),
                ablations.ablation_election(**ab_kw),
                ablations.ablation_reclaimers(**ab_kw),
                ablations.ablation_epoch_cycle(**ab_kw),
            ]
        print(render_figure(title, panels))
        sys.stdout.flush()
        json_doc[fig] = [p.as_dict() for p in panels]

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(json_doc, fh, indent=2)
        print(f"(series written to {args.json})")

    print(f"(total wall time: {time.time() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
