"""CLI: the paper's figures, the ablations, and the scenario engine.

Figure mode (the default)::

    python -m repro.bench --figure 3a          # Figure 3 shared-memory panel
    python -m repro.bench --figure 4           # Figure 4 (all three panels)
    python -m repro.bench --figure all         # everything (minutes)
    python -m repro.bench --figure ablations   # the design ablations
    python -m repro.bench --figure 5 --ops 256 --max-locales 16   # quick pass

``--ops`` scales per-task operation counts (virtual seconds scale linearly;
shapes are invariant).  ``--max-locales`` truncates the locale axis for
quick runs.

Scenario mode (see :mod:`repro.bench.scenarios` and docs/SCENARIOS.md)::

    python -m repro.bench scenarios --list
    python -m repro.bench scenarios --list --filter topo-hier
    python -m repro.bench scenarios --run hotspot-zipf queue-churn
    python -m repro.bench scenarios --run queue-churn --reclaimer hp
    python -m repro.bench scenarios --run queue-churn --topology hier:2x2
    python -m repro.bench scenarios --run topo-hier-reclaim-ebr --aggregation 8
    python -m repro.bench scenarios --run topo-hier-reclaim-ebr --policy threshold:32
    python -m repro.bench scenarios --run hotspot-zipf --cost-profile wan
    python -m repro.bench scenarios --all --jobs 4 --out report.json
    python -m repro.bench scenarios --all --engine compiled
    python -m repro.bench scenarios --all --update-baselines
    python -m repro.bench scenarios --spec my_scenario.toml
    python -m repro.bench scenarios --run hotspot-zipf --trace full --trace-out t.json

``--list --filter <substring>`` narrows the listing to scenarios whose
name, policy spec, or compiled-coverage tier contains the substring (the
registry has grown past one screen).  The listing's ``compiled`` column
is computed from :func:`repro.bench.scenarios.compiled_coverage` — e.g.
``--filter columnar`` shows every scenario the compiled engine replays
from lowered columns, ``--filter interpreted`` every one that still
falls back.

``--reclaimer {ebr,hp,qsbr,ibr}`` overrides the memory-reclamation scheme
of every selected scenario (see docs/RECLAMATION.md); the JSON report's
``extra.em`` block carries each run's per-scheme retired / freed /
peak-pending counts — plus ``scan_batches`` / ``uplink_crossings`` when
message aggregation batched any scan traffic.  ``--topology`` (``flat``,
``hier:SxL``, ``dragonfly:G`` — see docs/TOPOLOGY.md), ``--aggregation``
(the uplink batching window, docs/AGGREGATION.md), ``--cost-profile``
(``default``/``degraded``/``wan``), ``--cost-scale`` and ``--policy``
(the virtual-time policy pair — e.g. ``threshold:32`` or
``threshold:32+adaptive:2..64``; see docs/POLICY.md) override the
simulated machine the same way; all six axes are recorded in reports
and baselines, and a run whose axis differs from the recorded baseline
reports ``incomparable`` instead of pretending to compare.  None of them
can be combined with ``--update-baselines`` (a scenario's baseline pins
the machine it was registered with).

``--engine {interpreted,compiled,compiled-strict}`` selects the workload
execution engine (docs/ENGINE.md).  It is *not* a machine axis: compiled
execution is bit-identical to interpreted by contract, so baselines
verify unchanged under either engine and the flag composes with
``--update-baselines`` — running ``--all --engine compiled`` is the
cheap way to re-verify every baseline.  ``compiled-strict`` additionally
turns any silent fallback to the interpreter into an error (CI runs it
over the lowered set); each report entry's ``engine`` block records the
configured engine, the *effective* engine, and any per-phase fallbacks.

``--trace {off,spans,full}`` turns on the virtual-time flight recorder
(docs/OBSERVABILITY.md).  Like ``--engine`` it is *not* a machine axis:
tracing never changes any virtual-time result, so it composes with
``--update-baselines`` too.  Traced runs attach the metrics registry
under ``extra.obs`` in the report; ``--trace-out PATH`` additionally
writes the merged event stream (Chrome trace-event JSON, Perfetto-
loadable — or flat JSONL when PATH ends in ``.jsonl``).

Trace mode — run one scenario under the flight recorder and summarize::

    python -m repro.bench trace hotspot-zipf
    python -m repro.bench trace topo-hier-agg-ebr-w4 --out trace.json
    python -m repro.bench trace queue-churn --detail spans --engine compiled

``--run`` executes named scenarios (in parallel when ``--jobs`` > 1),
writes a JSON report with virtual-time results and per-scenario regression
verdicts against ``benchmarks/scenario_baselines.json``, and exits
non-zero on any ``drift`` — virtual time is deterministic, so drift means
behaviour changed.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Sequence

from ..comm.costs import COST_PROFILES
from ..obs import (
    TRACE_DETAILS,
    MetricsRegistry,
    progress_suffix,
    write_trace,
)
from ..runtime.config import ENGINES, RECLAIMER_SCHEMES
from . import ablations, figures, scenarios
from .report import Panel, render_figure

#: Figure ids accepted by --figure.
FIGURES = ("3a", "3b", "4", "5", "6", "7", "ablations", "all")

#: Default location of the scenario regression baselines.
DEFAULT_BASELINES = Path(__file__).resolve().parents[3] / "benchmarks" / "scenario_baselines.json"


def _locales(max_locales: int, base: Sequence[int]) -> List[int]:
    return [x for x in base if x <= max_locales]


def scenario_main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``python -m repro.bench scenarios ...``."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench scenarios",
        description="List and run declarative benchmark scenarios.",
    )
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--list", action="store_true", help="list registered scenarios")
    mode.add_argument(
        "--run", nargs="+", metavar="NAME", help="run the named scenario(s)"
    )
    mode.add_argument("--all", action="store_true", help="run every registered scenario")
    mode.add_argument(
        "--spec",
        metavar="PATH",
        help="run one scenario from a TOML spec file (not the registry)",
    )
    ap.add_argument(
        "--jobs", type=int, default=None, help="parallel scenario runs (default: min(n, 4))"
    )
    ap.add_argument(
        "--filter",
        metavar="SUBSTRING",
        default=None,
        help="with --list: only show scenarios whose name, policy spec, or"
        " compiled-coverage tier contains SUBSTRING (case-insensitive)",
    )
    ap.add_argument(
        "--reclaimer",
        choices=RECLAIMER_SCHEMES,
        default=None,
        help="override the memory-reclamation scheme of every selected"
        " scenario (cross-scheme comparisons; baseline verdicts become"
        " 'incomparable' when the scheme differs from the recorded one)",
    )
    ap.add_argument(
        "--topology",
        metavar="SPEC",
        default=None,
        help="override the interconnect topology of every selected scenario"
        " ('flat', 'hier:SxL', 'dragonfly:G'; see docs/TOPOLOGY.md —"
        " baseline verdicts become 'incomparable' when the shape differs"
        " from the recorded one)",
    )
    ap.add_argument(
        "--aggregation",
        metavar="WINDOW",
        default=None,
        help="override the uplink message-aggregation window of every"
        " selected scenario (an integer; 1 or 'off' disables — see"
        " docs/AGGREGATION.md; baseline verdicts become 'incomparable'"
        " when it differs from the recorded one)",
    )
    ap.add_argument(
        "--policy",
        metavar="SPEC",
        default=None,
        help="override the virtual-time policy pair of every selected"
        " scenario (epoch cadence + aggregation window — e.g. 'fixed',"
        " 'threshold:32', 'grace:1e-4', 'threshold:32+adaptive:2..64';"
        " see docs/POLICY.md; baseline verdicts become 'incomparable'"
        " when it differs from the recorded one)",
    )
    ap.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="override the workload execution engine of every selected"
        " scenario ('interpreted' or 'compiled'; see docs/ENGINE.md)."
        " Unlike the machine axes above this never changes virtual"
        " results — baselines verify bit-identically under either"
        " engine, so it composes with --update-baselines",
    )
    ap.add_argument(
        "--trace",
        choices=TRACE_DETAILS,
        default=None,
        help="enable the virtual-time flight recorder for every selected"
        " scenario ('spans' or 'full'; see docs/OBSERVABILITY.md)."
        " Not a machine axis: tracing never changes virtual results,"
        " so it composes with --update-baselines; traced runs attach"
        " the metrics registry under extra.obs in the report",
    )
    ap.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="with --trace: also write the merged event stream to PATH"
        " (Chrome trace-event JSON for Perfetto, or flat JSONL when"
        " PATH ends in .jsonl; multiple scenarios get the scenario name"
        " inserted before the extension)",
    )
    ap.add_argument(
        "--cost-profile",
        choices=sorted(COST_PROFILES),
        default=None,
        help="override the cost-model profile of every selected scenario"
        " (baseline verdicts become 'incomparable' when it differs from"
        " the recorded one)",
    )
    ap.add_argument(
        "--cost-scale",
        type=float,
        default=None,
        help="uniformly scale every cost constant of every selected"
        " scenario (sensitivity sweeps; baseline verdicts become"
        " 'incomparable')",
    )
    ap.add_argument(
        "--ops-scale",
        type=float,
        default=None,
        help="scale every per-task operation count (quick passes; baseline"
        " comparisons report 'incomparable')",
    )
    ap.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="run each scenario N times and verify bit-identical virtual results",
    )
    ap.add_argument(
        "--out",
        metavar="PATH",
        default="scenario_report.json",
        help="where to write the JSON report (default: scenario_report.json)",
    )
    ap.add_argument(
        "--baselines",
        metavar="PATH",
        default=str(DEFAULT_BASELINES),
        help="regression-baselines JSON (default: benchmarks/scenario_baselines.json)",
    )
    ap.add_argument(
        "--update-baselines",
        action="store_true",
        help="write the run's virtual results back as the new baselines",
    )
    args = ap.parse_args(argv)

    if args.update_baselines and args.ops_scale is not None and args.ops_scale != 1.0:
        ap.error("--update-baselines cannot be combined with --ops-scale")
    for flag, value in (
        ("--reclaimer", args.reclaimer),
        ("--topology", args.topology),
        ("--aggregation", args.aggregation),
        ("--policy", args.policy),
        ("--cost-profile", args.cost_profile),
        ("--cost-scale", args.cost_scale),
    ):
        if args.update_baselines and value is not None:
            ap.error(
                f"--update-baselines cannot be combined with {flag} (a"
                " scenario's baseline pins the machine it was registered"
                " with)"
            )
    if args.filter is not None and not args.list:
        ap.error("--filter only applies to --list")
    if args.trace_out is not None and args.trace in (None, "off"):
        ap.error("--trace-out requires --trace spans or --trace full")

    if args.list:
        specs = list(scenarios.iter_scenarios())
        coverage = {s.name: scenarios.compiled_coverage(s) for s in specs}
        if args.filter is not None:
            needle = args.filter.lower()
            specs = [
                s
                for s in specs
                if needle in s.name.lower()
                or needle in s.topology.policy.lower()
                or needle in coverage[s.name]
            ]
            print(
                f"{len(specs)} of {len(scenarios.scenario_names())}"
                f" registered scenarios matching {args.filter!r}:\n"
            )
            if not specs:
                return 0
        else:
            print(f"{len(specs)} registered scenarios:\n")
        header = (
            f"  {'name':24s} {'workload':16s} {'machine':7s} {'net':5s}"
            f" {'topology':12s} {'costs':8s} {'policy':12s} {'compiled':11s}"
        )
        print(header)
        print("  " + "-" * (len(header) - 2))
        for spec in specs:
            topo = spec.topology
            machine = f"{topo.locales}x{topo.tasks_per_locale}"
            costs = topo.cost_profile
            if topo.cost_scale != 1.0:
                costs += f"*{topo.cost_scale:g}"
            line = (
                f"  {spec.name:24s} {spec.workload.kind:16s}"
                f" {machine:7s} {topo.network:5s} {topo.topology:12s}"
                f" {costs:8s} {topo.policy:12s} {coverage[spec.name]:11s}"
            )
            if topo.reclaimer != "ebr":
                line += f" rec={topo.reclaimer}"
            if topo.aggregation != 1:
                line += f" agg=w{topo.aggregation}"
            print(line)
            if spec.description:
                print(f"      {spec.description}")
        return 0

    if args.spec:
        specs = [scenarios.ScenarioSpec.from_toml(args.spec)]
    elif args.all:
        specs = list(scenarios.iter_scenarios())
    else:
        specs = [scenarios.get_scenario(name) for name in args.run]

    topo_overrides = {}
    if args.reclaimer is not None:
        topo_overrides["reclaimer"] = args.reclaimer
    if args.topology is not None:
        topo_overrides["topology"] = args.topology
    if args.aggregation is not None:
        topo_overrides["aggregation"] = args.aggregation
    if args.policy is not None:
        topo_overrides["policy"] = args.policy
    if args.engine is not None:
        topo_overrides["engine"] = args.engine
    if args.trace is not None:
        topo_overrides["trace"] = args.trace
    if args.cost_profile is not None:
        topo_overrides["cost_profile"] = args.cost_profile
    if args.cost_scale is not None:
        topo_overrides["cost_scale"] = args.cost_scale
    if topo_overrides:
        try:
            specs = [s.with_topology(**topo_overrides) for s in specs]
        except scenarios.ScenarioError as exc:
            print(f"error: {exc}")
            return 2
    if args.ops_scale is not None:
        specs = [s.with_measure(ops_scale=args.ops_scale) for s in specs]
    if args.repeats is not None:
        specs = [s.with_measure(repeats=args.repeats) for s in specs]

    t0 = time.time()

    def progress(run: scenarios.ScenarioRun) -> None:
        line = (
            f"  {run.spec.name:24s} elapsed={run.result.elapsed:.6g}s"
            f" ops={run.result.operations}"
        )
        # One registry-owned renderer for the reclaimer/agg/policy blocks
        # (docs/OBSERVABILITY.md) instead of per-scheme string building.
        line += progress_suffix(
            run.result.extra,
            reclaimer=run.spec.topology.reclaimer,
            policy=run.spec.topology.policy,
        )
        if run.trace_events is not None:
            line += f" [trace: events={len(run.trace_events)}]"
        line += f" (wall {run.wall_seconds:.2f}s)"
        print(line)
        sys.stdout.flush()

    print(f"running {len(specs)} scenario(s)...")
    runs = scenarios.run_scenario_grid(specs, jobs=args.jobs, progress=progress)

    scaled = any(r.spec.measure.ops_scale != 1.0 for r in runs)
    baselines = scenarios.load_baselines(args.baselines)
    if not baselines and not args.update_baselines:
        print(
            f"note: no baselines found at {args.baselines} — every scenario"
            " will report 'new' and drift cannot be detected"
        )
    report = scenarios.build_report(runs, baselines=baselines)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
    print(f"(report written to {args.out}; total wall {time.time() - t0:.1f}s)")

    if args.trace_out is not None:
        traced = [r for r in runs if r.trace_events is not None]
        for run in traced:
            path = Path(args.trace_out)
            if len(traced) > 1:
                path = path.with_name(
                    f"{path.stem}.{run.spec.name}{path.suffix}"
                )
            fmt = write_trace(
                str(path), run.trace_events, label=run.spec.name
            )
            print(
                f"(trace for {run.spec.name}:"
                f" {len(run.trace_events)} event(s) as {fmt} -> {path})"
            )

    if args.update_baselines:
        if scaled:
            print("refusing to --update-baselines from an --ops-scale run")
            return 2
        # Merge into the existing entries: a partial run (--run NAME,
        # --spec) must not discard the baselines of scenarios that did
        # not execute this time.
        merged = dict(baselines)
        merged.update({r.spec.name: scenarios.baseline_entry(r) for r in runs})
        doc = {
            "schema": 1,
            "note": "virtual-time regression baselines; regenerate with"
            " `python -m repro.bench scenarios --all --update-baselines`",
            "scenarios": merged,
        }
        with open(args.baselines, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        print(
            f"(baselines for {len(runs)} scenario(s) merged into"
            f" {args.baselines})"
        )
        return 0

    drifted = [
        name
        for name, entry in report["scenarios"].items()
        if entry.get("regression", {}).get("status") == "drift"
    ]
    if drifted:
        print(f"REGRESSION: virtual results drifted for {drifted}")
        return 1
    return 0


def trace_main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``python -m repro.bench trace ...``."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench trace",
        description="Run one scenario under the virtual-time flight"
        " recorder and summarize its event stream (docs/OBSERVABILITY.md).",
    )
    ap.add_argument("name", help="registered scenario to trace")
    ap.add_argument(
        "--detail",
        choices=[d for d in TRACE_DETAILS if d != "off"],
        default="full",
        help="trace detail (default: full)",
    )
    ap.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="workload execution engine override (docs/ENGINE.md; 'full'"
        " detail always replays through the interpreter)",
    )
    ap.add_argument(
        "--ops-scale",
        type=float,
        default=None,
        help="scale every per-task operation count (quick passes)",
    )
    ap.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="run N times and verify the event stream is bit-identical",
    )
    ap.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the event stream to PATH (Chrome trace-event JSON"
        " for Perfetto, or flat JSONL when PATH ends in .jsonl)",
    )
    args = ap.parse_args(argv)

    try:
        spec = scenarios.get_scenario(args.name)
        overrides = {"trace": args.detail}
        if args.engine is not None:
            overrides["engine"] = args.engine
        spec = spec.with_topology(**overrides)
    except scenarios.ScenarioError as exc:
        print(f"error: {exc}")
        return 2
    if args.ops_scale is not None:
        spec = spec.with_measure(ops_scale=args.ops_scale)
    if args.repeats is not None:
        spec = spec.with_measure(repeats=args.repeats)

    run = scenarios.run_scenario(spec)
    assert run.trace_events is not None
    print(
        f"{spec.name}: elapsed={run.result.elapsed:.6g}s"
        f" ops={run.result.operations} (wall {run.wall_seconds:.2f}s)"
    )
    registry = MetricsRegistry.from_events(run.trace_events, args.detail)
    for line in registry.summary_lines():
        print(line)
    if args.out is not None:
        fmt = write_trace(args.out, run.trace_events, label=spec.name)
        print(
            f"({len(run.trace_events)} event(s) written as {fmt} to"
            f" {args.out})"
        )
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``python -m repro.bench``."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "scenarios":
        return scenario_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures on the simulated PGAS runtime.",
    )
    ap.add_argument("--figure", choices=FIGURES, default="all", help="which figure to run")
    ap.add_argument("--ops", type=int, default=None, help="per-task operation count override")
    ap.add_argument(
        "--max-locales", type=int, default=64, help="truncate the locale axis (quick runs)"
    )
    ap.add_argument(
        "--tasks-per-locale", type=int, default=1, help="worker tasks per locale"
    )
    ap.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also dump every panel's series to PATH as JSON",
    )
    args = ap.parse_args(argv)

    todo = [args.figure] if args.figure != "all" else ["3a", "3b", "4", "5", "6", "7", "ablations"]
    t0 = time.time()
    json_doc: Dict[str, list] = {}

    for fig in todo:
        panels: List[Panel] = []
        title = ""
        if fig == "3a":
            title = "Figure 3 — AtomicObject vs atomic int (shared memory)"
            kw = {}
            if args.ops:
                kw["total_ops"] = args.ops * 32
            panels = [figures.figure3_shared(**kw)]
        elif fig == "3b":
            title = "Figure 3 — AtomicObject vs atomic int (distributed memory)"
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = [figures.figure3_distributed(**kw)]
        elif fig in ("4", "5", "6"):
            titles = {
                "4": "Figure 4 — Deletion with tryReclaim once per 1024 iterations",
                "5": "Figure 5 — Deletion with tryReclaim every iteration",
                "6": "Figure 6 — Deletion with reclamation only performed at end",
            }
            title = titles[fig]
            fn = {"4": figures.figure4, "5": figures.figure5, "6": figures.figure6}[fig]
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_EPOCH_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = fn(**kw)
        elif fig == "7":
            title = "Figure 7 — Read-only workload without deletion"
            kw = dict(
                locales=_locales(args.max_locales, figures.DEFAULT_EPOCH_LOCALES),
                tasks_per_locale=args.tasks_per_locale,
            )
            if args.ops:
                kw["ops_per_task"] = args.ops
            panels = [figures.figure7(**kw)]
        elif fig == "ablations":
            title = "Ablations — DESIGN.md Section 6"
            ab_kw = {}
            if args.ops:
                ab_kw["ops_per_task"] = args.ops
            panels = [
                ablations.ablation_compression(**ab_kw),
                ablations.ablation_privatization(**ab_kw),
                ablations.ablation_scatter(**ab_kw),
                ablations.ablation_election(**ab_kw),
                ablations.ablation_reclaimers(**ab_kw),
                ablations.ablation_epoch_cycle(**ab_kw),
            ]
        print(render_figure(title, panels))
        sys.stdout.flush()
        json_doc[fig] = [p.as_dict() for p in panels]

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(json_doc, fh, indent=2)
        print(f"(series written to {args.json})")

    print(f"(total wall time: {time.time() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
