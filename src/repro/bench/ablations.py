"""Ablation studies for the design choices the paper argues for.

Each function isolates one mechanism, runs the relevant workload with the
mechanism on and off (or across the alternative implementations), and
returns a :class:`~repro.bench.report.Panel`.  These back the claims in
DESIGN.md Section 6:

* **compression** — pointer compression (RDMA path) vs the DCAS fallback
  vs the descriptor-table extension;
* **privatization** — record-wrapped zero-communication handles vs a
  naive by-reference proxy that fetches metadata per access;
* **scatter** — bulk per-locale deallocation vs one RPC per dead object;
* **election** — the FCFS ``testAndSet`` election vs letting every caller
  run the global scan;
* **reclaimers** — EpochManager vs the blocking hot-counter baseline vs
  the shared-memory LocalEpochManager (single locale).
"""

from __future__ import annotations

from typing import List, Sequence

from ..baselines.global_lock_reclaimer import GlobalLockReclaimer
from ..core.atomic_object import AtomicObject
from ..core.epoch_manager import EpochManager
from ..core.privatization import UnprivatizedProxy
from ..runtime.runtime import Runtime
from .report import Panel
from .workloads import run_epoch_workload

__all__ = [
    "ablation_compression",
    "ablation_epoch_cycle",
    "ablation_privatization",
    "ablation_scatter",
    "ablation_election",
    "ablation_reclaimers",
]


def _runtime(nloc: int, network: str, tpl: int = 1) -> Runtime:
    return Runtime(num_locales=nloc, network=network, tasks_per_locale=tpl)


def ablation_compression(
    *,
    locales: Sequence[int] = (2, 4, 8, 16, 32),
    ops_per_task: int = 1 << 10,
) -> Panel:
    """Pointer compression vs DCAS fallback vs descriptor table (ugni).

    The compressed mode rides 64-bit RDMA atomics; ``dcas`` demotes every
    op to CPU/AM; ``descriptor`` keeps RDMA at the price of registration +
    cached resolution.
    """
    panel = Panel(
        title="Ablation: AtomicObject representation (ugni) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for mode in ("compressed", "dcas", "descriptor"):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")

            def main() -> float:
                nonlocal_mode = mode
                cells = [
                    AtomicObject(rt, locale=i % nloc, mode=nonlocal_mode)
                    for i in range(max(64, 2 * nloc))
                ]
                targets = [rt.new_obj(object(), locale=lid) for lid in range(nloc)]

                def body(i: int) -> None:
                    from ..runtime.context import current_context

                    rng = current_context().rng
                    for k in range(ops_per_task):
                        cell = cells[rng.randrange(len(cells))]
                        if k & 1:
                            cell.read()
                        else:
                            cell.exchange(targets[cell.home])

                rt.reset_measurements()
                with rt.timed() as t:
                    rt.forall(range(nloc), body, tasks_per_locale=1)
                return t.elapsed

            vals.append(rt.run(main))
        panel.add(mode, vals)
    return panel


def ablation_privatization(
    *,
    locales: Sequence[int] = (2, 4, 8, 16, 32),
    ops_per_task: int = 1 << 11,
) -> Panel:
    """Privatized handle resolution vs per-access metadata round trips.

    Measures the pure handle-resolution loop the paper optimizes: each
    task resolves its local instance and performs a trivially cheap local
    action.  With privatization the curve is flat; without, every access
    pays a GET from the owner locale and the owner's NIC serializes.
    """
    panel = Panel(
        title="Ablation: privatization (ugni) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for privatized in (True, False):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")

            def main() -> float:
                instances = [object() for _ in range(nloc)]
                if privatized:
                    from ..core.privatization import PrivatizedObject

                    handle = PrivatizedObject(rt, instances)
                else:
                    handle = UnprivatizedProxy(rt, instances, owner=0)

                def body(i: int) -> None:
                    for _ in range(ops_per_task):
                        handle.get_privatized_instance()

                rt.reset_measurements()
                with rt.timed() as t:
                    rt.forall(range(nloc), body, tasks_per_locale=1)
                return t.elapsed

            vals.append(rt.run(main))
        panel.add("privatized" if privatized else "by-reference", vals)
    return panel


def ablation_scatter(
    *,
    locales: Sequence[int] = (2, 4, 8, 16),
    ops_per_task: int = 1 << 9,
) -> Panel:
    """Scatter-list bulk deallocation vs per-object remote frees.

    Run the Figure 6 workload at 100% remote objects with the scatter list
    enabled and disabled; the gap is the per-object RPC cost the paper's
    design amortizes.
    """
    panel = Panel(
        title="Ablation: scatter list, 100% remote (ugni) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for use_scatter in (True, False):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")
            res = run_epoch_workload(
                rt,
                ops_per_task=ops_per_task,
                remote_percent=100,
                delete=True,
                reclaim_every=None,
                cleanup_at_end=True,
                manager_kwargs={"use_scatter": use_scatter},
            )
            vals.append(res.elapsed)
        panel.add("scatter" if use_scatter else "per-object free", vals)
    return panel


def ablation_election(
    *,
    locales: Sequence[int] = (2, 4, 8, 16),
    ops_per_task: int = 1 << 8,
) -> Panel:
    """FCFS election vs every caller scanning (dense tryReclaim, ugni).

    The paper's claim is about *redundant requests*: with the election,
    losers back out after one or two flag operations; without it, every
    ``tryReclaim`` call runs the full cross-locale scan, flooding every
    locale (and the global-epoch home) with forks and remote reads.  The
    honest metric for that claim is communication volume, not virtual
    elapsed time — in a simulator, perfectly parallel redundant work barely
    moves the clock, while on a real machine it steals progress-thread and
    core cycles from the workload.  We therefore report **remote
    operations per retired object** (forks + active messages + remote
    atomics); elapsed time is attached per-point in the panel title data
    via the workload result if needed.
    """
    panel = Panel(
        title="Ablation: election flag, dense tryReclaim (ugni) — remote ops per object",
        xlabel="locales",
        xs=list(locales),
    )
    for use_election in (True, False):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")
            res = run_epoch_workload(
                rt,
                ops_per_task=ops_per_task,
                remote_percent=0,
                delete=True,
                reclaim_every=1,
                cleanup_at_end=True,
                manager_kwargs={"use_election": use_election},
            )
            comm = res.comm
            remote_ops = (
                comm["fork"] + comm["am"] + comm["amo"] + comm["get"] + comm["put"]
            )
            vals.append(remote_ops / res.operations)
        panel.add("election" if use_election else "no election", vals)
    return panel


def ablation_reclaimers(
    *,
    locales: Sequence[int] = (1, 2, 4, 8, 16),
    ops_per_task: int = 1 << 10,
) -> Panel:
    """EpochManager vs blocking hot-counter reclaimer (pin/unpin costs).

    The guard interface is identical; only the coordination differs:
    privatized local epochs vs one global reader counter everyone
    increments remotely.
    """
    panel = Panel(
        title="Ablation: reclamation scheme, read-mostly (ugni) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for scheme in ("EpochManager", "GlobalLockReclaimer"):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")

            def main() -> float:
                if scheme == "EpochManager":
                    mgr = EpochManager(rt)
                else:
                    mgr = GlobalLockReclaimer(rt)

                def body(i: int, guard) -> None:
                    guard.pin()
                    guard.unpin()

                def init():
                    return mgr.register()

                rt.reset_measurements()
                with rt.timed() as t:
                    rt.forall(
                        range(nloc * ops_per_task),
                        body,
                        task_init=init,
                        tasks_per_locale=1,
                    )
                if isinstance(mgr, EpochManager):
                    mgr.destroy()
                return t.elapsed

            vals.append(rt.run(main))
        panel.add(scheme, vals)
    return panel


def ablation_epoch_cycle(
    *,
    locales: Sequence[int] = (2, 4, 8),
    ops_per_task: int = 1 << 9,
) -> Panel:
    """3-epoch (paper) vs 4-epoch (hardened) reclamation cycle.

    The 4-list variant closes the mid-advance stale-cache window analysed
    in DESIGN.md §6b by holding objects one extra advance.  The question
    this ablation answers: what does that safety margin cost?  Expected
    answer: almost nothing in time (the extra list is only touched during
    reclamation), a bounded increase in peak memory residency — which is
    what we report alongside time via the panel pair.
    """
    panel = Panel(
        title="Ablation: epoch cycle length, sparse reclaim (ugni) — time (s)",
        xlabel="locales",
        xs=list(locales),
    )
    for cycle in (3, 4):
        vals: List[float] = []
        for nloc in locales:
            rt = _runtime(nloc, "ugni")
            res = run_epoch_workload(
                rt,
                ops_per_task=ops_per_task,
                remote_percent=0,
                delete=True,
                reclaim_every=128,
                cleanup_at_end=True,
                manager_kwargs={"epoch_cycle": cycle},
            )
            vals.append(res.elapsed)
        panel.add(f"{cycle} epochs", vals)
    return panel
