"""Declarative workload scenarios: specs, a registry, and a grid runner.

The paper evaluates its designs over one fixed grid (five microbenchmarks
x two network flavours x one locale axis).  This module opens that grid
up: a **scenario** is a small declarative description — loadable from a
dict or a TOML file — of

* a *topology*: locale count, network flavour, interconnect shape
  (flat / hierarchical / dragonfly distance classes — see
  :mod:`repro.comm.topology`), cost profile/scale/overrides, tasks per
  locale, seed;
* a *workload shape*: one of the generators in
  :mod:`repro.bench.workloads`, with validated parameters;
* *measurement knobs*: an operation-count scale for quick passes and a
  repeat count that doubles as a determinism self-check.

Named scenarios live in a registry (see :func:`scenario_names`); the
built-ins go well beyond the paper's figures — Zipf-skewed hotspot
atomics, mixed pin/deferDelete ratios, producer-consumer churn over the
queue and stack, combined multi-structure traffic, and degraded-network
profiles.  ``python -m repro.bench scenarios {--list,--run,--all}`` is the
CLI; :func:`run_scenario_grid` executes many scenarios in parallel (one
worker-pool runtime per point) and :func:`build_report` aggregates the
results into a JSON document with per-scenario regression baselines.

Determinism contract: every *registered* scenario produces virtual-time
and comm-diagnostic results that are **bit-identical across repeated runs
and worker-pool sizes** (the engine invariant of docs/ENGINE.md, upheld by
the generator rules documented in :mod:`repro.bench.workloads`).  The
runner re-checks this whenever ``measure.repeats > 1``.

Example TOML::

    [scenario]
    name = "my-hotspot"
    description = "zipf hotspot on a slow interconnect"

    [topology]
    locales = 16
    network = "none"
    topology = "hier:2x2"
    cost_profile = "degraded"

    [workload]
    kind = "atomic_hotspot"
    ops_per_task = 4096
    zipf_exponent = 1.4

    [measure]
    repeats = 2
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field, fields, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..comm.aggregation import parse_aggregation
from ..comm.costs import resolve_cost_model
from ..comm.topology import parse_topology
from ..engine import compiled_plan, engine_summary
from ..errors import ReproError
from ..obs import MetricsRegistry, parse_trace
from ..policy import parse_policy
from ..runtime.config import (
    ENGINES,
    RECLAIMER_SCHEMES,
    NetworkType,
    RuntimeConfig,
)
from ..runtime.runtime import Runtime
from .workloads import (
    WorkloadResult,
    run_atomic_hotspot,
    run_atomic_mix,
    run_epoch_mixed,
    run_epoch_workload,
    run_multi_structure,
    run_producer_consumer,
)

try:  # Python 3.11+; scenario TOML loading degrades gracefully without it.
    import tomllib as _tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    _tomllib = None

__all__ = [
    "ScenarioError",
    "TopologySpec",
    "WorkloadSpec",
    "MeasureSpec",
    "ScenarioSpec",
    "ScenarioRun",
    "WORKLOAD_KINDS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "run_scenario",
    "run_scenario_grid",
    "build_report",
    "load_baselines",
    "compiled_coverage",
]


class ScenarioError(ReproError):
    """A scenario spec failed validation or execution."""


def _reject_unknown(doc: Mapping[str, Any], allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(doc) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"unknown key(s) {unknown} in {where}; allowed keys are"
            f" {sorted(allowed)}"
        )


# ---------------------------------------------------------------------------
# Spec dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TopologySpec:
    """The simulated machine a scenario runs on.

    ``topology`` names the interconnect *shape* — the distance-class
    structure of the machine (see :mod:`repro.comm.topology` and
    docs/TOPOLOGY.md): ``"flat"`` (default — every remote peer
    equidistant, the legacy model), ``"hier:SxL"`` (S sockets per node,
    L CPU-coherent locales per socket, AM-priced shared uplinks between
    nodes) or ``"dragonfly:G"`` (G-locale groups with degraded,
    shared-uplink inter-group links).

    ``reclaimer`` selects the memory-reclamation scheme the workload's
    structures retire through (see :mod:`repro.reclaim` and
    docs/RECLAMATION.md): ``"ebr"`` (default — the paper's scheme),
    ``"hp"``, ``"qsbr"`` or ``"ibr"``.

    ``aggregation`` is the uplink message-aggregation window (see
    :mod:`repro.comm.aggregation` and docs/AGGREGATION.md): how many
    same-uplink-group reclamation-path operations one traversal may
    carry.  ``1`` (the default) disables aggregation — the legacy
    one-message-per-op behaviour every pre-aggregation baseline pins.

    ``engine`` selects the workload execution engine (see
    :mod:`repro.engine` and docs/ENGINE.md): ``"interpreted"`` (default)
    or ``"compiled"``.  Unlike the axes above it is *not* part of the
    simulated machine — compiled execution is bit-identical by contract —
    so baselines verify unchanged under either engine and the key is
    never part of a baseline's identity.

    ``policy`` selects the virtual-time policy pair (see
    :mod:`repro.policy` and docs/POLICY.md) — an epoch-advance policy
    gating root ``try_reclaim`` calls plus an aggregation-window policy:
    e.g. ``"fixed"`` (default — today's cadence, bit-identical),
    ``"threshold:64"``, ``"decay:64"``, ``"grace:1e-4"``, or
    ``"threshold:32+adaptive:2..64"``.  Policies change the simulated
    machine's decisions, so the axis *is* part of a baseline's identity.

    ``trace`` sets the flight-recorder detail (see :mod:`repro.obs` and
    docs/OBSERVABILITY.md): ``"off"`` (default), ``"spans"`` or
    ``"full"``.  Like ``engine`` it is *not* part of the simulated
    machine — tracing never changes any virtual-time result — so the key
    is never part of a baseline's identity and ``as_dict`` omits it when
    off.
    """

    locales: int = 8
    network: str = "ugni"
    tasks_per_locale: int = 1
    topology: str = "flat"
    cost_profile: str = "default"
    cost_scale: float = 1.0
    cost_overrides: Tuple[Tuple[str, float], ...] = ()
    seed: int = 0xC0FFEE
    worker_pool_size: Optional[int] = None
    reclaimer: str = "ebr"
    aggregation: Any = 1
    engine: str = "interpreted"
    policy: Any = "fixed"
    trace: str = "off"

    def __post_init__(self) -> None:
        if not isinstance(self.locales, int) or self.locales < 1:
            raise ScenarioError(
                f"topology.locales must be a positive integer, got"
                f" {self.locales!r}"
            )
        if not isinstance(self.tasks_per_locale, int) or self.tasks_per_locale < 1:
            raise ScenarioError(
                f"topology.tasks_per_locale must be a positive integer, got"
                f" {self.tasks_per_locale!r}"
            )
        try:
            net = NetworkType.parse(self.network)
        except ValueError as exc:
            raise ScenarioError(f"topology.network: {exc}") from None
        object.__setattr__(self, "network", net.value)
        if not isinstance(self.topology, str):
            raise ScenarioError(
                f"topology.topology must be a spec string (e.g. 'flat',"
                f" 'hier:2x2', 'dragonfly:4'), got {self.topology!r}"
            )
        # Parse once for validation (shape errors name the valid kinds)
        # and normalize to the canonical spec string, so baselines compare
        # "hier" and "hier:2x2" as the same machine.
        try:
            topo = parse_topology(self.topology, self.locales)
        except ValueError as exc:
            raise ScenarioError(f"topology.topology: {exc}") from None
        object.__setattr__(self, "topology", topo.spec())
        # Normalize a mapping into a hashable tuple of (field, value) pairs.
        overrides = self.cost_overrides
        if isinstance(overrides, Mapping):
            overrides = tuple(sorted(overrides.items()))
            object.__setattr__(self, "cost_overrides", overrides)
        # Profile, scale, and override-field validation lives in
        # resolve_cost_model — run it once here so errors carry the
        # topology prefix and runtime_config() can never fail later.
        try:
            resolve_cost_model(
                self.cost_profile,
                scale=self.cost_scale,
                overrides=dict(overrides),
            )
        except ValueError as exc:
            raise ScenarioError(f"topology cost model: {exc}") from None
        if self.worker_pool_size is not None and self.worker_pool_size < 1:
            raise ScenarioError(
                f"topology.worker_pool_size must be >= 1 or omitted, got"
                f" {self.worker_pool_size!r}"
            )
        if self.reclaimer not in RECLAIMER_SCHEMES:
            raise ScenarioError(
                f"topology.reclaimer {self.reclaimer!r} unknown; expected"
                f" one of {list(RECLAIMER_SCHEMES)}"
            )
        # Validate the aggregation window eagerly and normalize to its
        # canonical int spec, so baselines compare "off"/1/"1" as the
        # same machine.
        try:
            agg = parse_aggregation(self.aggregation)
        except ValueError as exc:
            raise ScenarioError(f"topology.aggregation: {exc}") from None
        object.__setattr__(self, "aggregation", agg.spec())
        if self.engine not in ENGINES:
            raise ScenarioError(
                f"topology.engine {self.engine!r} unknown; expected one of"
                f" {list(ENGINES)}"
            )
        # Validate the policy eagerly and normalize to its canonical spec
        # string, so baselines compare "fixed"/"default"/None as the same
        # machine and "static+threshold:64" equals "threshold:64+static".
        try:
            pol = parse_policy(self.policy)
        except ValueError as exc:
            raise ScenarioError(f"topology.policy: {exc}") from None
        object.__setattr__(self, "policy", pol.spec())
        try:
            detail = parse_trace(self.trace)
        except ValueError as exc:
            raise ScenarioError(f"topology.trace: {exc}") from None
        object.__setattr__(self, "trace", detail)

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TopologySpec":
        _reject_unknown(doc, [f.name for f in fields(cls)], "[topology]")
        return cls(**doc)

    def runtime_config(self) -> RuntimeConfig:
        """Materialize as a :class:`RuntimeConfig`."""
        return RuntimeConfig.from_topology(
            locales=self.locales,
            network=self.network,
            cost_profile=self.cost_profile,
            cost_scale=self.cost_scale,
            cost_overrides=dict(self.cost_overrides),
            tasks_per_locale=self.tasks_per_locale,
            seed=self.seed,
            worker_pool_size=self.worker_pool_size,
            reclaimer=self.reclaimer,
            topology=self.topology,
            aggregation=self.aggregation,
            engine=self.engine,
            policy=self.policy,
            trace=self.trace,
        )

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "locales": self.locales,
            "network": self.network,
            "tasks_per_locale": self.tasks_per_locale,
            "topology": self.topology,
            "cost_profile": self.cost_profile,
            "cost_scale": self.cost_scale,
            "seed": self.seed,
            "reclaimer": self.reclaimer,
        }
        if self.aggregation != 1:
            out["aggregation"] = self.aggregation
        if self.engine != "interpreted":
            out["engine"] = self.engine
        if self.policy != "fixed":
            out["policy"] = self.policy
        if self.trace != "off":
            out["trace"] = self.trace
        if self.cost_overrides:
            out["cost_overrides"] = dict(self.cost_overrides)
        if self.worker_pool_size is not None:
            out["worker_pool_size"] = self.worker_pool_size
        return out


#: Parameters every workload kind accepts, with defaults, plus which of
#: them scale under ``measure.ops_scale``.
@dataclass(frozen=True)
class _WorkloadKind:
    runner: Callable[..., WorkloadResult]
    defaults: Tuple[Tuple[str, Any], ...]
    scaled: Tuple[str, ...]
    summary: str


def _adapt_atomic_mix(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_atomic_mix(
        rt,
        kind=p["cell"],
        ops_per_task=p["ops_per_task"],
        tasks_per_locale=tpl,
        num_cells=p["num_cells"],
    )


def _adapt_hotspot(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_atomic_hotspot(
        rt,
        cell=p["cell"],
        ops_per_task=p["ops_per_task"],
        tasks_per_locale=tpl,
        num_cells=p["num_cells"],
        zipf_exponent=p["zipf_exponent"],
    )


def _adapt_epoch(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_epoch_workload(
        rt,
        ops_per_task=p["ops_per_task"],
        tasks_per_locale=tpl,
        remote_percent=p["remote_percent"],
        delete=p["delete"],
        reclaim_every=p["reclaim_every"],
        cleanup_at_end=p["cleanup_at_end"],
    )


def _adapt_epoch_mixed(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_epoch_mixed(
        rt,
        ops_per_task=p["ops_per_task"],
        tasks_per_locale=tpl,
        write_percent=p["write_percent"],
        remote_percent=p["remote_percent"],
        rounds=p["rounds"],
        reclaim_between_rounds=p["reclaim_between_rounds"],
    )


def _adapt_churn(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_producer_consumer(
        rt,
        structure=p["structure"],
        items_per_task=p["items_per_task"],
        tasks_per_locale=tpl,
        rounds=p["rounds"],
        reclaim_between_rounds=p["reclaim_between_rounds"],
        pairing=p["pairing"],
    )


def _adapt_multi(rt: Runtime, tpl: int, p: Dict[str, Any]) -> WorkloadResult:
    return run_multi_structure(
        rt,
        ops_per_slot=p["ops_per_slot"],
        tasks_per_locale=tpl,
        rounds=p["rounds"],
        reclaim_between_rounds=p["reclaim_between_rounds"],
        hash_buckets=p["hash_buckets"],
    )


WORKLOAD_KINDS: Dict[str, _WorkloadKind] = {
    "atomic_mix": _WorkloadKind(
        runner=_adapt_atomic_mix,
        defaults=(
            ("cell", "atomic_object"),
            ("ops_per_task", 2048),
            ("num_cells", None),
        ),
        scaled=("ops_per_task",),
        summary="Figure 3's 25/25/25/25 read/write/CAS/exchange mix",
    ),
    "atomic_hotspot": _WorkloadKind(
        runner=_adapt_hotspot,
        defaults=(
            ("cell", "atomic_int"),
            ("ops_per_task", 2048),
            ("num_cells", 64),
            ("zipf_exponent", 1.2),
        ),
        scaled=("ops_per_task",),
        summary="Zipf-skewed hotspot variant of the atomic mix",
    ),
    "epoch": _WorkloadKind(
        runner=_adapt_epoch,
        defaults=(
            ("ops_per_task", 1024),
            ("remote_percent", 0),
            ("delete", True),
            ("reclaim_every", None),
            ("cleanup_at_end", True),
        ),
        scaled=("ops_per_task",),
        summary="the paper's Listing 5 pin/deferDelete/tryReclaim loop",
    ),
    "epoch_mixed": _WorkloadKind(
        runner=_adapt_epoch_mixed,
        defaults=(
            ("ops_per_task", 1024),
            ("write_percent", 25),
            ("remote_percent", 0),
            ("rounds", 2),
            ("reclaim_between_rounds", True),
        ),
        scaled=("ops_per_task",),
        summary="mixed pin/deferDelete ratio with phased reclamation",
    ),
    "churn": _WorkloadKind(
        runner=_adapt_churn,
        defaults=(
            ("structure", "queue"),
            ("items_per_task", 512),
            ("rounds", 2),
            ("reclaim_between_rounds", True),
            ("pairing", "ring"),
        ),
        scaled=("items_per_task",),
        summary="producer-consumer churn over MsQueue/TreiberStack",
    ),
    "multi_structure": _WorkloadKind(
        runner=_adapt_multi,
        defaults=(
            ("ops_per_slot", 256),
            ("rounds", 2),
            ("reclaim_between_rounds", True),
            ("hash_buckets", 16),
        ),
        scaled=("ops_per_slot",),
        summary="combined stack + queue + hash-table traffic, one manager",
    ),
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Which generator to run, and with what parameters."""

    kind: str
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ScenarioError(
                f"workload.kind {self.kind!r} unknown; expected one of"
                f" {sorted(WORKLOAD_KINDS)}"
            )
        params = self.params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
            object.__setattr__(self, "params", params)
        allowed = {k for k, _ in WORKLOAD_KINDS[self.kind].defaults}
        bad = sorted({k for k, _ in params} - allowed)
        if bad:
            raise ScenarioError(
                f"workload kind {self.kind!r} does not accept parameter(s)"
                f" {bad}; allowed parameters are {sorted(allowed)}"
            )

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "WorkloadSpec":
        if "kind" not in doc:
            raise ScenarioError("[workload] requires a 'kind' key")
        params = {k: v for k, v in doc.items() if k != "kind"}
        return cls(kind=doc["kind"], params=params)

    def resolved_params(self, ops_scale: float = 1.0) -> Dict[str, Any]:
        """Defaults merged with overrides, op counts scaled (min 1)."""
        kind = WORKLOAD_KINDS[self.kind]
        merged = dict(kind.defaults)
        merged.update(dict(self.params))
        if ops_scale != 1.0:
            for key in kind.scaled:
                if merged[key] is not None:
                    merged[key] = max(1, int(round(merged[key] * ops_scale)))
        return merged

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        out.update(dict(self.params))
        return out


@dataclass(frozen=True)
class MeasureSpec:
    """Measurement knobs: quick-pass scaling and repeat verification."""

    ops_scale: float = 1.0
    repeats: int = 1

    def __post_init__(self) -> None:
        if (
            not isinstance(self.ops_scale, (int, float))
            or isinstance(self.ops_scale, bool)
            or self.ops_scale <= 0
        ):
            raise ScenarioError(
                f"measure.ops_scale must be a positive number, got"
                f" {self.ops_scale!r}"
            )
        if not isinstance(self.repeats, int) or self.repeats < 1:
            raise ScenarioError(
                f"measure.repeats must be a positive integer, got"
                f" {self.repeats!r}"
            )

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "MeasureSpec":
        _reject_unknown(doc, [f.name for f in fields(cls)], "[measure]")
        return cls(**doc)

    def as_dict(self) -> Dict[str, Any]:
        return {"ops_scale": self.ops_scale, "repeats": self.repeats}


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, fully-described benchmark scenario."""

    name: str
    description: str = ""
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec = field(default_factory=lambda: WorkloadSpec("atomic_mix"))
    measure: MeasureSpec = field(default_factory=MeasureSpec)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError(f"scenario name must be a non-empty string, got {self.name!r}")

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "ScenarioSpec":
        """Parse the nested dict form (the shape TOML produces)."""
        _reject_unknown(
            doc, ["scenario", "topology", "workload", "measure"], "scenario document"
        )
        head = doc.get("scenario", {})
        _reject_unknown(head, ["name", "description"], "[scenario]")
        if "name" not in head:
            raise ScenarioError("[scenario] requires a 'name' key")
        if "workload" not in doc:
            raise ScenarioError("scenario document requires a [workload] table")
        return cls(
            name=head["name"],
            description=head.get("description", ""),
            topology=TopologySpec.from_dict(doc.get("topology", {})),
            workload=WorkloadSpec.from_dict(doc["workload"]),
            measure=MeasureSpec.from_dict(doc.get("measure", {})),
        )

    @classmethod
    def from_toml(cls, text_or_path: str) -> "ScenarioSpec":
        """Parse a scenario from TOML text or a ``.toml`` file path.

        Requires :mod:`tomllib` (Python 3.11+); on older interpreters a
        :class:`ScenarioError` explains the constraint rather than
        crashing at import time.
        """
        if _tomllib is None:  # pragma: no cover - 3.10 only
            raise ScenarioError(
                "TOML scenario files require Python 3.11+ (tomllib);"
                " use ScenarioSpec.from_dict instead"
            )
        if text_or_path.endswith(".toml"):
            with open(text_or_path, "rb") as fh:
                doc = _tomllib.load(fh)
        else:
            doc = _tomllib.loads(text_or_path)
        return cls.from_dict(doc)

    # -- derivation -----------------------------------------------------
    def with_topology(self, **overrides: Any) -> "ScenarioSpec":
        """Copy with topology fields replaced (used by grid drivers)."""
        return replace(self, topology=replace(self.topology, **overrides))

    def with_workload(self, **overrides: Any) -> "ScenarioSpec":
        """Copy with workload parameters (or ``kind=``) replaced."""
        kind = overrides.pop("kind", self.workload.kind)
        params = dict(self.workload.params)
        if kind != self.workload.kind:
            params = {}  # parameters do not carry across generators
        params.update(overrides)
        return replace(self, workload=WorkloadSpec(kind=kind, params=params))

    def with_measure(self, **overrides: Any) -> "ScenarioSpec":
        """Copy with measurement knobs replaced."""
        return replace(self, measure=replace(self.measure, **overrides))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "scenario": {"name": self.name, "description": self.description},
            "topology": self.topology.as_dict(),
            "workload": self.workload.as_dict(),
            "measure": self.measure.as_dict(),
        }


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class ScenarioRun:
    """Outcome of executing one scenario once (or ``repeats`` times)."""

    spec: ScenarioSpec
    result: WorkloadResult
    wall_seconds: float
    #: Flight-recorder event stream (``topology.trace != "off"`` only);
    #: feed it to :func:`repro.obs.write_trace` for Perfetto/JSONL export.
    trace_events: Optional[List[Dict[str, Any]]] = None
    #: Effective-engine record (:func:`repro.engine.engine_summary`):
    #: what the configured engine actually did, phase by phase — kept out
    #: of ``result.extra`` because virtual results (the bit-identity
    #: contract) must not vary by engine.
    engine: Optional[Dict[str, Any]] = None

    def report_entry(self) -> Dict[str, Any]:
        """The JSON shape :func:`build_report` aggregates."""
        entry = {
            "description": self.spec.description,
            "topology": self.spec.topology.as_dict(),
            "workload": self.spec.workload.as_dict(),
            "reclaimer": self.spec.topology.reclaimer,
            "ops_scale": self.spec.measure.ops_scale,
            "elapsed_virtual_s": self.result.elapsed,
            "operations": self.result.operations,
            "throughput_ops_s": self.result.ops_per_second,
            "comm": dict(self.result.comm),
            "wall_seconds": self.wall_seconds,
            "extra": _jsonable(self.result.extra),
        }
        if self.engine is not None:
            entry["engine"] = self.engine
        return entry


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of workload extras to JSON-safe values."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def compiled_coverage(spec: ScenarioSpec) -> str:
    """The engine tier this scenario's workload gets under ``compiled``.

    Computed from the same :func:`repro.engine.compiled_plan` predicate
    the workload generators consult at run time — never hand-maintained —
    so the ``scenarios --list`` coverage column cannot drift from what
    the engine actually does.  Returns ``"columnar"``, ``"serial"`` or
    ``"interpreted"``.
    """
    topo = spec.topology
    params = spec.workload.resolved_params(spec.measure.ops_scale)
    policy = parse_policy(topo.policy).make_epoch_policy()
    tier, _reason = compiled_plan(
        spec.workload.kind,
        trace=topo.trace,
        tasks_per_locale=topo.tasks_per_locale,
        reclaim_every=params.get("reclaim_every"),
        wants_pin_times=policy.wants_pin_times,
        wants_retire_times=policy.wants_retire_times,
    )
    return tier


def run_scenario(spec: ScenarioSpec) -> ScenarioRun:
    """Execute one scenario on a fresh runtime and return its run record.

    When ``measure.repeats > 1`` every repetition must produce identical
    virtual time, operation count and comm totals — a violation raises
    :class:`ScenarioError`, because it means the scenario's workload broke
    the engine's determinism contract.  With tracing enabled the flight-
    recorder event stream joins that check: repeats must replay the very
    same events (docs/OBSERVABILITY.md), and the merged stream's metrics
    registry lands under ``extra["obs"]`` in the run's report entry.
    """
    params = spec.workload.resolved_params(spec.measure.ops_scale)
    kind = WORKLOAD_KINDS[spec.workload.kind]
    t0 = time.perf_counter()
    reference: Optional[WorkloadResult] = None
    reference_events: Optional[List[Dict[str, Any]]] = None
    engine_info: Optional[Dict[str, Any]] = None
    for rep in range(spec.measure.repeats):
        with Runtime(config=spec.topology.runtime_config()) as rt:
            result = kind.runner(rt, spec.topology.tasks_per_locale, params)
        events = rt._tracer.events() if rt._tracer is not None else None
        if reference is None:
            reference = result
            reference_events = events
            engine_info = engine_summary(rt)
        elif (
            result.elapsed != reference.elapsed
            or result.operations != reference.operations
            or result.comm != reference.comm
        ):
            raise ScenarioError(
                f"scenario {spec.name!r} is not deterministic: repeat"
                f" {rep + 1} produced elapsed={result.elapsed!r},"
                f" comm={result.comm!r} vs first run"
                f" elapsed={reference.elapsed!r}, comm={reference.comm!r}"
            )
        elif events != reference_events:
            raise ScenarioError(
                f"scenario {spec.name!r} trace is not deterministic:"
                f" repeat {rep + 1} emitted {len(events or [])} event(s)"
                f" vs {len(reference_events or [])} on the first run,"
                f" or the streams differ event-for-event"
            )
    assert reference is not None
    if reference_events is not None:
        registry = MetricsRegistry.from_events(
            reference_events, spec.topology.trace
        )
        reference.extra["obs"] = registry.as_dict()
    return ScenarioRun(
        spec=spec,
        result=reference,
        wall_seconds=time.perf_counter() - t0,
        trace_events=reference_events,
        engine=engine_info,
    )


def run_scenario_grid(
    specs: Sequence[ScenarioSpec],
    *,
    jobs: Optional[int] = None,
    progress: Optional[Callable[[ScenarioRun], None]] = None,
) -> List[ScenarioRun]:
    """Execute many scenarios, in parallel, one runtime per point.

    Each point builds (and tears down) its own worker-pool runtime —
    scenario runs never share simulator state, so executing them
    concurrently cannot change any virtual-time result.  ``jobs`` bounds
    the real threads driving points (default: min(#specs, 4)); results
    come back in spec order regardless of completion order.
    """
    specs = list(specs)
    if not specs:
        return []
    jobs = jobs if jobs is not None else min(len(specs), 4)
    if jobs < 1:
        raise ScenarioError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        runs = []
        for spec in specs:
            run = run_scenario(spec)
            if progress is not None:
                progress(run)
            runs.append(run)
        return runs
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(run_scenario, spec) for spec in specs]
        runs = []
        for fut in futures:
            run = fut.result()
            if progress is not None:
                progress(run)
            runs.append(run)
    return runs


# ---------------------------------------------------------------------------
# Reporting & regression baselines
# ---------------------------------------------------------------------------


def load_baselines(path: str) -> Dict[str, Any]:
    """Load a scenario-baselines JSON file ({} when absent)."""
    import json
    import os

    if not os.path.exists(path):
        return {}
    with open(path) as fh:
        doc = json.load(fh)
    return doc.get("scenarios", {})


def baseline_entry(run: ScenarioRun) -> Dict[str, Any]:
    """The per-scenario facts a baseline pins (all virtual quantities)."""
    return {
        "ops_scale": run.spec.measure.ops_scale,
        "reclaimer": run.spec.topology.reclaimer,
        "topology": run.spec.topology.topology,
        "aggregation": run.spec.topology.aggregation,
        "policy": run.spec.topology.policy,
        "cost_profile": run.spec.topology.cost_profile,
        "cost_scale": run.spec.topology.cost_scale,
        "elapsed_virtual_s": run.result.elapsed,
        "operations": run.result.operations,
        "comm": dict(run.result.comm),
    }


def _baseline_status(run: ScenarioRun, baselines: Mapping[str, Any]) -> Dict[str, Any]:
    base = baselines.get(run.spec.name)
    if base is None:
        return {"status": "new"}
    if base.get("ops_scale") != run.spec.measure.ops_scale:
        return {
            "status": "incomparable",
            "reason": (
                f"baseline recorded at ops_scale={base.get('ops_scale')},"
                f" run used {run.spec.measure.ops_scale}"
            ),
        }
    # Axes that change the simulated machine: a differing run is a
    # different experiment, not a regression — report incomparable.
    topo = run.spec.topology
    for key, default, got in (
        ("reclaimer", "ebr", topo.reclaimer),
        ("topology", "flat", topo.topology),
        ("aggregation", 1, topo.aggregation),
        ("policy", "fixed", topo.policy),
        ("cost_profile", "default", topo.cost_profile),
        ("cost_scale", 1.0, topo.cost_scale),
    ):
        recorded = base.get(key, default)
        if recorded != got:
            return {
                "status": "incomparable",
                "reason": (
                    f"baseline recorded with {key}={recorded!r}, run used"
                    f" {got!r}"
                ),
            }
    same = (
        base.get("elapsed_virtual_s") == run.result.elapsed
        and base.get("operations") == run.result.operations
        and base.get("comm") == run.result.comm
    )
    if same:
        return {"status": "match"}
    return {
        "status": "drift",
        "baseline": {
            "elapsed_virtual_s": base.get("elapsed_virtual_s"),
            "operations": base.get("operations"),
            "comm": base.get("comm"),
        },
    }


def build_report(
    runs: Sequence[ScenarioRun],
    *,
    baselines: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Aggregate runs into one JSON-ready report document.

    Each scenario entry carries its spec echo, virtual-time results, wall
    time, and — when a baselines mapping is given — a regression verdict:
    ``match`` (bit-identical to the recorded baseline), ``drift`` (virtual
    results moved: a behaviour change, since virtual time is
    deterministic), ``new`` (no baseline yet), or ``incomparable``
    (baseline was recorded at a different ops_scale).
    """
    doc: Dict[str, Any] = {
        "schema": 1,
        "generator": "repro.bench.scenarios",
        "scenarios": {},
    }
    for run in runs:
        entry = run.report_entry()
        if baselines is not None:
            entry["regression"] = _baseline_status(run, baselines)
        doc["scenarios"][run.spec.name] = entry
    return doc


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace_existing: bool = False) -> ScenarioSpec:
    """Add a spec to the named-scenario registry (returns it unchanged).

    Registered scenarios promise the determinism contract in the module
    docstring; re-registering a taken name requires ``replace_existing``.
    """
    if spec.name in _REGISTRY and not replace_existing:
        raise ScenarioError(
            f"scenario {spec.name!r} is already registered; pass"
            f" replace_existing=True to overwrite"
        )
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name (with a nearest-miss hint)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        import difflib

        hint = difflib.get_close_matches(name, _REGISTRY, n=1)
        extra = f" (did you mean {hint[0]!r}?)" if hint else ""
        raise ScenarioError(
            f"no scenario named {name!r}{extra}; see scenario_names()"
        ) from None


def scenario_names() -> List[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def iter_scenarios() -> Iterator[ScenarioSpec]:
    """Registered specs in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]


# ---------------------------------------------------------------------------
# Built-in scenarios
# ---------------------------------------------------------------------------


def _builtin(
    name: str,
    description: str,
    topology: Dict[str, Any],
    workload: Dict[str, Any],
    measure: Optional[Dict[str, Any]] = None,
) -> None:
    register_scenario(
        ScenarioSpec(
            name=name,
            description=description,
            topology=TopologySpec.from_dict(topology),
            workload=WorkloadSpec.from_dict(workload),
            measure=MeasureSpec.from_dict(measure or {}),
        )
    )


# The paper's grid, as scenario bases the figure drivers derive from.
_builtin(
    "paper-atomic-mix",
    "Figure 3's atomic-operation mix at one grid point (8 locales, ugni);"
    " the base spec figure3_* drivers sweep.",
    {"locales": 8, "network": "ugni"},
    {"kind": "atomic_mix", "cell": "atomic_object", "ops_per_task": 2048},
)
_builtin(
    "paper-reclaim-endonly",
    "Figure 6's pin/deferDelete loop with reclamation only at the end"
    " (8 locales, ugni, 50% remote objects); base spec for figures 4-7.",
    {"locales": 8, "network": "ugni"},
    {"kind": "epoch", "ops_per_task": 1024, "remote_percent": 50},
)

# Hotspot scenarios: Zipf-skewed traffic no figure in the paper covers.
_builtin(
    "hotspot-zipf",
    "Zipf-1.2 hotspot over 64 cyclic cells: locale 0's NIC pipeline is the"
    " contended resource (ugni, 8 locales, 2 tasks/locale).",
    {"locales": 8, "network": "ugni", "tasks_per_locale": 2},
    {"kind": "atomic_hotspot", "ops_per_task": 2048, "zipf_exponent": 1.2},
)
_builtin(
    "hotspot-zipf-am",
    "The same Zipf hotspot without network atomics: the hot locale's"
    " progress thread serializes active messages and saturates far sooner.",
    {"locales": 8, "network": "none", "tasks_per_locale": 2},
    {"kind": "atomic_hotspot", "ops_per_task": 2048, "zipf_exponent": 1.2},
)

# Mixed read/write epoch traffic.
_builtin(
    "read-mostly-reclaim",
    "90% read / 10% deferDelete pin-unpin traffic, phased root-task"
    " reclamation every half — the web-cache shape (8 locales, ugni).",
    {"locales": 8, "network": "ugni"},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 2048,
        "write_percent": 10,
        "rounds": 2,
    },
)
_builtin(
    "write-heavy-reclaim",
    "75% deferDelete with half the objects remote, four forall rounds at"
    " 2 tasks/locale, end-of-run reclamation — retirement pressure well"
    " past Figure 5's.",
    {"locales": 8, "network": "ugni", "tasks_per_locale": 2},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 1024,
        "write_percent": 75,
        "remote_percent": 50,
        "rounds": 4,
        # End-only reclamation: with >1 worker per locale, a mid-workload
        # root scan visits cache lines whose idle-bank residue is real-
        # schedule-dependent (see the determinism notes in
        # repro.bench.workloads), which would break bit-identical results.
        "reclaim_between_rounds": False,
    },
)

# Producer-consumer churn over the real structures.
_builtin(
    "queue-churn",
    "Producer-consumer churn over per-slot Michael-Scott queues in plain-"
    "CAS mode under EBR; consumers drain their neighbour's (remote) queue.",
    {"locales": 8, "network": "ugni"},
    {"kind": "churn", "structure": "queue", "items_per_task": 512, "rounds": 2},
)
_builtin(
    "stack-churn",
    "The same churn over Treiber stacks (plain CAS + EBR), 2 tasks per"
    " locale — LIFO address reuse makes this the ABA-pressure scenario.",
    {"locales": 8, "network": "ugni", "tasks_per_locale": 2},
    {
        "kind": "churn",
        "structure": "stack",
        "items_per_task": 512,
        "rounds": 2,
        # End-only reclamation, for the same reason as write-heavy-reclaim.
        "reclaim_between_rounds": False,
    },
)

# Cross-scheme reclamation comparisons: the same three workload shapes
# under every scheme in repro.reclaim — the ablation the paper could not
# run (its EBR was the only implementation).  Shapes:
#
# * hotspot   — 100% deferDelete with every object remote: retirement and
#   bulk-free pressure concentrated on remote locales (scatter economics
#   vs HP scan traffic vs interval draining);
# * read-mostly — 90% pin/unpin-only traffic: the read-side cost ladder
#   (QSBR free < EBR two atomics < IBR era publish < HP protect+validate);
# * churn     — producer-consumer stack churn in plain-CAS mode: address
#   reuse under real structure traffic, consumers draining a remote
#   neighbour.
#
# All three use one worker per locale and root-driven phase-boundary
# reclamation, the determinism discipline documented in
# repro.bench.workloads; the registered baselines pin each scheme's
# virtual results bit-exactly.
for _scheme in RECLAIMER_SCHEMES:
    _builtin(
        f"reclaim-hotspot-{_scheme}",
        f"Cross-scheme comparison ({_scheme}): 100% remote deferDelete"
        " traffic, 4 locales, phased root reclamation.",
        {"locales": 4, "network": "ugni", "reclaimer": _scheme},
        {
            "kind": "epoch_mixed",
            "ops_per_task": 512,
            "write_percent": 100,
            "remote_percent": 100,
            "rounds": 2,
        },
    )
    _builtin(
        f"reclaim-read-mostly-{_scheme}",
        f"Cross-scheme comparison ({_scheme}): 90% read pin/unpin traffic"
        " — the read-side cost ladder (4 locales, ugni).",
        {"locales": 4, "network": "ugni", "reclaimer": _scheme},
        {
            "kind": "epoch_mixed",
            "ops_per_task": 1024,
            "write_percent": 10,
            "rounds": 2,
        },
    )
    _builtin(
        f"reclaim-churn-{_scheme}",
        f"Cross-scheme comparison ({_scheme}): producer-consumer stack"
        " churn in plain-CAS mode, remote consumers (4 locales, ugni).",
        {"locales": 4, "network": "ugni", "reclaimer": _scheme},
        {
            "kind": "churn",
            "structure": "stack",
            "items_per_task": 256,
            "rounds": 2,
        },
    )
del _scheme

# Combined traffic and degraded interconnects.
_builtin(
    "multi-structure",
    "Every slot drives a stack, a queue and a hash table retiring into one"
    " shared EpochManager — combined-traffic reclamation (8 locales, ugni).",
    {"locales": 8, "network": "ugni"},
    {"kind": "multi_structure", "ops_per_slot": 256, "rounds": 2},
)
_builtin(
    "degraded-latency",
    "Write-heavy epoch traffic on the 'degraded' cost profile (8x network"
    " latencies, no NIC atomics): does phased reclamation still amortize?",
    {"locales": 8, "network": "none", "cost_profile": "degraded"},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 1024,
        "write_percent": 50,
        "remote_percent": 50,
        "rounds": 2,
    },
)

# Multi-level topologies (see repro.comm.topology and docs/TOPOLOGY.md):
# the same workload shapes under hierarchical (sockets-in-nodes, shared
# per-node uplinks) and dragonfly (degraded shared inter-group links)
# machines.  The flat scenarios above stay bit-identical — these add the
# locality axis the paper's single-machine evaluation could not vary.
_builtin(
    "topo-hier-hotspot",
    "Zipf-1.2 hotspot on hier:2x2 (2 nodes x 2 sockets x 2 locales):"
    " node 0's shared uplink — not just locale 0's NIC — is the contended"
    " resource for cross-node traffic.",
    {"locales": 8, "network": "ugni", "topology": "hier:2x2",
     "tasks_per_locale": 2},
    {"kind": "atomic_hotspot", "ops_per_task": 2048, "zipf_exponent": 1.2},
)
_builtin(
    "topo-hier-rackaffine",
    "Rack-affine producer-consumer churn on hier:2x2: consumers drain"
    " their socket sibling's queue, so the drain phase rides the coherent"
    " fabric instead of the interconnect.",
    {"locales": 8, "network": "ugni", "topology": "hier:2x2"},
    {"kind": "churn", "structure": "queue", "items_per_task": 512,
     "rounds": 2, "pairing": "near"},
)
_builtin(
    "topo-hier-crossnode",
    "The same churn anti-localized: every consumer drains across the"
    " node boundary, funnelling through the shared per-node uplinks —"
    " the worst-case contrast to topo-hier-rackaffine.",
    {"locales": 8, "network": "ugni", "topology": "hier:2x2"},
    {"kind": "churn", "structure": "queue", "items_per_task": 512,
     "rounds": 2, "pairing": "far"},
)
_builtin(
    "topo-dragonfly-churn",
    "Ring churn over a dragonfly:4 machine (2 groups of 4): one consumer"
    " per group crosses the 4x-degraded optical link; the rest stay"
    " intra-group.",
    {"locales": 8, "network": "ugni", "topology": "dragonfly:4"},
    {"kind": "churn", "structure": "queue", "items_per_task": 512,
     "rounds": 2},
)
_builtin(
    "topo-dragonfly-hotspot",
    "Zipf hotspot on dragonfly:4 without network atomics: cross-group"
    " AMs pay degraded latencies and serialize on the hot group's shared"
    " uplink instead of one locale's progress thread.",
    {"locales": 8, "network": "none", "topology": "dragonfly:4",
     "tasks_per_locale": 2},
    {"kind": "atomic_hotspot", "ops_per_task": 2048, "zipf_exponent": 1.2},
)
# EBR vs hazard pointers under hierarchy: HP's remote hazard scans cross
# the uplinks, EBR's limbo lists privatize per locale — the reclamation
# comparison the locality axis makes interesting.
for _scheme in ("ebr", "hp"):
    _builtin(
        f"topo-hier-reclaim-{_scheme}",
        f"Cross-scheme comparison under hierarchy ({_scheme}): 50%"
        " deferDelete with half the objects remote on hier:2x2 — scan"
        " traffic vs scatter economics when remote means 'across the"
        " uplink'.",
        {"locales": 8, "network": "ugni", "topology": "hier:2x2",
         "reclaimer": _scheme},
        {
            "kind": "epoch_mixed",
            "ops_per_task": 1024,
            "write_percent": 50,
            "remote_percent": 50,
            "rounds": 2,
        },
    )

# Uplink-aware reclamation (see repro.comm.aggregation and
# docs/AGGREGATION.md): the exact topo-hier-reclaim-* workloads with the
# message-aggregation window open, sweeping window sizes.  Scan paths
# walk coherence domains first, cross each shared uplink once per
# window-sized batch, and (EBR) share limbo lists per socket — these are
# the successors the PR 4 baselines are measured against, and they must
# post *lower* virtual time than their aggregation-off twins.
for _scheme in ("ebr", "hp"):
    for _window in (4, 16):
        _builtin(
            f"topo-hier-agg-{_scheme}-w{_window}",
            f"topo-hier-reclaim-{_scheme} with the aggregation window at"
            f" {_window}: domain-ordered scans, batched uplink traversals"
            + (", socket-shared limbo lists" if _scheme == "ebr" else "")
            + " — beats the aggregation-off baseline on virtual time.",
            {"locales": 8, "network": "ugni", "topology": "hier:2x2",
             "reclaimer": _scheme, "aggregation": _window},
            {
                "kind": "epoch_mixed",
                "ops_per_task": 1024,
                "write_percent": 50,
                "remote_percent": 50,
                "rounds": 2,
            },
        )
    del _window
del _scheme

# The dragonfly twin of the topo-hier-agg sweep (ROADMAP: degraded
# inter-group uplinks should widen the batching payoff): same mixed
# deferDelete workload on dragonfly:4 groups, whose inter-group links are
# slower *and* shared — so one batched traversal per window replaces the
# costliest per-op crossings in the registry.  Window 16 only: the w4
# point is already pinned by the hier sweep, and the wide window is where
# the degraded-uplink payoff shows.
for _scheme in ("ebr", "hp"):
    _builtin(
        f"topo-dragonfly-agg-{_scheme}-w16",
        f"Mixed deferDelete traffic under {_scheme} on dragonfly:4 groups"
        f" with the aggregation window at 16: domain-ordered scans batch"
        f" the degraded inter-group uplink crossings"
        + (", group-shared limbo lists" if _scheme == "ebr" else "")
        + ".",
        {"locales": 8, "network": "ugni", "topology": "dragonfly:4",
         "reclaimer": _scheme, "aggregation": 16},
        {
            "kind": "epoch_mixed",
            "ops_per_task": 1024,
            "write_percent": 50,
            "remote_percent": 50,
            "rounds": 2,
        },
    )
del _scheme

# Virtual-time policy sweeps (see repro.policy and docs/POLICY.md): the
# same mixed deferDelete workload under each epoch-advance policy on the
# hierarchical machine, and the adaptive-window head-to-head on the
# dragonfly machine.  Four rounds give the epoch policies three mid-run
# decision points; the parameters are tuned so each policy's decision
# sequence actually differs from fixed's (threshold:512 defers all three,
# decay:512 defers twice then advances as its effective threshold decays,
# grace:1e-4 defers whenever the last virtual pin is within the grace
# period).  All registered baselines pin the policy axis.
for _policy, _blurb in (
    ("threshold:512", "defers every mid-run advance (pending never"
     " reaches 512 per locale) — the cheapest cadence"),
    ("decay:512", "defers like threshold:512 until the deferral streak"
     " decays the effective threshold under the pending count"),
    ("grace:1e-4", "holds the epoch open while the last virtual-time pin"
     " is younger than the grace period"),
):
    _kind = _policy.split(":", 1)[0]
    _builtin(
        f"policy-sweep-hier-{_kind}",
        f"topo-hier-reclaim-ebr under policy {_policy} with four rounds:"
        f" {_blurb}.",
        {"locales": 8, "network": "ugni", "topology": "hier:2x2",
         "policy": _policy},
        {
            "kind": "epoch_mixed",
            "ops_per_task": 1024,
            "write_percent": 50,
            "remote_percent": 50,
            "rounds": 4,
        },
    )
del _policy, _blurb, _kind
_builtin(
    "policy-sweep-dragonfly-threshold",
    "Mixed deferDelete traffic under hp on dragonfly:4 with policy"
    " threshold:4096: root hazard scans — and their cross-group slot"
    " reads — are skipped while per-guard retired buffers stay small;"
    " the guard-local threshold scans (HP's bounded-garbage guarantee)"
    " keep running ungated.",
    {"locales": 8, "network": "ugni", "topology": "dragonfly:4",
     "reclaimer": "hp", "aggregation": 16, "policy": "threshold:4096"},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 1024,
        "write_percent": 50,
        "remote_percent": 50,
        "rounds": 4,
    },
)
# The adaptive-window head-to-head: same 16-locale dragonfly:8 machine
# (two groups of 8 — each root hazard scan reads 32 same-group slots, so
# window 16 needs two uplink batches per group), once with the static
# window the aggregation axis pins and once with the adaptive policy,
# which observes full batches and grows the window until one batch per
# group suffices.  The adaptive run must post lower virtual time than
# this static twin — the registered baselines pin the gap.
_builtin(
    "policy-sweep-dragonfly-w16",
    "The static twin of the adaptive head-to-head: mixed deferDelete"
    " under hp on a 16-locale dragonfly:8 with the aggregation window"
    " fixed at 16 — every root scan pays two uplink batches per group.",
    {"locales": 16, "network": "ugni", "topology": "dragonfly:8",
     "reclaimer": "hp", "aggregation": 16},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 1024,
        "write_percent": 50,
        "remote_percent": 50,
        "rounds": 2,
    },
)
_builtin(
    "policy-sweep-dragonfly-adaptive",
    "policy-sweep-dragonfly-w16 with the adaptive window policy"
    " (adaptive:2..64): full 16-item batches grow the window until each"
    " group's hazard slots ride one uplink batch — beats the static twin"
    " on virtual time.",
    {"locales": 16, "network": "ugni", "topology": "dragonfly:8",
     "reclaimer": "hp", "aggregation": 16, "policy": "adaptive:2..64"},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 1024,
        "write_percent": 50,
        "remote_percent": 50,
        "rounds": 2,
    },
)

# Ragged shape: a hierarchy whose locale count does not fill the last
# node (hier:2x3 over 8 locales = one full 6-locale node + one partial
# node of 2, itself a partial socket).  Exercises partial-node uplink
# grouping and partial-socket coherence domains on the aggregated path —
# ROADMAP open item 4 (tests/test_aggregation.py asserts the grouping).
_builtin(
    "topo-hier-ragged",
    "Mixed deferDelete traffic on a ragged hier:2x3 over 8 locales (the"
    " second node has only 2 of 6 locales) with aggregation window 4:"
    " partial-node uplink groups and a partial socket on the"
    " domain-ordered scan path.",
    {"locales": 8, "network": "ugni", "topology": "hier:2x3",
     "aggregation": 4},
    {
        "kind": "epoch_mixed",
        "ops_per_task": 512,
        "write_percent": 50,
        "remote_percent": 50,
        "rounds": 2,
    },
)
