"""Columnar op-stream IR: lowering fixed workload streams ahead of replay.

The determinism contract (see the notes in :mod:`repro.bench.workloads`)
already forces every scenario workload to emit *fixed* op streams: each
task's targets come from its seeded RNG or precomputed tables, never from
values another task wrote.  That discipline is exactly the precondition
for **batch compilation** — if the op sequence is known before the phase
runs, the whole phase can be lowered into columnar arrays and replayed in
one tight pass instead of one Python dispatch chain per op.

This module is the front end: it turns a task's RNG into the column of
per-op cell indices the executor (:mod:`repro.engine.executor`) replays.
The columns must consume *the identical bit stream* the interpreted task
bodies consume — one draw per op, in op order — so that a compiled run is
bit-identical to an interpreted one; each lowering function documents the
interpreted body it mirrors and is pinned against it by
tests/test_engine_compiled.py.

What lowers, what falls back
----------------------------
A phase lowers to the **columnar** tier when its per-op charge stream is
fixed up front: every op charges a precompiled route and the charge
count is value-independent (an ``AtomicObject`` CAS *outcome* may vary,
but the charges per attempt do not — its op cycle lowers to a fixed
per-op charge-count table).  The mix/hotspot streams over every cell
kind, the epoch rounds of all four reclaimers (EBR's token/limbo/pool
cells, hp/qsbr/ibr guard buffers — threshold scans run real mid-replay),
and the root-task placement-allocation loops all replay columnar.
Value-dependent phases that are still pool-size-deterministic (structure
traversals in churn / multi-structure, pin-time-tracking policies) take
the **serial** tier: real bodies inline in the canonical pool-size-1
schedule.  Only schedule-scoped shapes (mid-phase ``tryReclaim``
elections, in-forall token reuse with >1 task per locale) and full-detail
tracing fall back to the interpreter — which ``compiled-strict`` turns
into an error.  The decision table is :func:`repro.engine.compiled_plan`;
see docs/ENGINE.md.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, List, Sequence

__all__ = [
    "fast_randbelow",
    "mix_column",
    "zipf_column",
    "mix_column_fn",
    "zipf_column_fn",
]


def fast_randbelow(rng) -> Callable[[int], int]:
    """The fast per-op cell draw shared by every uniform-mix stream.

    ``Random.randrange(n)`` is a thin, surprisingly expensive wrapper over
    ``_randbelow(n)`` for a positive int bound; calling the latter
    directly consumes the identical bit stream (so the op sequence — and
    therefore virtual time and comm counts — is unchanged) at a fraction
    of the call cost.  Both the interpreted workload bodies and the
    compiled lowerings draw through this one helper, which is what makes
    "same bit stream" checkable in one place instead of four.
    """
    return rng._randbelow


def mix_column(rng, n_ops: int, ncells: int) -> List[int]:
    """Lower one task of the uniform atomic mix into a cell-index column.

    Mirrors ``run_atomic_mix``'s ``body_int``: one ``_randbelow(ncells)``
    draw per op, in op order.  The 25/25/25/25 read/write/CAS/exchange
    cycle needs no column of its own — all four ops charge the same
    narrow route, so only the target cell matters for replay.
    """
    randbelow = fast_randbelow(rng)
    return [randbelow(ncells) for _ in range(n_ops)]


def zipf_column(
    rng, n_ops: int, cdf: Sequence[float], total_w: float
) -> List[int]:
    """Lower one task of the Zipf hotspot into a cell-index column.

    Mirrors ``run_atomic_hotspot``'s ``body_int``: one ``rng.random()``
    draw + bisect over the truncated-Zipf CDF per op, in op order.
    """
    random = rng.random
    pick = bisect_left
    return [pick(cdf, random() * total_w) for _ in range(n_ops)]


def mix_column_fn(n_ops: int, ncells: int) -> Callable:
    """A ``column_fn(rng)`` closure for the uniform mix (executor input)."""
    return lambda rng: mix_column(rng, n_ops, ncells)


def zipf_column_fn(
    n_ops: int, cdf: Sequence[float], total_w: float
) -> Callable:
    """A ``column_fn(rng)`` closure for the Zipf hotspot (executor input)."""
    return lambda rng: zipf_column(rng, n_ops, cdf, total_w)
