"""Batch-compiled workload execution (the ``engine = "compiled"`` axis).

Two halves (see docs/ENGINE.md):

* :mod:`repro.engine.opstream` — the columnar IR: lowering a task's fixed
  op stream into per-op target columns ahead of the run.
* :mod:`repro.engine.executor` — the serial replay engine: borrows every
  ``ServicePoint`` on the phase's routes into plain lists, replays the
  spawn-submission (pool-size-1) schedule with the ``serve_locked``
  recurrence inlined, and writes reservations, diag stripes and reclaim
  state back at phase exit.  Bit-identical to the interpreter by
  construction; wall-clock only.
"""

from .executor import (
    NotCompilable,
    run_ebr_epoch_phase,
    run_uniform_atomic_phase,
)
from .opstream import (
    fast_randbelow,
    mix_column,
    mix_column_fn,
    zipf_column,
    zipf_column_fn,
)

__all__ = [
    "NotCompilable",
    "run_uniform_atomic_phase",
    "run_ebr_epoch_phase",
    "fast_randbelow",
    "mix_column",
    "mix_column_fn",
    "zipf_column",
    "zipf_column_fn",
]
