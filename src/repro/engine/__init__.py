"""Batch-compiled workload execution (the ``engine = "compiled"`` axis).

Four pieces (see docs/ENGINE.md):

* :mod:`repro.engine.opstream` — the columnar IR: lowering a task's fixed
  op stream into per-op target columns ahead of the run.
* :mod:`repro.engine.executor` — the replay engine.  The *columnar* tier
  borrows every ``ServicePoint`` on the phase's routes into plain lists,
  replays the spawn-submission (pool-size-1) schedule with the
  ``serve_locked`` recurrence inlined, and writes reservations, diag
  stripes and reclaim state back at phase exit; the *serial* tier runs
  real task bodies inline in the same canonical schedule for
  value-dependent phases.  Bit-identical to the interpreter by
  construction; wall-clock only.
* :mod:`repro.engine.coverage` — the one predicate deciding which tier a
  workload shape gets, the per-runtime effective-engine log, and the
  ``compiled-strict`` fallback-is-an-error enforcement.
* :mod:`repro.engine.cache` — the cross-run compilation cache sharing
  lowered columns across ``--repeats`` and grid-runner runtimes.
"""

from .cache import COLUMN_CACHE, CompilationCache
from .coverage import EngineLog, compiled_plan, engine_summary, note_phase
from .executor import (
    NotCompilable,
    run_alloc_phase,
    run_ebr_epoch_phase,
    run_epoch_workload_phase,
    run_guard_epoch_phase,
    run_uniform_atomic_phase,
    serial_tasks,
)
from .opstream import (
    fast_randbelow,
    mix_column,
    mix_column_fn,
    zipf_column,
    zipf_column_fn,
)

__all__ = [
    "NotCompilable",
    "serial_tasks",
    "run_alloc_phase",
    "run_uniform_atomic_phase",
    "run_ebr_epoch_phase",
    "run_guard_epoch_phase",
    "run_epoch_workload_phase",
    "compiled_plan",
    "EngineLog",
    "note_phase",
    "engine_summary",
    "CompilationCache",
    "COLUMN_CACHE",
    "fast_randbelow",
    "mix_column",
    "mix_column_fn",
    "zipf_column",
    "zipf_column_fn",
]
