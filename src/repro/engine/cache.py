"""Cross-run compilation cache for lowered op-stream columns.

Lowered columns are a pure function of ``(column kind, shape params,
config seed, first task id, task count)``: per-task RNG streams are
seeded ``(seed << 20) ^ task_id`` and the executor hands out consecutive
task ids in replay order, so two runs that agree on those inputs draw
bit-identical columns.  That makes the columns safe to memoize *across*
:class:`~repro.runtime.runtime.Runtime` instances — exactly what
``--repeats`` and the parallel grid runner create: a fresh runtime per
repetition whose lowering work was, before this cache, recomputed from
scratch every time.

The cache is deliberately process-global and lock-protected (the grid
runner lowers from worker threads) with a small LRU bound — columns for
the bench shapes are a few hundred KiB, and the bound only exists so a
long ``scenarios --all`` sweep cannot grow without limit.  Charge
*plans* (borrowed ServicePoint state, route rows) are **not** cached:
they alias live runtime objects and are cheap to rebuild; only the
RNG-derived columns — the dominant lowering cost — are shared.

Keys never include runtime object identities, so there is nothing to
invalidate: a key either reproduces the same columns or is a different
key.  ``clear()`` exists for tests that want to measure the cold path.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable, Tuple

__all__ = ["CompilationCache", "COLUMN_CACHE"]


class CompilationCache:
    """A small thread-safe LRU mapping column keys to built artifacts."""

    def __init__(self, max_entries: int = 256) -> None:
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``key``, building it on a miss.

        ``build`` runs outside the lock — two threads racing on the same
        cold key may both build (the artifacts are equal by construction;
        last writer wins), which is cheaper than serializing all lowering
        behind one lock.
        """
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                pass
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                return value
        value = build()
        with self._lock:
            self._misses += 1
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
        return value

    def stats(self) -> Tuple[int, int, int]:
        """``(hits, misses, entries)`` — read by tests and bench reports."""
        with self._lock:
            return (self._hits, self._misses, len(self._entries))

    def clear(self) -> None:
        """Drop all entries and reset counters (tests' cold-path lever)."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0


#: The process-global column cache shared by every Runtime (see module
#: docstring for why global is the point, not an accident).
COLUMN_CACHE = CompilationCache()
