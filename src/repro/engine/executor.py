"""The compiled-engine executor: serial columnar replay of whole phases.

Why serial replay is bit-identical
----------------------------------
The engine's load-bearing invariant (docs/ENGINE.md, pinned by
tests/test_engine.py) is that virtual results are independent of
real-thread scheduling and therefore of the worker-pool size.  A pool of
size one runs a ``forall``'s tasks to completion in spawn-submission
order — so replaying the same tasks serially on the root thread, in
spawn-submission order, with the same per-task clocks, RNG seeds, task
ids and charge sequences, is just another legal schedule and produces
bit-identical virtual time, comm totals and reclaim stats.  The payoff is
that the serial replay needs **no locks, no TLS lookups, no per-op
dispatch**: every ``ServicePoint`` involved in the phase is borrowed into
a plain ``[next_free, idle_bank, busy_delta, served_delta]`` list, the
``serve_locked`` float recurrence is inlined into the replay loop
(float-op for float-op — same operations, same order, same rounding), and
diagnostics are restored with whole-array counter adds at phase exit.

Borrow discipline
-----------------
A phase executor runs *on the root task* between ``forall`` joins, so no
other thread can touch the borrowed points, the limbo chains, or the
token epoch slots while it runs.  All mutated state — point reservations,
diag stripes, limbo/pool chains, token slots, ``deferred_count`` — is
written back before the executor returns; interpreted code (root-driven
``tryReclaim`` between rounds, ``clear()`` at the end) then operates on
exactly the state an interpreted phase would have left.

``ServicePoint.busy_time`` is restored as one aggregate float add per
point (``served`` is an exact integer add).  Interpreted accumulation
order of ``busy_time`` is itself real-schedule-dependent, so it was never
part of the bit-identity contract — elapsed virtual time, comm totals and
reclaim stats are, and those round-trip exactly.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from random import Random
from typing import Any, Dict, List, Optional, Sequence

from ..runtime.clock import TaskClock
from ..runtime.context import TaskContext, context_scope, current_context
from ..runtime.tasking import spawn_tree_overhead
from .cache import COLUMN_CACHE

__all__ = [
    "NotCompilable",
    "serial_tasks",
    "run_alloc_phase",
    "run_uniform_atomic_phase",
    "run_ebr_epoch_phase",
    "run_guard_epoch_phase",
    "run_epoch_workload_phase",
]


@contextmanager
def serial_tasks(rt):
    """The compiled engine's *serial* tier: inline spawned tasks.

    Value-dependent phases (structure traversals, CAS retry loops) cannot
    be lowered to charge columns, but every generator in the registry is
    pool-size-deterministic — so running its tasks inline on the spawning
    thread, in spawn-submission order (the canonical pool-size-1
    schedule), is bit-identical while skipping the worker-pool handoffs,
    queue locks and TLS churn entirely.  This reuses the exact inline
    path full-detail tracing already exercises
    (:meth:`~repro.runtime.tasking.TaskGroup.spawn` with
    ``rt._inline_tasks``), restored on exit so untimed surrounding code
    keeps the configured behavior.
    """
    prev = rt._inline_tasks
    rt._inline_tasks = True
    try:
        yield
    finally:
        rt._inline_tasks = prev


class NotCompilable(RuntimeError):
    """Raised when a phase's charge plan cannot be lowered (caller should
    have gated on the workload shape first — see docs/ENGINE.md)."""


class _PointLedger:
    """Borrowed ``ServicePoint`` states for one compiled phase.

    Each borrowed point becomes a ``[next_free, idle_bank, busy_delta,
    served_delta]`` list the replay loops mutate without locking;
    :meth:`writeback` restores the reservation state and applies the
    accumulated busy/served deltas under the point's own lock.
    """

    __slots__ = ("_by_id", "_entries")

    def __init__(self) -> None:
        self._by_id: Dict[int, list] = {}
        self._entries: List[tuple] = []

    def state(self, point) -> list:
        key = id(point)
        st = self._by_id.get(key)
        if st is None:
            st = [point.next_free, point.idle_bank, 0.0, 0]
            self._by_id[key] = st
            self._entries.append((point, st))
        return st

    def writeback(self) -> None:
        for point, st in self._entries:
            with point._lock:
                point.next_free = st[0]
                point.idle_bank = st[1]
                point.busy_time += st[2]
                point.served += st[3]


def _serve(st: list, arrival: float, service: float) -> float:
    """``ServicePoint.serve_locked`` over a borrowed state list.

    Same float operations in the same order as the interpreted body (keep
    in sync with :meth:`repro.runtime.clock.ServicePoint.serve_locked`);
    busy/served land in the delta slots for aggregate writeback.
    """
    st[2] += service
    st[3] += 1
    next_free = st[0]
    if arrival >= next_free:
        st[1] += arrival - next_free
        st[0] = finish = arrival + service
        return finish
    bank = st[1]
    if bank >= service:
        st[1] = bank - service
        return arrival + service
    st[1] = 0.0
    finish = next_free + (service - bank)
    floor = arrival + service
    if finish < floor:
        finish = floor
    st[0] = finish
    return finish


def _forall_prologue(rt, ctx, active_locales, total_tasks) -> float:
    """The spawn-side bookkeeping of ``Runtime.forall``: every compiled
    task starts at ``now + spawn-tree overhead``, exactly as a spawned
    one would."""
    overhead = spawn_tree_overhead(
        total_tasks,
        rt.network.spawn_broadcast_cost(ctx.locale_id, active_locales),
    )
    return ctx.clock.now + overhead


def _forall_epilogue(rt, ctx, finish: float) -> None:
    """The join-side bookkeeping of ``Runtime.forall``."""
    ctx.clock.advance_to(finish)
    ctx.clock.advance(rt.config.costs.task_join)


def _writeback_diags(diags, diag_counts: List[List[int]]) -> None:
    """Apply per-(locale, op-index) counter deltas to this thread's stripe."""
    rows = diags._rows()
    for locale, deltas in enumerate(diag_counts):
        row = rows[locale]
        for index, n in enumerate(deltas):
            if n:
                row[index] += n


def run_alloc_phase(rt, targets: Sequence[int]) -> List[Any]:
    """Replay a root-task allocation loop: one ``rt.new_obj(object(),
    locale=home)`` per entry of ``targets``, in order.

    The heap allocations happen for real (the objects must exist for the
    retire/free paths that follow), but the per-object network charge —
    an AM round trip to a non-coherent home plus the allocator latency
    (:meth:`repro.comm.network.Network.alloc`) — replays against borrowed
    control-plane points with the serve recurrence inlined.  The epoch
    workloads pre-place thousands of objects on the root clock before
    their timed region; replaying that loop keeps the timed window's
    float base (and hence ``elapsed``) bit-identical while skipping the
    per-call context/tracer/dispatch overhead.

    Only valid when no full-detail tracer is installed (full tracing
    falls back to the interpreter before any executor runs), since the
    interpreted path would emit per-op ``alloc``/``am`` events.
    """
    ctx = current_context()
    net = rt.network
    lid = ctx.locale_id
    alloc_latency = rt.config.costs.alloc_latency
    ledger = _PointLedger()
    # Per-home recipe: None for coherent homes (allocator cost only),
    # else the AM round-trip's (latency, borrowed point, service).
    plans: List[Optional[tuple]] = []
    heaps = []
    for home in range(rt.num_locales):
        heaps.append(rt.locale(home).heap)
        dclass = net.distance_row(home)[lid]
        ctrl = net._ctrl_routes(home)[dclass]
        if ctrl is None:
            plans.append(None)
        else:
            point, cc = ctrl
            plans.append((2.0 * cc.am_latency, ledger.state(point), cc.am_service))

    now = ctx.clock.now
    n_am = 0
    out: List[Any] = []
    append = out.append
    for home in targets:
        plan = plans[home]
        if plan is not None:
            latency, pst, service = plan
            n_am += 1
            now = _serve(pst, now + latency, service)
        now += alloc_latency
        append(heaps[home].alloc(object()))
    ctx.clock.now = now
    ledger.writeback()
    diags = net.diags
    if n_am and diags._enabled:
        diags._rows()[lid][diags.op_index("am")] += n_am
    return out


# ---------------------------------------------------------------------------
# Uniform narrow-atomic phases (atomic mix, hotspot)
# ---------------------------------------------------------------------------


def run_uniform_atomic_phase(
    rt,
    *,
    homes: Sequence[int],
    tasks_per_locale: int,
    column_fn,
    op_charges: Optional[Sequence[int]] = None,
    route_row: int = 0,
    column_key: Optional[tuple] = None,
) -> None:
    """Replay one ``forall(range(nloc * tpl), body)`` of uniform atomic ops.

    ``homes[ci]`` is the home locale of cell ``ci``; ``column_fn(rng)``
    lowers one task's op stream into a column of cell indices (see
    :mod:`repro.engine.opstream`).  By default every op charges the cell's
    narrow-plain route for the issuing locale's distance class — the
    route any of read/write/CAS/exchange charges on an ``AtomicInt64`` —
    so only the target cell per op needs materializing.

    ``route_row`` selects the route-cube row instead (2 = wide, the
    ``AtomicObject`` ABA variants' 128-bit route), and ``op_charges`` maps
    the op cycle position (``op_i & 3``) to a charge count per op: the
    object bodies' CAS case is a read *then* a CAS on the same cell, two
    consecutive charges on one route — ``(1, 1, 2, 1)`` — while the
    integer mix stays on the uniform one-charge fast path (``None``).

    ``column_key`` enables the cross-run compilation cache: per-task RNG
    streams are a pure function of ``(config seed, task id)`` and task
    ids are handed out consecutively here, so the lowered columns are
    memoized in :data:`~repro.engine.cache.COLUMN_CACHE` keyed by
    ``(column_key, seed, first task id, task count)`` and shared across
    ``--repeats`` and grid-runner runtimes.

    The cells themselves are *virtual*: each gets a fresh
    ``[0.0, 0.0, ...]`` line state (a brand-new ``ServicePoint`` starts
    zeroed), never written back — workload cells are phase-local and
    nothing observes them afterwards.  Real shared points on the routes
    (NIC pipelines, progress threads, uplinks) are borrowed and restored.
    """
    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    tpl = tasks_per_locale
    ncells = len(homes)

    # ---- compile: per-(locale, cell) charge plans from the route cube --
    ledger = _PointLedger()
    lines = [[0.0, 0.0, 0.0, 0] for _ in range(ncells)]
    row_by_home: Dict[int, tuple] = {}
    dist_by_home: Dict[int, tuple] = {}
    plans_by_locale: List[list] = []
    for locale in range(nloc):
        plans = []
        for ci in range(ncells):
            home = homes[ci]
            row = row_by_home.get(home)
            if row is None:
                row = row_by_home[home] = net.atomic_class_routes(home)[
                    route_row
                ]
                dist_by_home[home] = net.distance_row(home)
            route = row[dist_by_home[home][locale]]
            point_state = (
                ledger.state(route.point) if route.point is not None else None
            )
            plans.append(
                (
                    route.latency,
                    point_state,
                    route.point_service,
                    lines[ci],
                    route.line_service,
                    route.diag_index,
                )
            )
        plans_by_locale.append(plans)

    # ---- forall bookkeeping (one item per task: body(task_idx)) --------
    total_tasks = nloc * tpl
    if total_tasks == 0:
        return
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, list(range(nloc)), total_tasks)
    seed_base = rt.config.seed << 20
    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]

    # Task ids are consecutive (nothing else allocates between phases'
    # replay loops), which is what makes the column-cache key sound.
    task_ids = [rt._next_task_id() for _ in range(total_tasks)]

    def _build_columns() -> List[list]:
        cols = []
        for tid in task_ids:
            rng = Random()
            rng.seed(seed_base ^ tid)
            cols.append(column_fn(rng))
        return cols

    if column_key is not None:
        columns = COLUMN_CACHE.get_or_build(
            (column_key, rt.config.seed, task_ids[0], total_tasks),
            _build_columns,
        )
    else:
        columns = _build_columns()

    # ---- replay: spawn-submission order == the pool-size-1 schedule ----
    finish = start
    ti = 0
    for locale in range(nloc):
        plans = plans_by_locale[locale]
        deltas = diag_counts[locale]
        for _w in range(tpl):
            column = columns[ti]
            ti += 1
            now = start
            if op_charges is not None:
                # Cycle-position-dependent charge counts (the object
                # bodies): per op, 1-2 consecutive charges on one route.
                for op_i, ci in enumerate(column):
                    plan = plans[ci]
                    reps = op_charges[op_i & 3]
                    now = _charge(plan, now)
                    if reps == 2:
                        now = _charge(plan, now)
                    if record:
                        deltas[plan[5]] += reps
                if now > finish:
                    finish = now
                continue
            for ci in column:
                latency, pst, ps, lst, ls, _di = plans[ci]
                t = now + latency
                if pst is not None:
                    # Inlined serve_locked (point pass) — keep in sync
                    # with ServicePoint.serve_locked.
                    pst[2] += ps
                    pst[3] += 1
                    nf = pst[0]
                    if t >= nf:
                        pst[1] += t - nf
                        pst[0] = t = t + ps
                    else:
                        b = pst[1]
                        if b >= ps:
                            pst[1] = b - ps
                            t = t + ps
                        else:
                            pst[1] = 0.0
                            f = nf + (ps - b)
                            floor = t + ps
                            if f < floor:
                                f = floor
                            pst[0] = t = f
                # Inlined serve_locked (line pass).
                nf = lst[0]
                if t >= nf:
                    lst[1] += t - nf
                    lst[0] = now = t + ls
                else:
                    b = lst[1]
                    if b >= ls:
                        lst[1] = b - ls
                        now = t + ls
                    else:
                        lst[1] = 0.0
                        f = nf + (ls - b)
                        floor = t + ls
                        if f < floor:
                            f = floor
                        lst[0] = now = f
            if now > finish:
                finish = now
            if record:
                for ci, n in Counter(column).items():
                    deltas[plans[ci][5]] += n

    # ---- join + writeback ---------------------------------------------
    _forall_epilogue(rt, ctx, finish)
    ledger.writeback()
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        # Field-for-field the span Runtime.forall emits for the
        # interpreted ``forall(range(nloc * tpl), body)`` of this phase —
        # the cross-engine trace-equality contract (docs/OBSERVABILITY.md).
        tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=total_tasks)


# ---------------------------------------------------------------------------
# EBR pin/defer/unpin phases (epoch_mixed)
# ---------------------------------------------------------------------------


def _narrow_plan(net, cell, locale: int, ledger: _PointLedger) -> tuple:
    """Lower one real cell's narrow charge from ``locale`` into a replay
    plan ``(latency, point_state, point_service, line_state, line_service,
    diag_index)``.

    Token and instance-epoch cells are ``opt_out`` (pure-CPU routes, no
    point); limbo/pool heads are ordinary cells whose local charge rides
    the home NIC under ``ugni``.  Both the optional home-level point and
    the cell's own line are borrowed through the ledger, so their
    reservation state round-trips across phases exactly as interpreted
    charges would leave it.
    """
    routes = net.atomic_class_routes(cell.home)
    route = routes[1 if cell.opt_out else 0][cell._dist[locale]]
    point_state = ledger.state(route.point) if route.point is not None else None
    return (
        route.latency,
        point_state,
        route.point_service,
        ledger.state(cell.line),
        route.line_service,
        route.diag_index,
    )


def _charge(plan: tuple, now: float) -> float:
    """Replay one narrow charge: optional point pass, then the line pass
    (the interpreted ``AtomicCell._charge`` virtual math, lock-free)."""
    latency, pst, ps, lst, ls, _di = plan
    t = now + latency
    if pst is not None:
        t = _serve(pst, t, ps)
    return _serve(lst, t, ls)


class _InstanceLedger:
    """Borrowed mutable state of one ``_EpochManagerInstance``.

    Pool and limbo chains are replayed over the *real* ``LimboNode``
    objects (links included), so the interpreted drain/reclaim code
    between rounds walks exactly the chains an interpreted phase would
    have built.
    """

    __slots__ = (
        "inst",
        "epoch_cell",
        "limbo",
        "limbo_cur",
        "pool",
        "pool_cur",
        "pool_alloc_delta",
        "defer_delta",
        "plans",
    )

    def __init__(self, inst) -> None:
        self.inst = inst
        self.epoch_cell = inst.locale_epoch
        # The phase files deferred objects under the *current* locale
        # epoch, constant for the whole phase (only root-driven reclaim
        # between phases advances it).
        epoch = inst.locale_epoch.peek()
        self.limbo = inst.limbo_lists[epoch - 1]
        self.limbo_cur = self.limbo._head.peek()
        self.pool = inst.pool
        self.pool_cur = (
            self.pool._head.peek() if self.pool is not None else None
        )
        self.pool_alloc_delta = 0
        self.defer_delta = 0
        #: Per-caller-locale route plans, filled on demand.
        self.plans: Dict[int, tuple] = {}

    def plans_for(self, net, locale: int, ledger: _PointLedger) -> tuple:
        plans = self.plans.get(locale)
        if plans is None:
            epoch_plan = _narrow_plan(net, self.epoch_cell, locale, ledger)
            limbo_plan = _narrow_plan(net, self.limbo._head, locale, ledger)
            pool_plan = (
                _narrow_plan(net, self.pool._head, locale, ledger)
                if self.pool is not None
                else None
            )
            plans = self.plans[locale] = (epoch_plan, limbo_plan, pool_plan)
        return plans

    def writeback(self) -> None:
        self.limbo._head._value = self.limbo_cur
        if self.pool is not None:
            self.pool._head._value = self.pool_cur
            self.pool.allocated += self.pool_alloc_delta
        self.inst.deferred_count += self.defer_delta


def run_ebr_epoch_phase(
    rt,
    *,
    items: Sequence[int],
    is_write: Sequence[bool],
    objs: Sequence[Any],
    tokens: List[List[Any]],
    tokens_per_locale: int,
) -> None:
    """Replay one round of ``run_epoch_mixed`` under the EBR manager.

    Mirrors ``forall(items, body, task_init=bank.task_init)`` where the
    body pins, defer-deletes ``objs[item]`` when ``is_write[item]``, and
    unpins.  The charge stream per item is fixed (no mid-phase epoch
    advances — reclamation is root-driven between rounds), so the whole
    round lowers: 3 pin charges + optional (2 reads + pool get + limbo
    exchange) + 1 unpin charge, all CPU-priced cache-line passes against
    the instance epoch cell, the task's token slot, and the pool/limbo
    heads.  Limbo and pool chains are mutated over the real nodes so the
    interpreted reclaim code sees exactly the interpreted state.
    """
    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    tpl = tokens_per_locale

    # ---- forall item distribution (cyclic by position) -----------------
    data = list(items)
    per_locale: List[List[int]] = [[] for _ in range(nloc)]
    for idx, item in enumerate(data):
        per_locale[idx % nloc].append(item)
    ntasks_by_locale = [min(tpl, len(c)) if c else 0 for c in per_locale]
    total_tasks = sum(ntasks_by_locale)
    if total_tasks == 0:
        return
    active = [lid for lid, c in enumerate(per_locale) if c]
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, active, total_tasks)

    # ---- compile: per-instance and per-token charge plans --------------
    from ..core.limbo_list import LimboNode

    ledger = _PointLedger()
    inst_ledgers: Dict[int, _InstanceLedger] = {}
    by_locale_inst: List[Optional[_InstanceLedger]] = [None] * nloc
    for lid in active:
        # A locale's pre-registered tokens all lease the same (possibly
        # privatized) manager instance; take it from the token itself so
        # the replay charges exactly the cells the interpreted pin/defer
        # bodies would.
        inst = tokens[lid][0]._inst
        il = inst_ledgers.get(id(inst))
        if il is None:
            il = inst_ledgers[id(inst)] = _InstanceLedger(inst)
        by_locale_inst[lid] = il

    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]
    used_tokens = []

    # ---- replay: spawn-submission order ---------------------------------
    finish = start
    for locale in active:
        chunk = per_locale[locale]
        ntasks = ntasks_by_locale[locale]
        il = by_locale_inst[locale]
        ie_plan, lm_plan, pl_plan = il.plans_for(net, locale, ledger)
        # The item loop below is the engine's hottest path (4–8 charges
        # per item, millions of items per bench run), so each plan is
        # unpacked into locals, ``_charge`` is inlined at every site, and
        # each serve inlines the idle-point fast branch of ``_serve``
        # (``arrival >= next_free``: bank the gap, advance ``next_free``)
        # — the same float ops in the same order — calling ``_serve``
        # only when the point is queued.
        ie_lat, ie_pst, ie_ps, ie_lst, ie_ls, ie_di = ie_plan
        lm_lat, lm_pst, lm_ps, lm_lst, lm_ls, lm_di = lm_plan
        pool = il.pool
        if pool is not None:
            pl_lat, pl_pst, pl_ps, pl_lst, pl_ls, pl_di = pl_plan
        deltas = diag_counts[locale]
        for w in range(ntasks):
            task_id = rt._next_task_id()
            tok = tokens[locale][task_id % tpl]
            used_tokens.append(tok)
            tk_plan = _narrow_plan(net, tok.local_epoch, locale, ledger)
            tk_lat, tk_pst, tk_ps, tk_lst, tk_ls, tk_di = tk_plan
            now = start
            for item in chunk[w::ntasks]:
                # pin(): inst-epoch read, token write, revalidation read.
                t = now + ie_lat
                if ie_pst is not None:
                    if t >= ie_pst[0]:
                        ie_pst[2] += ie_ps
                        ie_pst[3] += 1
                        ie_pst[1] += t - ie_pst[0]
                        t += ie_ps
                        ie_pst[0] = t
                    else:
                        t = _serve(ie_pst, t, ie_ps)
                if t >= ie_lst[0]:
                    ie_lst[2] += ie_ls
                    ie_lst[3] += 1
                    ie_lst[1] += t - ie_lst[0]
                    now = t + ie_ls
                    ie_lst[0] = now
                else:
                    now = _serve(ie_lst, t, ie_ls)
                t = now + tk_lat
                if tk_pst is not None:
                    if t >= tk_pst[0]:
                        tk_pst[2] += tk_ps
                        tk_pst[3] += 1
                        tk_pst[1] += t - tk_pst[0]
                        t += tk_ps
                        tk_pst[0] = t
                    else:
                        t = _serve(tk_pst, t, tk_ps)
                if t >= tk_lst[0]:
                    tk_lst[2] += tk_ls
                    tk_lst[3] += 1
                    tk_lst[1] += t - tk_lst[0]
                    now = t + tk_ls
                    tk_lst[0] = now
                else:
                    now = _serve(tk_lst, t, tk_ls)
                t = now + ie_lat
                if ie_pst is not None:
                    if t >= ie_pst[0]:
                        ie_pst[2] += ie_ps
                        ie_pst[3] += 1
                        ie_pst[1] += t - ie_pst[0]
                        t += ie_ps
                        ie_pst[0] = t
                    else:
                        t = _serve(ie_pst, t, ie_ps)
                if t >= ie_lst[0]:
                    ie_lst[2] += ie_ls
                    ie_lst[3] += 1
                    ie_lst[1] += t - ie_lst[0]
                    now = t + ie_ls
                    ie_lst[0] = now
                else:
                    now = _serve(ie_lst, t, ie_ls)
                if record:
                    deltas[ie_di] += 2
                    deltas[tk_di] += 2  # pin write + unpin write
                if is_write[item]:
                    # defer_delete(): pinned check + epoch read ...
                    t = now + tk_lat
                    if tk_pst is not None:
                        t = _serve(tk_pst, t, tk_ps)
                    now = _serve(tk_lst, t, tk_ls)
                    t = now + ie_lat
                    if ie_pst is not None:
                        t = _serve(ie_pst, t, ie_ps)
                    now = _serve(ie_lst, t, ie_ls)
                    if record:
                        deltas[tk_di] += 1
                        deltas[ie_di] += 1
                    # ... then limbo push: pool get + head exchange.
                    if pool is not None:
                        t = now + pl_lat
                        if pl_pst is not None:
                            t = _serve(pl_pst, t, pl_ps)
                        now = _serve(pl_lst, t, pl_ls)
                        node = il.pool_cur
                        if node is None:
                            node = LimboNode()
                            il.pool_alloc_delta += 1
                            if record:
                                deltas[pl_di] += 1
                        else:
                            # Non-empty pool: the pop CAS is a second
                            # charge on the pool head.
                            t = now + pl_lat
                            if pl_pst is not None:
                                t = _serve(pl_pst, t, pl_ps)
                            now = _serve(pl_lst, t, pl_ls)
                            il.pool_cur = node.next
                            if record:
                                deltas[pl_di] += 2
                        node.val = objs[item]
                        node.next = None
                    else:
                        node = LimboNode()
                        node.val = objs[item]
                    t = now + lm_lat
                    if lm_pst is not None:
                        t = _serve(lm_pst, t, lm_ps)
                    now = _serve(lm_lst, t, lm_ls)
                    node.next = il.limbo_cur
                    il.limbo_cur = node
                    il.defer_delta += 1
                    if record:
                        deltas[lm_di] += 1
                # unpin(): token write (diag counted with pin above).
                t = now + tk_lat
                if tk_pst is not None:
                    if t >= tk_pst[0]:
                        tk_pst[2] += tk_ps
                        tk_pst[3] += 1
                        tk_pst[1] += t - tk_pst[0]
                        t += tk_ps
                        tk_pst[0] = t
                    else:
                        t = _serve(tk_pst, t, tk_ps)
                if t >= tk_lst[0]:
                    tk_lst[2] += tk_ls
                    tk_lst[3] += 1
                    tk_lst[1] += t - tk_lst[0]
                    now = t + tk_ls
                    tk_lst[0] = now
                else:
                    now = _serve(tk_lst, t, tk_ls)
            if now > finish:
                finish = now

    # ---- join + writeback ---------------------------------------------
    _forall_epilogue(rt, ctx, finish)
    for tok in used_tokens:
        tok.local_epoch.poke(0)
    for il in inst_ledgers.values():
        il.writeback()
    ledger.writeback()
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        # Identical to the interpreted ``forall(items, body, ...)`` span
        # (cross-engine trace-equality contract, docs/OBSERVABILITY.md).
        tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=len(data))


# ---------------------------------------------------------------------------
# Guard-scheme pin/defer/unpin phases (epoch_mixed under hp / qsbr / ibr)
# ---------------------------------------------------------------------------


def run_guard_epoch_phase(
    rt,
    *,
    scheme: str,
    items: Sequence[int],
    is_write: Sequence[bool],
    objs: Sequence[Any],
    guards: List[List[Any]],
    guards_per_locale: int,
) -> None:
    """Replay one round of ``run_epoch_mixed`` under a guard scheme.

    Mirrors ``forall(items, body, task_init=bank.task_init)`` where the
    body pins, defer-deletes ``objs[item]`` when ``is_write[item]``, and
    unpins, against pre-registered hp/qsbr/ibr guards.  Each scheme's
    charge stream is fixed per item (reclamation is root-driven between
    rounds, so interval tags and era caches are phase constants):

    * **qsbr** — pin/unpin are free; a retire is one ``cpu_load_latency``
      advance plus an append tagged with the manager's current interval.
    * **hp** — same free pin/unpin (no hazard slots are published by this
      body) and a zero-tagged retire, but crossing ``scan_threshold``
      runs the *real* ``_scan`` under a synthetic task context: hazard
      reads (aggregated or not), drains and frees are value-dependent
      and charge exactly as interpreted, continuing this task's clock.
    * **ibr** — pin is the publish/re-validate handshake (era-cache
      read, birth write, era-cache re-read — the cache is constant
      mid-phase, so the loop exits first try exactly as interpreted),
      unpin one birth write, and a retire adds the charged era read that
      tags the entry with its birth era.

    Retired entries are appended to the **real** guard buffers, so the
    interpreted ``phase_boundary``/``try_reclaim``/``clear`` calls
    between rounds scan, drain and free exactly the state an interpreted
    phase leaves.
    """
    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    tpl = guards_per_locale

    # ---- forall item distribution (cyclic by position) -----------------
    data = list(items)
    per_locale: List[List[int]] = [[] for _ in range(nloc)]
    for idx, item in enumerate(data):
        per_locale[idx % nloc].append(item)
    ntasks_by_locale = [min(tpl, len(c)) if c else 0 for c in per_locale]
    total_tasks = sum(ntasks_by_locale)
    if total_tasks == 0:
        return
    active = [lid for lid, c in enumerate(per_locale) if c]
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, active, total_tasks)

    ledger = _PointLedger()
    cpu_load = rt.config.costs.cpu_load_latency
    seed_base = rt.config.seed << 20
    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]

    # ---- replay: spawn-submission order ---------------------------------
    finish = start
    for locale in active:
        chunk = per_locale[locale]
        ntasks = ntasks_by_locale[locale]
        deltas = diag_counts[locale]
        for w in range(ntasks):
            task_id = rt._next_task_id()
            guard = guards[locale][task_id % tpl]
            rec = guard._rec
            retired = guard._retired
            now = start
            if scheme == "qsbr":
                tag = rec._interval
                for item in chunk[w::ntasks]:
                    if is_write[item]:
                        now += cpu_load
                        retired.append((objs[item], tag))
            elif scheme == "hp":
                threshold = rec.scan_threshold
                tctx: Optional[TaskContext] = None
                for item in chunk[w::ntasks]:
                    if is_write[item]:
                        now += cpu_load
                        retired.append((objs[item], 0))
                        if len(retired) >= threshold:
                            # The threshold scan is value-dependent
                            # (hazard reads, drains, frees) — run the
                            # real thing on this task's clock.
                            if tctx is None:
                                tctx = TaskContext(
                                    runtime=rt,
                                    locale_id=locale,
                                    clock=TaskClock(now),
                                    task_id=task_id,
                                )
                                tctx.rng.seed(seed_base ^ task_id)
                            tctx.clock.now = now
                            with context_scope(tctx):
                                rec._scan([guard])
                            now = tctx.clock.now
                            # The drain rebinds guard._retired; drop the
                            # stale alias.
                            retired = guard._retired
            elif scheme == "ibr":
                ec_plan = _narrow_plan(net, guard._era_cache, locale, ledger)
                b_plan = _narrow_plan(net, guard.birth, locale, ledger)
                ec_di = ec_plan[5]
                b_di = b_plan[5]
                era = guard._era_cache.peek()
                for item in chunk[w::ntasks]:
                    # pin(): era read, birth publish, era re-validate.
                    now = _charge(ec_plan, now)
                    now = _charge(b_plan, now)
                    now = _charge(ec_plan, now)
                    if record:
                        deltas[ec_di] += 2
                        deltas[b_di] += 2  # publish + the unpin clear
                    if is_write[item]:
                        # defer_delete(): buffer append, then the
                        # charged era read that tags the entry.
                        now += cpu_load
                        now = _charge(ec_plan, now)
                        if record:
                            deltas[ec_di] += 1
                        retired.append((objs[item], era))
                    # unpin(): birth clear (diag counted with pin above).
                    now = _charge(b_plan, now)
            else:
                raise NotCompilable(f"no guard replay for scheme {scheme!r}")
            if now > finish:
                finish = now

    # ---- join + writeback ---------------------------------------------
    _forall_epilogue(rt, ctx, finish)
    ledger.writeback()
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=len(data))


# ---------------------------------------------------------------------------
# The Listing 5 workload (fig 4-7 drivers): in-task register / replay /
# unregister, every reclaimer scheme
# ---------------------------------------------------------------------------


def run_epoch_workload_phase(
    rt,
    *,
    em,
    objs: Sequence[Any],
    num_objects: int,
    delete: bool,
) -> None:
    """Replay ``run_epoch_workload``'s ``forall`` (one task per locale).

    The interpreted body registers a token/guard *inside* the task
    (``task_init``), pins / optionally retires / unpins per item, and
    unregisters on task exit.  With one task per locale (the gated
    shape), the pool-size-1 schedule runs each task start-to-finish in
    locale order — so the replay alternates real excursions with column
    replay per task:

    1. ``em.register()`` runs **for real** under a synthetic task
       context (EBR's free-list pop / token construction charges, guard
       construction is free) — the registry, token chains and stats
       mutate exactly as interpreted;
    2. the per-item pin/retire/unpin stream replays from charge plans
       built against the freshly registered token's cells (EBR) or the
       guard/era cells (hp/qsbr/ibr — hp threshold scans run real, as in
       :func:`run_guard_epoch_phase`), with retired entries appended to
       the real buffers/limbo chains;
    3. borrowed state is written back, then ``unregister()`` runs for
       real on the task's clock (EBR's token write + free-list push;
       guard orphan adoption hands the replay-built buffers to the
       manager).

    Interpreted code afterwards (``em.clear()``, stats) sees exactly the
    state an interpreted phase leaves.
    """
    from ..core.limbo_list import LimboNode

    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    scheme = rt.config.reclaimer
    if num_objects == 0:
        return
    chunks = [list(range(lid, num_objects, nloc)) for lid in range(nloc)]
    active = [lid for lid in range(nloc) if chunks[lid]]
    total_tasks = len(active)
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, active, total_tasks)

    cpu_load = rt.config.costs.cpu_load_latency
    seed_base = rt.config.seed << 20
    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]

    finish = start
    for lid in active:
        chunk = chunks[lid]
        deltas = diag_counts[lid]
        task_id = rt._next_task_id()
        tctx = TaskContext(
            runtime=rt, locale_id=lid, clock=TaskClock(start), task_id=task_id
        )
        tctx.rng.seed(seed_base ^ task_id)

        # -- 1. real registration on the task's clock --------------------
        with context_scope(tctx):
            tok = em.register()
        now = tctx.clock.now

        # -- 2. columnar replay of the pin/retire/unpin stream -----------
        ledger = _PointLedger()
        if scheme == "ebr":
            il = _InstanceLedger(tok._inst)
            ie_plan, lm_plan, pl_plan = il.plans_for(net, lid, ledger)
            ie_di = ie_plan[5]
            lm_di = lm_plan[5]
            pool = il.pool
            if pool is not None:
                pl_di = pl_plan[5]
            tk_plan = _narrow_plan(net, tok.local_epoch, lid, ledger)
            tk_di = tk_plan[5]
            for item in chunk:
                now = _charge(ie_plan, now)
                now = _charge(tk_plan, now)
                now = _charge(ie_plan, now)
                if record:
                    deltas[ie_di] += 2
                    deltas[tk_di] += 2  # pin write + unpin write
                if delete:
                    now = _charge(tk_plan, now)
                    now = _charge(ie_plan, now)
                    if record:
                        deltas[tk_di] += 1
                        deltas[ie_di] += 1
                    if pool is not None:
                        now = _charge(pl_plan, now)
                        node = il.pool_cur
                        if node is None:
                            node = LimboNode()
                            il.pool_alloc_delta += 1
                            if record:
                                deltas[pl_di] += 1
                        else:
                            now = _charge(pl_plan, now)
                            il.pool_cur = node.next
                            if record:
                                deltas[pl_di] += 2
                        node.val = objs[item]
                        node.next = None
                    else:
                        node = LimboNode()
                        node.val = objs[item]
                    now = _charge(lm_plan, now)
                    node.next = il.limbo_cur
                    il.limbo_cur = node
                    il.defer_delta += 1
                    if record:
                        deltas[lm_di] += 1
                now = _charge(tk_plan, now)
            il.writeback()
        elif scheme == "qsbr":
            if delete:
                retired = tok._retired
                tag = tok._rec._interval
                for item in chunk:
                    now += cpu_load
                    retired.append((objs[item], tag))
        elif scheme == "hp":
            if delete:
                rec = tok._rec
                retired = tok._retired
                threshold = rec.scan_threshold
                for item in chunk:
                    now += cpu_load
                    retired.append((objs[item], 0))
                    if len(retired) >= threshold:
                        tctx.clock.now = now
                        with context_scope(tctx):
                            rec._scan([tok])
                        now = tctx.clock.now
                        # The drain rebinds tok._retired; drop the stale
                        # alias.
                        retired = tok._retired
        elif scheme == "ibr":
            ec_plan = _narrow_plan(net, tok._era_cache, lid, ledger)
            b_plan = _narrow_plan(net, tok.birth, lid, ledger)
            ec_di = ec_plan[5]
            b_di = b_plan[5]
            era = tok._era_cache.peek()
            retired = tok._retired
            for item in chunk:
                now = _charge(ec_plan, now)
                now = _charge(b_plan, now)
                now = _charge(ec_plan, now)
                if record:
                    deltas[ec_di] += 2
                    deltas[b_di] += 2
                if delete:
                    now += cpu_load
                    now = _charge(ec_plan, now)
                    if record:
                        deltas[ec_di] += 1
                    retired.append((objs[item], era))
                now = _charge(b_plan, now)
        else:
            raise NotCompilable(f"no epoch replay for reclaimer {scheme!r}")

        # -- 3. writeback, then real unregistration ----------------------
        ledger.writeback()
        tctx.clock.now = now
        with context_scope(tctx):
            tok.unregister()
        if tctx.clock.now > finish:
            finish = tctx.clock.now

    _forall_epilogue(rt, ctx, finish)
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        tr.span(
            "forall", t0, ctx.clock.now, tasks=total_tasks, items=num_objects
        )
