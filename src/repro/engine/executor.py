"""The compiled-engine executor: serial columnar replay of whole phases.

Why serial replay is bit-identical
----------------------------------
The engine's load-bearing invariant (docs/ENGINE.md, pinned by
tests/test_engine.py) is that virtual results are independent of
real-thread scheduling and therefore of the worker-pool size.  A pool of
size one runs a ``forall``'s tasks to completion in spawn-submission
order — so replaying the same tasks serially on the root thread, in
spawn-submission order, with the same per-task clocks, RNG seeds, task
ids and charge sequences, is just another legal schedule and produces
bit-identical virtual time, comm totals and reclaim stats.  The payoff is
that the serial replay needs **no locks, no TLS lookups, no per-op
dispatch**: every ``ServicePoint`` involved in the phase is borrowed into
a plain ``[next_free, idle_bank, busy_delta, served_delta]`` list, the
``serve_locked`` float recurrence is inlined into the replay loop
(float-op for float-op — same operations, same order, same rounding), and
diagnostics are restored with whole-array counter adds at phase exit.

Borrow discipline
-----------------
A phase executor runs *on the root task* between ``forall`` joins, so no
other thread can touch the borrowed points, the limbo chains, or the
token epoch slots while it runs.  All mutated state — point reservations,
diag stripes, limbo/pool chains, token slots, ``deferred_count`` — is
written back before the executor returns; interpreted code (root-driven
``tryReclaim`` between rounds, ``clear()`` at the end) then operates on
exactly the state an interpreted phase would have left.

``ServicePoint.busy_time`` is restored as one aggregate float add per
point (``served`` is an exact integer add).  Interpreted accumulation
order of ``busy_time`` is itself real-schedule-dependent, so it was never
part of the bit-identity contract — elapsed virtual time, comm totals and
reclaim stats are, and those round-trip exactly.
"""

from __future__ import annotations

from collections import Counter
from random import Random
from typing import Any, Dict, List, Optional, Sequence

from ..runtime.context import current_context
from ..runtime.tasking import spawn_tree_overhead

__all__ = [
    "NotCompilable",
    "run_uniform_atomic_phase",
    "run_ebr_epoch_phase",
]


class NotCompilable(RuntimeError):
    """Raised when a phase's charge plan cannot be lowered (caller should
    have gated on the workload shape first — see docs/ENGINE.md)."""


class _PointLedger:
    """Borrowed ``ServicePoint`` states for one compiled phase.

    Each borrowed point becomes a ``[next_free, idle_bank, busy_delta,
    served_delta]`` list the replay loops mutate without locking;
    :meth:`writeback` restores the reservation state and applies the
    accumulated busy/served deltas under the point's own lock.
    """

    __slots__ = ("_by_id", "_entries")

    def __init__(self) -> None:
        self._by_id: Dict[int, list] = {}
        self._entries: List[tuple] = []

    def state(self, point) -> list:
        key = id(point)
        st = self._by_id.get(key)
        if st is None:
            st = [point.next_free, point.idle_bank, 0.0, 0]
            self._by_id[key] = st
            self._entries.append((point, st))
        return st

    def writeback(self) -> None:
        for point, st in self._entries:
            with point._lock:
                point.next_free = st[0]
                point.idle_bank = st[1]
                point.busy_time += st[2]
                point.served += st[3]


def _serve(st: list, arrival: float, service: float) -> float:
    """``ServicePoint.serve_locked`` over a borrowed state list.

    Same float operations in the same order as the interpreted body (keep
    in sync with :meth:`repro.runtime.clock.ServicePoint.serve_locked`);
    busy/served land in the delta slots for aggregate writeback.
    """
    st[2] += service
    st[3] += 1
    next_free = st[0]
    if arrival >= next_free:
        st[1] += arrival - next_free
        st[0] = finish = arrival + service
        return finish
    bank = st[1]
    if bank >= service:
        st[1] = bank - service
        return arrival + service
    st[1] = 0.0
    finish = next_free + (service - bank)
    floor = arrival + service
    if finish < floor:
        finish = floor
    st[0] = finish
    return finish


def _forall_prologue(rt, ctx, active_locales, total_tasks) -> float:
    """The spawn-side bookkeeping of ``Runtime.forall``: every compiled
    task starts at ``now + spawn-tree overhead``, exactly as a spawned
    one would."""
    overhead = spawn_tree_overhead(
        total_tasks,
        rt.network.spawn_broadcast_cost(ctx.locale_id, active_locales),
    )
    return ctx.clock.now + overhead


def _forall_epilogue(rt, ctx, finish: float) -> None:
    """The join-side bookkeeping of ``Runtime.forall``."""
    ctx.clock.advance_to(finish)
    ctx.clock.advance(rt.config.costs.task_join)


def _writeback_diags(diags, diag_counts: List[List[int]]) -> None:
    """Apply per-(locale, op-index) counter deltas to this thread's stripe."""
    rows = diags._rows()
    for locale, deltas in enumerate(diag_counts):
        row = rows[locale]
        for index, n in enumerate(deltas):
            if n:
                row[index] += n


# ---------------------------------------------------------------------------
# Uniform narrow-atomic phases (atomic mix, hotspot)
# ---------------------------------------------------------------------------


def run_uniform_atomic_phase(
    rt,
    *,
    homes: Sequence[int],
    tasks_per_locale: int,
    column_fn,
) -> None:
    """Replay one ``forall(range(nloc * tpl), body)`` of narrow atomic ops.

    ``homes[ci]`` is the home locale of cell ``ci``; ``column_fn(rng)``
    lowers one task's op stream into a column of cell indices (see
    :mod:`repro.engine.opstream`).  Every op charges the cell's
    narrow-plain route for the issuing locale's distance class — the
    route any of read/write/CAS/exchange charges on an ``AtomicInt64`` —
    so only the target cell per op needs materializing.

    The cells themselves are *virtual*: each gets a fresh
    ``[0.0, 0.0, ...]`` line state (a brand-new ``ServicePoint`` starts
    zeroed), never written back — workload cells are phase-local and
    nothing observes them afterwards.  Real shared points on the routes
    (NIC pipelines, progress threads, uplinks) are borrowed and restored.
    """
    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    tpl = tasks_per_locale
    ncells = len(homes)

    # ---- compile: per-(locale, cell) charge plans from the route cube --
    ledger = _PointLedger()
    lines = [[0.0, 0.0, 0.0, 0] for _ in range(ncells)]
    narrow_by_home: Dict[int, tuple] = {}
    dist_by_home: Dict[int, tuple] = {}
    plans_by_locale: List[list] = []
    for locale in range(nloc):
        plans = []
        for ci in range(ncells):
            home = homes[ci]
            row = narrow_by_home.get(home)
            if row is None:
                row = narrow_by_home[home] = net.atomic_class_routes(home)[0]
                dist_by_home[home] = net.distance_row(home)
            route = row[dist_by_home[home][locale]]
            point_state = (
                ledger.state(route.point) if route.point is not None else None
            )
            plans.append(
                (
                    route.latency,
                    point_state,
                    route.point_service,
                    lines[ci],
                    route.line_service,
                    route.diag_index,
                )
            )
        plans_by_locale.append(plans)

    # ---- forall bookkeeping (one item per task: body(task_idx)) --------
    total_tasks = nloc * tpl
    if total_tasks == 0:
        return
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, list(range(nloc)), total_tasks)
    seed_base = rt.config.seed << 20
    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]

    # ---- replay: spawn-submission order == the pool-size-1 schedule ----
    finish = start
    for locale in range(nloc):
        plans = plans_by_locale[locale]
        deltas = diag_counts[locale]
        for _w in range(tpl):
            task_id = rt._next_task_id()
            rng = Random()
            rng.seed(seed_base ^ task_id)
            column = column_fn(rng)
            now = start
            for ci in column:
                latency, pst, ps, lst, ls, _di = plans[ci]
                t = now + latency
                if pst is not None:
                    # Inlined serve_locked (point pass) — keep in sync
                    # with ServicePoint.serve_locked.
                    pst[2] += ps
                    pst[3] += 1
                    nf = pst[0]
                    if t >= nf:
                        pst[1] += t - nf
                        pst[0] = t = t + ps
                    else:
                        b = pst[1]
                        if b >= ps:
                            pst[1] = b - ps
                            t = t + ps
                        else:
                            pst[1] = 0.0
                            f = nf + (ps - b)
                            floor = t + ps
                            if f < floor:
                                f = floor
                            pst[0] = t = f
                # Inlined serve_locked (line pass).
                nf = lst[0]
                if t >= nf:
                    lst[1] += t - nf
                    lst[0] = now = t + ls
                else:
                    b = lst[1]
                    if b >= ls:
                        lst[1] = b - ls
                        now = t + ls
                    else:
                        lst[1] = 0.0
                        f = nf + (ls - b)
                        floor = t + ls
                        if f < floor:
                            f = floor
                        lst[0] = now = f
            if now > finish:
                finish = now
            if record:
                for ci, n in Counter(column).items():
                    deltas[plans[ci][5]] += n

    # ---- join + writeback ---------------------------------------------
    _forall_epilogue(rt, ctx, finish)
    ledger.writeback()
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        # Field-for-field the span Runtime.forall emits for the
        # interpreted ``forall(range(nloc * tpl), body)`` of this phase —
        # the cross-engine trace-equality contract (docs/OBSERVABILITY.md).
        tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=total_tasks)


# ---------------------------------------------------------------------------
# EBR pin/defer/unpin phases (epoch_mixed)
# ---------------------------------------------------------------------------


def _narrow_plan(net, cell, locale: int, ledger: _PointLedger) -> tuple:
    """Lower one real cell's narrow charge from ``locale`` into a replay
    plan ``(latency, point_state, point_service, line_state, line_service,
    diag_index)``.

    Token and instance-epoch cells are ``opt_out`` (pure-CPU routes, no
    point); limbo/pool heads are ordinary cells whose local charge rides
    the home NIC under ``ugni``.  Both the optional home-level point and
    the cell's own line are borrowed through the ledger, so their
    reservation state round-trips across phases exactly as interpreted
    charges would leave it.
    """
    routes = net.atomic_class_routes(cell.home)
    route = routes[1 if cell.opt_out else 0][cell._dist[locale]]
    point_state = ledger.state(route.point) if route.point is not None else None
    return (
        route.latency,
        point_state,
        route.point_service,
        ledger.state(cell.line),
        route.line_service,
        route.diag_index,
    )


def _charge(plan: tuple, now: float) -> float:
    """Replay one narrow charge: optional point pass, then the line pass
    (the interpreted ``AtomicCell._charge`` virtual math, lock-free)."""
    latency, pst, ps, lst, ls, _di = plan
    t = now + latency
    if pst is not None:
        t = _serve(pst, t, ps)
    return _serve(lst, t, ls)


class _InstanceLedger:
    """Borrowed mutable state of one ``_EpochManagerInstance``.

    Pool and limbo chains are replayed over the *real* ``LimboNode``
    objects (links included), so the interpreted drain/reclaim code
    between rounds walks exactly the chains an interpreted phase would
    have built.
    """

    __slots__ = (
        "inst",
        "epoch_cell",
        "limbo",
        "limbo_cur",
        "pool",
        "pool_cur",
        "pool_alloc_delta",
        "defer_delta",
        "plans",
    )

    def __init__(self, inst) -> None:
        self.inst = inst
        self.epoch_cell = inst.locale_epoch
        # The phase files deferred objects under the *current* locale
        # epoch, constant for the whole phase (only root-driven reclaim
        # between phases advances it).
        epoch = inst.locale_epoch.peek()
        self.limbo = inst.limbo_lists[epoch - 1]
        self.limbo_cur = self.limbo._head.peek()
        self.pool = inst.pool
        self.pool_cur = (
            self.pool._head.peek() if self.pool is not None else None
        )
        self.pool_alloc_delta = 0
        self.defer_delta = 0
        #: Per-caller-locale route plans, filled on demand.
        self.plans: Dict[int, tuple] = {}

    def plans_for(self, net, locale: int, ledger: _PointLedger) -> tuple:
        plans = self.plans.get(locale)
        if plans is None:
            epoch_plan = _narrow_plan(net, self.epoch_cell, locale, ledger)
            limbo_plan = _narrow_plan(net, self.limbo._head, locale, ledger)
            pool_plan = (
                _narrow_plan(net, self.pool._head, locale, ledger)
                if self.pool is not None
                else None
            )
            plans = self.plans[locale] = (epoch_plan, limbo_plan, pool_plan)
        return plans

    def writeback(self) -> None:
        self.limbo._head._value = self.limbo_cur
        if self.pool is not None:
            self.pool._head._value = self.pool_cur
            self.pool.allocated += self.pool_alloc_delta
        self.inst.deferred_count += self.defer_delta


def run_ebr_epoch_phase(
    rt,
    *,
    items: Sequence[int],
    is_write: Sequence[bool],
    objs: Sequence[Any],
    tokens: List[List[Any]],
    tokens_per_locale: int,
) -> None:
    """Replay one round of ``run_epoch_mixed`` under the EBR manager.

    Mirrors ``forall(items, body, task_init=bank.task_init)`` where the
    body pins, defer-deletes ``objs[item]`` when ``is_write[item]``, and
    unpins.  The charge stream per item is fixed (no mid-phase epoch
    advances — reclamation is root-driven between rounds), so the whole
    round lowers: 3 pin charges + optional (2 reads + pool get + limbo
    exchange) + 1 unpin charge, all CPU-priced cache-line passes against
    the instance epoch cell, the task's token slot, and the pool/limbo
    heads.  Limbo and pool chains are mutated over the real nodes so the
    interpreted reclaim code sees exactly the interpreted state.
    """
    ctx = current_context()
    net = rt.network
    nloc = rt.num_locales
    tpl = tokens_per_locale

    # ---- forall item distribution (cyclic by position) -----------------
    data = list(items)
    per_locale: List[List[int]] = [[] for _ in range(nloc)]
    for idx, item in enumerate(data):
        per_locale[idx % nloc].append(item)
    ntasks_by_locale = [min(tpl, len(c)) if c else 0 for c in per_locale]
    total_tasks = sum(ntasks_by_locale)
    if total_tasks == 0:
        return
    active = [lid for lid, c in enumerate(per_locale) if c]
    tr = rt._tracer
    t0 = ctx.clock.now if tr is not None else 0.0
    start = _forall_prologue(rt, ctx, active, total_tasks)

    # ---- compile: per-instance and per-token charge plans --------------
    from ..core.limbo_list import LimboNode

    ledger = _PointLedger()
    inst_ledgers: Dict[int, _InstanceLedger] = {}
    by_locale_inst: List[Optional[_InstanceLedger]] = [None] * nloc
    for lid in active:
        # A locale's pre-registered tokens all lease the same (possibly
        # privatized) manager instance; take it from the token itself so
        # the replay charges exactly the cells the interpreted pin/defer
        # bodies would.
        inst = tokens[lid][0]._inst
        il = inst_ledgers.get(id(inst))
        if il is None:
            il = inst_ledgers[id(inst)] = _InstanceLedger(inst)
        by_locale_inst[lid] = il

    diags = net.diags
    record = diags._enabled
    diag_counts = [[0] * 9 for _ in range(nloc)]
    used_tokens = []

    # ---- replay: spawn-submission order ---------------------------------
    finish = start
    for locale in active:
        chunk = per_locale[locale]
        ntasks = ntasks_by_locale[locale]
        il = by_locale_inst[locale]
        ie_plan, lm_plan, pl_plan = il.plans_for(net, locale, ledger)
        ie_di = ie_plan[5]
        lm_di = lm_plan[5]
        pool = il.pool
        if pool is not None:
            pl_di = pl_plan[5]
        deltas = diag_counts[locale]
        for w in range(ntasks):
            task_id = rt._next_task_id()
            tok = tokens[locale][task_id % tpl]
            used_tokens.append(tok)
            tk_plan = _narrow_plan(net, tok.local_epoch, locale, ledger)
            tk_di = tk_plan[5]
            now = start
            for item in chunk[w::ntasks]:
                # pin(): inst-epoch read, token write, revalidation read.
                now = _charge(ie_plan, now)
                now = _charge(tk_plan, now)
                now = _charge(ie_plan, now)
                if record:
                    deltas[ie_di] += 2
                    deltas[tk_di] += 2  # pin write + unpin write
                if is_write[item]:
                    # defer_delete(): pinned check + epoch read ...
                    now = _charge(tk_plan, now)
                    now = _charge(ie_plan, now)
                    if record:
                        deltas[tk_di] += 1
                        deltas[ie_di] += 1
                    # ... then limbo push: pool get + head exchange.
                    if pool is not None:
                        now = _charge(pl_plan, now)
                        node = il.pool_cur
                        if node is None:
                            node = LimboNode()
                            il.pool_alloc_delta += 1
                            if record:
                                deltas[pl_di] += 1
                        else:
                            # Non-empty pool: the pop CAS is a second
                            # charge on the pool head.
                            now = _charge(pl_plan, now)
                            il.pool_cur = node.next
                            if record:
                                deltas[pl_di] += 2
                        node.val = objs[item]
                        node.next = None
                    else:
                        node = LimboNode()
                        node.val = objs[item]
                    now = _charge(lm_plan, now)
                    node.next = il.limbo_cur
                    il.limbo_cur = node
                    il.defer_delta += 1
                    if record:
                        deltas[lm_di] += 1
                # unpin(): token write (diag counted with pin above).
                now = _charge(tk_plan, now)
            if now > finish:
                finish = now

    # ---- join + writeback ---------------------------------------------
    _forall_epilogue(rt, ctx, finish)
    for tok in used_tokens:
        tok.local_epoch.poke(0)
    for il in inst_ledgers.values():
        il.writeback()
    ledger.writeback()
    if record:
        _writeback_diags(diags, diag_counts)
    if tr is not None:
        # Identical to the interpreted ``forall(items, body, ...)`` span
        # (cross-engine trace-equality contract, docs/OBSERVABILITY.md).
        tr.span("forall", t0, ctx.clock.now, tasks=total_tasks, items=len(data))
