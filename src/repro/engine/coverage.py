"""Compiled-engine coverage: one predicate, three consumers.

The question "does this workload shape lower?" is answered in exactly one
place — :func:`compiled_plan` — and consumed by

* the workload generators (:mod:`repro.bench.workloads`), which call
  :func:`note_phase` at each phase gate: it evaluates the plan, records
  the *effective* engine on the runtime's :class:`EngineLog`, and raises
  :class:`~repro.errors.CompiledFallbackError` under the strict engine;
* the scenario lister (``scenarios --list``), whose compiled-coverage
  column is computed from the same predicate so it can never drift from
  what the generators actually do;
* the reports: :func:`engine_summary` folds a run's log into the
  ``"engine"`` block scenario reports and ``bench_wallclock.py`` emit.

Execution tiers
---------------
``"columnar"``
    The phase replays from lowered op-stream columns on the root thread
    (:mod:`repro.engine.executor`) — the fast tier.
``"serial"``
    The phase runs the real task bodies inline on the root thread in
    spawn-submission order (the canonical pool-size-1 schedule; see
    :func:`repro.engine.executor.serial_tasks`).  Exact for every
    pool-size-deterministic shape, cheaper than pooled execution (no
    thread handoffs, no lock traffic), and it keeps value-dependent
    structure traversals compiled-engine-clean.
``"interpreted"``
    The documented fallback: the phase runs on the worker pool exactly as
    under ``engine="interpreted"``.  Silent and exact under
    ``"compiled"``; an error under ``"compiled-strict"``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import CompiledFallbackError

__all__ = [
    "compiled_plan",
    "EngineLog",
    "note_phase",
    "engine_summary",
]

#: Workload kinds with no lowering at all (none currently; kept for the
#: error message symmetry of :func:`compiled_plan`).
_KNOWN_KINDS = (
    "atomic_mix",
    "atomic_hotspot",
    "epoch",
    "epoch_mixed",
    "churn",
    "multi_structure",
)


def compiled_plan(
    kind: str,
    *,
    trace: str = "off",
    tasks_per_locale: int = 1,
    reclaim_every: Optional[int] = None,
    wants_pin_times: bool = False,
    wants_retire_times: bool = False,
) -> Tuple[str, Optional[str]]:
    """Decide the execution tier for one workload phase shape.

    Returns ``(tier, reason)`` where ``tier`` is ``"columnar"``,
    ``"serial"`` or ``"interpreted"`` and ``reason`` explains an
    interpreter fallback (None otherwise).  Pure function of the shape —
    the generators resolve the runtime's actual trace detail and policy
    wants and pass them in, the scenario lister resolves the same values
    from the spec, so the two can never disagree.
    """
    if trace == "full":
        # Full-detail tracing needs per-op events neither compiled tier
        # emits from its charge replay; it also pins the host
        # interleaving via inline-serial tasks already (docs/OBSERVABILITY.md).
        return ("interpreted", "trace=full needs per-op events")
    if kind in ("atomic_mix", "atomic_hotspot"):
        return ("columnar", None)
    if kind == "epoch":
        if reclaim_every is not None:
            return (
                "interpreted",
                "mid-phase tryReclaim elections are schedule-scoped",
            )
        if tasks_per_locale != 1:
            return (
                "interpreted",
                "in-forall registration with >1 task/locale reuses tokens"
                " in real-arrival order",
            )
        if wants_pin_times or wants_retire_times:
            # The columnar replay never calls pin()/defer_delete(), so
            # the virtual-time facts a tracking policy reads would be
            # missing; the serial tier runs the real bodies and records
            # them exactly.
            return ("serial", None)
        return ("columnar", None)
    if kind == "epoch_mixed":
        if wants_pin_times or wants_retire_times:
            return ("serial", None)
        return ("columnar", None)
    if kind in ("churn", "multi_structure"):
        # Structure traversals are value-dependent (CAS loops over heads,
        # hand-over-hand bucket walks) — not columnar material — but the
        # shapes are pool-size-deterministic, so the serial tier is exact.
        return ("serial", None)
    return ("interpreted", f"no lowering for workload kind {kind!r}")


class EngineLog:
    """Per-:class:`~repro.runtime.runtime.Runtime` effective-engine record.

    One entry per workload phase gate: ``(workload, tier, reason)``.
    Attached lazily by :func:`note_phase` (the runtime itself never
    imports the engine package), read back by the scenario runner and the
    wall-clock benchmark after the run.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[str, str, Optional[str]]] = []

    def note(self, workload: str, tier: str, reason: Optional[str]) -> None:
        self.entries.append((workload, tier, reason))


def note_phase(rt: Any, workload: str, tier: str, reason: Optional[str]) -> str:
    """Record one phase's effective tier; enforce strict mode.

    Called by a generator at its engine gate with the tier
    :func:`compiled_plan` chose.  Under ``engine="compiled-strict"`` an
    ``"interpreted"`` tier raises :class:`CompiledFallbackError` instead
    of silently falling back.  Returns ``tier`` so gates read naturally::

        tier = note_phase(rt, "epoch_mixed", *compiled_plan(...))
    """
    log = getattr(rt, "_engine_log", None)
    if log is None:
        log = rt._engine_log = EngineLog()
    log.note(workload, tier, reason)
    if tier == "interpreted" and rt.config.engine == "compiled-strict":
        raise CompiledFallbackError(
            f"strict compiled engine: workload {workload!r} fell back to"
            f" the interpreter ({reason})"
        )
    return tier


def engine_summary(rt: Any) -> Dict[str, Any]:
    """Fold a runtime's :class:`EngineLog` into a report-ready block.

    ``effective`` is ``"compiled"`` when every gated phase ran a compiled
    tier (columnar or serial), ``"interpreted"`` when every phase fell
    back (or the engine was never asked for compiled execution), and
    ``"mixed"`` otherwise.  ``fallbacks`` lists each interpreted phase
    with its reason — the observability the bench labeling satellite is
    about: a ``"compiled"`` label now provably means compiled.
    """
    configured = rt.config.engine
    log = getattr(rt, "_engine_log", None)
    if configured == "interpreted" or log is None or not log.entries:
        return {"configured": configured, "effective": configured}
    tiers: Dict[str, int] = {}
    fallbacks = []
    for workload, tier, reason in log.entries:
        tiers[tier] = tiers.get(tier, 0) + 1
        if tier == "interpreted":
            fallbacks.append({"workload": workload, "reason": reason})
    if tiers.get("interpreted", 0) == 0:
        effective = "compiled"
    elif len(tiers) == 1:
        effective = "interpreted"
    else:
        effective = "mixed"
    out: Dict[str, Any] = {
        "configured": configured,
        "effective": effective,
        "phases": dict(sorted(tiers.items())),
    }
    if fallbacks:
        out["fallbacks"] = fallbacks
    return out
