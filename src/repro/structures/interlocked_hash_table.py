"""A distributed non-blocking hash table (the paper's follow-on application).

The paper's conclusion announces a port of the *Interlocked Hash Table*
[16] built on ``AtomicObject`` + ``EpochManager`` as "complete and awaiting
release".  This module supplies that application in the style the paper's
building blocks make natural:

* **buckets are distributed cyclically** across locales (bucket *b* lives
  on locale ``b % num_locales``), so the table is a genuinely global
  structure;
* each bucket header is an :class:`~repro.core.atomic_object.AtomicObject`
  pointing at an **immutable** bucket snapshot (a sorted tuple of
  key/value pairs) allocated on the bucket's locale;
* reads are **wait-free**: one atomic read of the header plus one GET of
  the snapshot — no retries, ever;
* writes are **lock-free**: build a modified snapshot locally, publish it
  with an ABA-protected CAS on the header, and retire the old snapshot
  through an epoch-manager token — a textbook read-copy-update built from
  the paper's parts.

Copy-on-write buckets trade write bandwidth (O(bucket) copy) for wait-free
reads, the appropriate point on the spectrum for the read-mostly workloads
(hash-table lookups) the paper's Figure 7 discussion motivates.  A
quiescent ``resize()`` doubles the bucket array when load grows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple

from ..core.atomic_object import AtomicObject
from ..core.epoch_manager import EpochManager
from ..core.token import Token
from ..memory.address import NIL, is_nil
from ..reclaim import EBRReclaimer, default_reclaimer
from ._compat import _deprecated_alias

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["InterlockedHashTable"]


class _BucketSnapshot:
    """Immutable sorted tuple of (hash, key, value) triples."""

    __slots__ = ("entries",)

    def __init__(self, entries: Tuple[Tuple[int, Any, Any], ...]) -> None:
        self.entries = entries


def _stable_hash(key: Any) -> int:
    """A 64-bit stable hash (Python's, masked; fine inside one process)."""
    return hash(key) & ((1 << 63) - 1)


class InterlockedHashTable:
    """Distributed lock-free hash map with wait-free lookups.

    Parameters
    ----------
    runtime:
        The simulated machine.
    buckets:
        Number of buckets (rounded up to a power of two); distributed
        cyclically over locales.
    reclaimer:
        Optional shared reclaimer from :mod:`repro.reclaim` (any scheme).
        When omitted the table asks
        :func:`repro.reclaim.default_reclaimer` for whatever scheme the
        runtime is configured for — the one shared default-construction
        factory — and owns it (``destroy()`` tears it down).
    manager:
        Deprecated alias of ``reclaimer``: share an existing
        :class:`EpochManager` (wrapped in an :class:`EBRReclaimer`
        adapter, not owned).  Emits a :class:`DeprecationWarning`;
        mutually exclusive with ``reclaimer``.
    """

    def __init__(
        self,
        runtime: "Runtime",
        *,
        buckets: int = 64,
        manager: Optional[EpochManager] = None,
        reclaimer=None,
        aba_protection: bool = True,
    ) -> None:
        self._rt = runtime
        n = 1
        while n < max(1, buckets):
            n <<= 1
        self._nbuckets = n
        effective = _deprecated_alias("reclaimer", "manager", reclaimer, manager)
        self._owns_reclaimer = effective is None
        if effective is None:
            self.reclaimer = default_reclaimer(runtime)
        elif effective is manager:
            # Legacy spelling shared a bare EpochManager: wrap it in the
            # EBR adapter (not owned), exactly as before the rename.
            self.reclaimer = EBRReclaimer(runtime, manager=manager)
        else:
            self.reclaimer = effective
        #: The underlying EpochManager when the scheme is EBR (legacy
        #: accessor kept for callers that shared a manager), else None.
        self.manager = getattr(self.reclaimer, "manager", None)
        #: With ``aba_protection=False`` headers use plain 64-bit CASes —
        #: the RDMA fast path — relying on EBR to prevent snapshot-address
        #: recycling (operations must then run under a pinned token).
        self.aba_protection = bool(aba_protection)
        self._headers: List[AtomicObject] = [
            AtomicObject(
                runtime,
                locale=b % runtime.num_locales,
                initial=NIL,
                aba_protection=self.aba_protection,
                name=f"bucket{b}",
            )
            for b in range(n)
        ]

    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Current number of buckets."""
        return self._nbuckets

    def _bucket_of(self, h: int) -> int:
        return h & (self._nbuckets - 1)

    def owner_locale(self, key: Any) -> int:
        """Which locale owns ``key``'s bucket (placement introspection)."""
        b = self._bucket_of(_stable_hash(key))
        return self._headers[b].home

    # ------------------------------------------------------------------
    # reads (wait-free)
    # ------------------------------------------------------------------
    def _load_header(self, header: AtomicObject):
        """Read a bucket header; returns ``(snapshot-for-CAS, address)``."""
        if self.aba_protection:
            snap = header.read_aba()
            return snap, snap.get_object()
        addr = header.read()
        return addr, addr

    def _cas_header(self, header: AtomicObject, snap, new) -> bool:
        """CAS a bucket header against a :meth:`_load_header` snapshot."""
        if self.aba_protection:
            return header.compare_and_swap_aba(snap, new)
        return header.compare_and_swap(snap, new)

    def _load_header_protected(self, header: AtomicObject, guard: Optional[Token]):
        """:meth:`_load_header` plus the hazard handshake when required."""
        if guard is None or not guard.needs_protect:
            return self._load_header(header)
        while True:
            snap, addr = self._load_header(header)
            if is_nil(addr):
                return snap, addr
            guard.protect(addr)
            if self._load_header(header)[1] == addr:
                return snap, addr

    def get(
        self,
        key: Any,
        default: Any = None,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Look up ``key``: one header read + one snapshot fetch.

        ``guard`` is only needed under hazard-pointer reclamation, where
        the snapshot must be protected before the fetch; region-based
        schemes cover readers through their pinned guard.  ``token=`` is
        the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        h = _stable_hash(key)
        header = self._headers[self._bucket_of(h)]
        _, addr = self._load_header_protected(header, guard)
        if is_nil(addr):
            return default
        snap: _BucketSnapshot = self._rt.deref(addr)
        for eh, ek, ev in snap.entries:
            if eh == h and ek == key:
                return ev
        return default

    def contains(
        self,
        key: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Membership test (wait-free)."""
        guard = _deprecated_alias("guard", "token", guard, token)
        sentinel = object()
        return self.get(key, sentinel, guard=guard) is not sentinel

    # ------------------------------------------------------------------
    # writes (lock-free RCU on the bucket)
    # ------------------------------------------------------------------
    def _publish(
        self,
        header: AtomicObject,
        mutate,
        guard: Optional[Token],
    ) -> Tuple[bool, Any]:
        """Read-copy-update loop on one bucket header.

        ``mutate(entries) -> (new_entries | None, result)``; ``None`` means
        "no change needed" and the loop exits without a CAS.
        """
        rt = self._rt
        while True:
            snap_ref, old_addr = self._load_header_protected(header, guard)
            entries: Tuple[Tuple[int, Any, Any], ...] = ()
            if not is_nil(old_addr):
                entries = rt.deref(old_addr).entries
            new_entries, result = mutate(entries)
            if new_entries is None:
                return False, result
            # PGAS idiom: allocate the new snapshot on the *writer's*
            # locale (cheap, local) and publish it with one CAS; a remote
            # allocation would be an RPC per update.  Readers pay the same
            # one-GET price wherever the snapshot lives.
            new_addr = rt.new_obj(_BucketSnapshot(new_entries))
            if self._cas_header(header, snap_ref, new_addr):
                if not is_nil(old_addr):
                    if guard is not None:
                        guard.defer_delete(old_addr)
                    # else: leak the old snapshot (safe).
                return True, result
            # Lost the race: discard our unpublished snapshot and retry.
            rt.free(new_addr)

    def put(
        self,
        key: Any,
        value: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Insert or update; returns True when a *new* key was added."""
        guard = _deprecated_alias("guard", "token", guard, token)
        h = _stable_hash(key)
        header = self._headers[self._bucket_of(h)]

        def mutate(entries):
            for i, (eh, ek, ev) in enumerate(entries):
                if eh == h and ek == key:
                    if ev == value:
                        return None, False  # idempotent update: no publish
                    new = entries[:i] + ((h, key, value),) + entries[i + 1 :]
                    return new, False
            new = tuple(sorted(entries + ((h, key, value),), key=lambda e: e[0]))
            return new, True

        _, added = self._publish(header, mutate, guard)
        return added

    def remove(
        self,
        key: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Delete ``key``; returns True when it was present."""
        guard = _deprecated_alias("guard", "token", guard, token)
        h = _stable_hash(key)
        header = self._headers[self._bucket_of(h)]

        def mutate(entries):
            for i, (eh, ek, _) in enumerate(entries):
                if eh == h and ek == key:
                    return entries[:i] + entries[i + 1 :], True
            return None, False

        _, removed = self._publish(header, mutate, guard)
        return removed

    def update(
        self,
        key: Any,
        fn,
        default: Any = None,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Atomically apply ``fn(old_value_or_default) -> new_value``.

        The read-modify-write primitive (e.g. counters:
        ``table.update(k, lambda v: v + 1, default=0)``).  Returns the new
        value.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        h = _stable_hash(key)
        header = self._headers[self._bucket_of(h)]

        def mutate(entries):
            for i, (eh, ek, ev) in enumerate(entries):
                if eh == h and ek == key:
                    nv = fn(ev)
                    new = entries[:i] + ((h, key, nv),) + entries[i + 1 :]
                    return new, nv
            nv = fn(default)
            new = tuple(sorted(entries + ((h, key, nv),), key=lambda e: e[0]))
            return new, nv

        _, new_value = self._publish(header, mutate, guard)
        return new_value

    # ------------------------------------------------------------------
    # quiescent operations
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield all pairs (quiescent snapshot; not linearizable)."""
        for header in self._headers:
            addr = header.peek()
            if is_nil(addr):
                continue
            snap = self._rt.locale(addr.locale).heap.load(addr.offset)
            for _, k, v in snap.entries:
                yield k, v

    def size(self) -> int:
        """Count entries (quiescent)."""
        return sum(1 for _ in self.items())

    def resize(self, new_buckets: int) -> None:
        """Quiescent rehash into ``new_buckets`` (power of two) buckets.

        Contract: no concurrent operations (same as ``EpochManager.clear``).
        Old snapshots are freed immediately — safe under the contract.
        """
        rt = self._rt
        pairs = list(self.items())
        for header in self._headers:
            addr = header.peek()
            if not is_nil(addr):
                rt.free(addr)
        n = 1
        while n < max(1, new_buckets):
            n <<= 1
        self._nbuckets = n
        self._headers = [
            AtomicObject(
                rt,
                locale=b % rt.num_locales,
                initial=NIL,
                aba_protection=self.aba_protection,
                name=f"bucket{b}",
            )
            for b in range(n)
        ]
        for k, v in pairs:
            self.put(k, v)

    def destroy(self) -> None:
        """Free all snapshots (and the owned reclaimer, when applicable)."""
        rt = self._rt
        for header in self._headers:
            addr = header.peek()
            if not is_nil(addr):
                rt.free(addr)
                header.write(NIL)
        if self._owns_reclaimer:
            self.reclaimer.destroy()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"InterlockedHashTable(buckets={self._nbuckets})"
