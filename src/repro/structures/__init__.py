"""Non-blocking data structures built on the paper's building blocks.

* :class:`~repro.structures.treiber_stack.LockFreeStack` — Treiber stack
  (paper Listing 1), ABA-protected head, EBR node retirement.
* :class:`~repro.structures.msqueue.LockFreeQueue` — Michael–Scott FIFO
  queue with helping.
* :class:`~repro.structures.harris_list.LockFreeOrderedList` —
  Harris/Michael sorted list with mark-bit logical deletion (the mark
  rides inside the compressed pointer word).
* :class:`~repro.structures.interlocked_hash_table.InterlockedHashTable` —
  the paper's announced follow-on application: a distributed hash map with
  wait-free reads (immutable buckets + ABA-CAS publication + EBR).
"""

from .harris_list import ListNode, LockFreeOrderedList
from .interlocked_hash_table import InterlockedHashTable
from .msqueue import LockFreeQueue, QueueNode
from .rcu_array import RCUArray
from .treiber_stack import LockFreeStack, StackNode

__all__ = [
    "LockFreeStack",
    "StackNode",
    "LockFreeQueue",
    "QueueNode",
    "LockFreeOrderedList",
    "ListNode",
    "InterlockedHashTable",
    "RCUArray",
]
