"""A distributed Harris/Michael lock-free sorted linked list (set/map).

The third classic from the paper's motivation.  The interesting mechanics:

* each node's ``next`` field is a 64-bit atomic word holding a
  **compressed** wide pointer with the low bit stolen as the *logical
  deletion mark* — possible because the simulated heaps align allocations
  (16 bytes by default), exactly like tag-bit tricks on real hardware;
* removal is two-phase: CAS the mark into the victim's ``next`` (logical
  removal — the linearization point), then unlink it from its predecessor
  (physical removal, possibly *helped* by any later traversal);
* unlinked nodes are deferred through a reclamation guard of any scheme
  (:mod:`repro.reclaim`): this is the structure where "logically removed,
  physically reclaimed later" — the premise of the whole reclamation
  subsystem — is clearest.  Under a hazard-pointer guard traversals run
  hand-over-hand protection: each visited node is published in an
  alternating hazard slot and re-validated against its predecessor's
  ``next`` word before the dereference.

Mark-in-pointer works *because of* pointer compression: a full 128-bit wide
pointer couldn't ride a 64-bit atomic, mark bit or not.  (With >= 2**16
locales this structure would need the DCAS fallback throughout.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, List, Optional, Tuple

from ..atomics.integer import AtomicUInt64
from ..core.token import Token
from ..memory.address import NIL, GlobalAddress, is_nil
from ..memory.compression import compress, decompress
from ._compat import _deprecated_alias

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["ListNode", "LockFreeOrderedList"]

_MARK = 1


def _pack(addr: GlobalAddress, marked: bool) -> int:
    """Compress ``addr`` and fold the deletion mark into bit 0."""
    return compress(addr) | (_MARK if marked else 0)


def _unpack(word: int) -> Tuple[GlobalAddress, bool]:
    """Split a packed word back into (wide pointer, mark)."""
    return decompress(word & ~_MARK), bool(word & _MARK)


class ListNode:
    """One list node; ``next`` is a packed (pointer | mark) atomic word."""

    __slots__ = ("key", "value", "next")

    def __init__(self, runtime: "Runtime", key: Any, value: Any, locale: int) -> None:
        self.key = key
        self.value = value
        self.next = AtomicUInt64(runtime, locale, 0, name=f"listnext@{locale}")


class LockFreeOrderedList:
    """Sorted lock-free list keyed by any totally-ordered type.

    ``insert`` / ``remove`` / ``contains`` / ``get`` are lock-free;
    traversals help unlink logically-deleted nodes they pass.  Reclamation
    of unlinked nodes goes through the optional per-operation ``guard``.
    """

    def __init__(self, runtime: "Runtime", *, locale: int = 0, name: str = "list") -> None:
        self._rt = runtime
        self.home = runtime.locale(locale).id
        # Head sentinel: no key, lives on the list's home locale.  Allocated
        # directly on the heap (no task context required at construction).
        head_node = ListNode(runtime, None, None, self.home)
        self._head_addr = runtime.locale(self.home).heap.alloc(head_node)
        self._head_node = head_node
        self.name = name

    # ------------------------------------------------------------------
    # internal search (Michael's find, with helping)
    # ------------------------------------------------------------------
    def _find(
        self, key: Any, guard: Optional[Token]
    ) -> Tuple[AtomicUInt64, GlobalAddress, GlobalAddress, Optional["ListNode"]]:
        """Locate the insertion window for ``key``.

        Returns ``(prev_next_cell, cur_addr, next_addr, cur_node)`` where
        ``cur`` is the first unmarked node with ``node.key >= key`` (or nil
        at end of list).  Marked nodes encountered on the way are unlinked
        (helping), and deferred through ``guard`` when given.
        """
        rt = self._rt
        protecting = guard is not None and guard.needs_protect
        while True:  # restart label
            prev_cell = self._head_node.next
            cur_word = prev_cell.read()
            cur_addr, _ = _unpack(cur_word)
            restart = False
            depth = 0
            while not is_nil(cur_addr):
                if protecting:
                    # Hand-over-hand hazard publication: cur lives in slot
                    # (depth & 1) and the still-needed predecessor in the
                    # other slot (parity flips only when prev *advances*,
                    # below — a marked node replaced by helping reuses the
                    # same slot, so prev's hazard is never clobbered).
                    # Re-validate the link before dereferencing.
                    guard.protect(cur_addr, depth & 1)
                    if prev_cell.read() != _pack(cur_addr, False):
                        restart = True
                        break
                cur_node = rt.deref(cur_addr)
                next_word = cur_node.next.read()
                next_addr, cur_marked = _unpack(next_word)
                if cur_marked:
                    # cur is logically deleted: unlink it from prev.
                    if not prev_cell.compare_and_swap(
                        _pack(cur_addr, False), _pack(next_addr, False)
                    ):
                        restart = True
                        break
                    if guard is not None:
                        guard.defer_delete(cur_addr)
                    # prev is unchanged: the successor takes over cur's
                    # hazard slot on the next iteration (same parity).
                    cur_addr = next_addr
                    continue
                if cur_node.key >= key:
                    return prev_cell, cur_addr, next_addr, cur_node
                prev_cell = cur_node.next
                cur_addr = next_addr
                depth += 1
            if restart:
                continue
            return prev_cell, NIL, NIL, None

    # ------------------------------------------------------------------
    # public operations
    # ------------------------------------------------------------------
    def insert(
        self,
        key: Any,
        value: Any = None,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Insert ``key`` (with ``value``); False if already present."""
        guard = _deprecated_alias("guard", "token", guard, token)
        rt = self._rt
        while True:
            prev_cell, cur_addr, _, cur_node = self._find(key, guard)
            if cur_node is not None and cur_node.key == key:
                return False
            here = rt.here()
            node = ListNode(rt, key, value, here)
            node.next.poke(_pack(cur_addr, False))  # pre-publication write
            addr = rt.new_obj(node)
            if prev_cell.compare_and_swap(
                _pack(cur_addr, False), _pack(addr, False)
            ):
                return True
            # Window moved: discard our unpublished node and retry.
            rt.free(addr)

    def remove(
        self,
        key: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Logically then physically remove ``key``; False if absent."""
        guard = _deprecated_alias("guard", "token", guard, token)
        while True:
            prev_cell, cur_addr, next_addr, cur_node = self._find(key, guard)
            if cur_node is None or cur_node.key != key:
                return False
            # Phase 1: plant the mark (the linearization point).
            if not cur_node.next.compare_and_swap(
                _pack(next_addr, False), _pack(next_addr, True)
            ):
                continue  # somebody marked or extended cur; retry
            # Phase 2: try to unlink; failure is fine — traversals help.
            if prev_cell.compare_and_swap(
                _pack(cur_addr, False), _pack(next_addr, False)
            ):
                if guard is not None:
                    guard.defer_delete(cur_addr)
            return True

    def contains(
        self,
        key: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> bool:
        """Wait-free-ish read-only membership test (no helping, no CAS).

        ``guard`` is only needed under hazard-pointer reclamation, where
        read-only traversals must protect the nodes they dereference;
        region-based schemes (EBR/QSBR/IBR) cover the traversal through
        the caller's pinned guard.  ``token=`` is the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        sentinel = object()
        return self.get(key, sentinel, guard=guard) is not sentinel

    def get(
        self,
        key: Any,
        default: Any = None,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Return the value stored under ``key`` (read-only traversal).

        Under a hazard-pointer guard the lookup goes through
        :meth:`_find` instead of the cheap scan: a validation-only
        traversal cannot pass a marked-but-not-unlinked node safely (its
        ``next`` word fails the unmarked check forever, and an
        address-only check would admit freed successors), so — exactly as
        in Michael's algorithm — HP readers help unlink what they pass.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        if guard is not None and guard.needs_protect:
            _, _, _, cur_node = self._find(key, guard)
            if cur_node is not None and cur_node.key == key:
                return cur_node.value
            return default
        rt = self._rt
        cur_addr, _ = _unpack(self._head_node.next.read())
        while not is_nil(cur_addr):
            node = rt.deref(cur_addr)
            next_addr, marked = _unpack(node.next.read())
            if not marked and node.key == key:
                return node.value
            if node.key is not None and node.key > key:
                return default
            cur_addr = next_addr
        return default

    # ------------------------------------------------------------------
    def unsafe_items(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, value)`` pairs without synchronization (quiescent)."""
        addr, _ = _unpack(self._head_node.next.peek())
        while not is_nil(addr):
            node = self._rt.locale(addr.locale).heap.load(addr.offset)
            next_addr, marked = _unpack(node.next.peek())
            if not marked:
                yield node.key, node.value
            addr = next_addr

    def unsafe_keys(self) -> List[Any]:
        """Sorted key snapshot (quiescent tests only)."""
        return [k for k, _ in self.unsafe_items()]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LockFreeOrderedList(name={self.name!r})"
