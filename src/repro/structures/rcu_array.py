"""``RCUArray``: an RCU-like parallel-safe distributed resizable array.

The paper's related-work lineage (reference [15], Jenkins, IPDPSW'18)
builds a distributed resizable array where *readers never block*: the
array's metadata — a descriptor listing its blocks — is published through
an atomic pointer and replaced wholesale on resize, RCU style.  With this
repository's building blocks the construction is a few dozen lines, which
is rather the point of the paper: once ``AtomicObject`` and
``EpochManager`` exist, RCU-like schemes fall out.

Design:

* elements live in fixed-size **blocks** allocated round-robin across
  locales (so a large array is automatically distributed);
* an immutable **descriptor** (block-address tuple + logical length) is
  the unit of RCU publication: the root is an ABA-protected
  ``AtomicObject``;
* ``read``/``write`` are wait-free: one root read, one descriptor GET,
  one block GET/PUT — never a retry;
* ``resize`` builds a new descriptor (reusing surviving blocks), publishes
  it with one CAS, and retires the old descriptor — and any dropped
  blocks — through a reclamation guard of any scheme
  (:mod:`repro.reclaim`).  Readers that raced the resize keep using the
  old descriptor safely until they quiesce: exactly the RCU grace-period
  argument, provided by whichever reclaimer the guard belongs to.  Under
  a hazard-pointer guard, element reads/writes that pass a guard protect
  the descriptor (slot 0) *and* the resolved block (slot 1), re-validating
  the root between the two publications — blocks dropped by a shrink are
  retired as independent addresses, so the descriptor hazard alone would
  not keep them live through a scan.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..core.atomic_object import AtomicObject
from ..core.token import Token
from ..errors import StructureError
from ..memory.address import GlobalAddress, is_nil
from ._compat import _deprecated_alias

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["RCUArray"]


class _Descriptor:
    """Immutable array metadata: logical length + block addresses."""

    __slots__ = ("length", "blocks", "block_size")

    def __init__(
        self, length: int, blocks: Tuple[GlobalAddress, ...], block_size: int
    ) -> None:
        self.length = length
        self.blocks = blocks
        self.block_size = block_size


class RCUArray:
    """Distributed resizable array with wait-free element access.

    Parameters
    ----------
    runtime:
        The simulated machine.
    length:
        Initial logical length (elements default to ``fill``).
    block_size:
        Elements per block; blocks are placed round-robin over locales.
    fill:
        Default element value.
    locale:
        Home locale of the root pointer.
    """

    def __init__(
        self,
        runtime: "Runtime",
        length: int = 0,
        *,
        block_size: int = 64,
        fill: Any = None,
        locale: int = 0,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._rt = runtime
        self.block_size = block_size
        self.fill = fill
        self.home = runtime.locale(locale).id
        blocks = self._make_blocks(length)
        desc = _Descriptor(length, blocks, block_size)
        desc_addr = runtime.locale(self.home).heap.alloc(desc)
        self._root = AtomicObject(
            runtime, locale=self.home, initial=desc_addr, name="rcuarray.root"
        )

    # ------------------------------------------------------------------
    def _make_blocks(
        self, length: int, start_block: int = 0
    ) -> Tuple[GlobalAddress, ...]:
        """Allocate enough blocks for ``length`` elements, round-robin."""
        rt = self._rt
        nblocks = (length + self.block_size - 1) // self.block_size
        out: List[GlobalAddress] = []
        for b in range(start_block, nblocks):
            target = b % rt.num_locales
            payload = [self.fill] * self.block_size
            out.append(rt.locale(target).heap.alloc(payload))
        return tuple(out)

    def _descriptor(self, guard: Optional[Token] = None) -> _Descriptor:
        """Fetch the current descriptor (one atomic read + one GET).

        With a hazard-pointer guard the descriptor address is published
        and re-validated before the dereference; other schemes skip the
        handshake entirely.
        """
        addr = self._root.read_aba().get_object()
        if guard is not None and guard.needs_protect:
            while True:
                guard.protect(addr)
                current = self._root.read_aba().get_object()
                if current == addr:
                    break
                addr = current
        return self._rt.deref(addr)

    def _locate(self, desc: _Descriptor, index: int) -> Tuple[GlobalAddress, int]:
        if not (0 <= index < desc.length):
            raise StructureError(
                f"index {index} out of range for RCUArray of length {desc.length}"
            )
        return desc.blocks[index // desc.block_size], index % desc.block_size

    # ------------------------------------------------------------------
    # wait-free element access
    # ------------------------------------------------------------------
    def _locate_protected(
        self, index: int, guard: Optional[Token]
    ) -> Tuple[_Descriptor, GlobalAddress, int]:
        """Resolve ``index`` to its block, with the HP double handshake.

        Under a hazard-pointer guard both the descriptor (slot 0) and the
        resolved block (slot 1) must be published: a shrink retires
        dropped blocks as their own addresses, so only a hazard naming
        the block keeps it live through a scan.  After publishing the
        block hazard the root is re-read — if it still names our
        descriptor, the blocks it references had not been retired when
        the hazard became visible.  Region-based schemes skip all of it.
        """
        if guard is None or not guard.needs_protect:
            desc = self._descriptor(guard)
            block_addr, off = self._locate(desc, index)
            return desc, block_addr, off
        while True:
            snap_addr = self._root.read_aba().get_object()
            guard.protect(snap_addr, 0)
            if self._root.read_aba().get_object() != snap_addr:
                continue
            desc: _Descriptor = self._rt.deref(snap_addr)
            block_addr, off = self._locate(desc, index)
            guard.protect(block_addr, 1)
            if self._root.read_aba().get_object() != snap_addr:
                continue  # resized under us: the block may be retired
            return desc, block_addr, off

    def read(
        self,
        index: int,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Load element ``index`` (wait-free: no loops, no CAS).

        ``guard`` is only consulted under hazard-pointer reclamation
        (descriptor + block protection); region-based schemes need none
        here.  ``token=`` is the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        _, block_addr, off = self._locate_protected(index, guard)
        block = self._rt.deref(block_addr)
        return block[off]

    def write(
        self,
        index: int,
        value: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> None:
        """Store element ``index`` (wait-free).

        Element writes mutate blocks in place — RCU protects the array's
        *structure* (the descriptor), not individual elements, exactly as
        in the RCUArray paper.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        _, block_addr, off = self._locate_protected(index, guard)
        block = self._rt.deref(block_addr)
        ctx_charge = self._rt.network
        from ..runtime.context import maybe_context

        ctx = maybe_context()
        if ctx is not None:
            ctx_charge.write(ctx, block_addr.locale, nbytes=8)
        block[off] = value

    def __len__(self) -> int:
        return self._descriptor().length

    # ------------------------------------------------------------------
    # RCU structural updates
    # ------------------------------------------------------------------
    def resize(
        self,
        new_length: int,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> None:
        """Grow or shrink to ``new_length`` (lock-free RCU publication).

        Surviving blocks are shared between the old and new descriptors;
        dropped blocks and the old descriptor are retired through
        ``guard`` (or leaked safely without one).  Concurrent readers keep
        a consistent view throughout.  ``token=`` is the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        if new_length < 0:
            raise ValueError("new_length must be >= 0")
        rt = self._rt
        protecting = guard is not None and guard.needs_protect
        while True:
            snap = self._root.read_aba()
            old_addr = snap.get_object()
            if protecting:
                guard.protect(old_addr)
                if self._root.read_aba().get_object() != old_addr:
                    continue  # descriptor republished before hazard visible
            old_desc: _Descriptor = rt.deref(old_addr)
            old_nblocks = len(old_desc.blocks)
            new_nblocks = (new_length + self.block_size - 1) // self.block_size
            if new_nblocks > old_nblocks:
                grown = self._make_blocks(
                    new_length, start_block=old_nblocks
                )
                blocks = old_desc.blocks + grown
            else:
                blocks = old_desc.blocks[:new_nblocks]
            new_desc = _Descriptor(new_length, blocks, self.block_size)
            new_addr = rt.new_obj(new_desc, locale=self.home)
            if self._root.compare_and_swap_aba(snap, new_addr):
                # Retire the old descriptor and any dropped blocks.
                if guard is not None:
                    guard.defer_delete(snap.get_object())
                    for dropped in old_desc.blocks[new_nblocks:]:
                        guard.defer_delete(dropped)
                return
            # Lost the race: clean up our candidate and retry.
            rt.free(new_addr)
            if new_nblocks > old_nblocks:
                for b in blocks[old_nblocks:]:
                    rt.free(b)

    def append(
        self,
        value: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> int:
        """Append one element; returns its index (resize + write)."""
        guard = _deprecated_alias("guard", "token", guard, token)
        while True:
            desc = self._descriptor(guard)
            idx = desc.length
            snap = self._root.read_aba()
            if snap.get_object() != self._root.peek():
                # Another structural update is in flight; re-read.
                continue
            self.resize(idx + 1, guard=guard)
            # resize() may have raced; confirm our slot exists, then write.
            if self._descriptor(guard).length > idx:
                self.write(idx, value, guard)
                return idx

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Any]:
        """Copy out the whole array through one descriptor (consistent)."""
        desc = self._descriptor()
        out: List[Any] = []
        for i in range(desc.length):
            block_addr, off = self._locate(desc, i)
            out.append(self._rt.deref(block_addr)[off])
        return out

    def block_locales(self) -> List[int]:
        """Owning locale of each block (placement introspection)."""
        return [b.locale for b in self._descriptor().blocks]

    def destroy(self) -> None:
        """Free the descriptor and all blocks (quiescent teardown)."""
        rt = self._rt
        addr = self._root.peek()
        if is_nil(addr):
            return
        desc: _Descriptor = rt.locale(addr.locale).heap.load(addr.offset)
        for b in desc.blocks:
            rt.free(b)
        rt.free(addr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RCUArray(len={len(self)}, block_size={self.block_size})"
