"""``RCUArray``: an RCU-like parallel-safe distributed resizable array.

The paper's related-work lineage (reference [15], Jenkins, IPDPSW'18)
builds a distributed resizable array where *readers never block*: the
array's metadata — a descriptor listing its blocks — is published through
an atomic pointer and replaced wholesale on resize, RCU style.  With this
repository's building blocks the construction is a few dozen lines, which
is rather the point of the paper: once ``AtomicObject`` and
``EpochManager`` exist, RCU-like schemes fall out.

Design:

* elements live in fixed-size **blocks** allocated round-robin across
  locales (so a large array is automatically distributed);
* an immutable **descriptor** (block-address tuple + logical length) is
  the unit of RCU publication: the root is an ABA-protected
  ``AtomicObject``;
* ``read``/``write`` are wait-free: one root read, one descriptor GET,
  one block GET/PUT — never a retry;
* ``resize`` builds a new descriptor (reusing surviving blocks), publishes
  it with one CAS, and retires the old descriptor — and any dropped
  blocks — through an epoch-manager token.  Readers that raced the resize
  keep using the old descriptor safely until they quiesce: exactly the
  RCU grace-period argument, provided by the EpochManager.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..core.atomic_object import AtomicObject
from ..core.token import Token
from ..errors import StructureError
from ..memory.address import GlobalAddress, is_nil

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["RCUArray"]


class _Descriptor:
    """Immutable array metadata: logical length + block addresses."""

    __slots__ = ("length", "blocks", "block_size")

    def __init__(
        self, length: int, blocks: Tuple[GlobalAddress, ...], block_size: int
    ) -> None:
        self.length = length
        self.blocks = blocks
        self.block_size = block_size


class RCUArray:
    """Distributed resizable array with wait-free element access.

    Parameters
    ----------
    runtime:
        The simulated machine.
    length:
        Initial logical length (elements default to ``fill``).
    block_size:
        Elements per block; blocks are placed round-robin over locales.
    fill:
        Default element value.
    locale:
        Home locale of the root pointer.
    """

    def __init__(
        self,
        runtime: "Runtime",
        length: int = 0,
        *,
        block_size: int = 64,
        fill: Any = None,
        locale: int = 0,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._rt = runtime
        self.block_size = block_size
        self.fill = fill
        self.home = runtime.locale(locale).id
        blocks = self._make_blocks(length)
        desc = _Descriptor(length, blocks, block_size)
        desc_addr = runtime.locale(self.home).heap.alloc(desc)
        self._root = AtomicObject(
            runtime, locale=self.home, initial=desc_addr, name="rcuarray.root"
        )

    # ------------------------------------------------------------------
    def _make_blocks(
        self, length: int, start_block: int = 0
    ) -> Tuple[GlobalAddress, ...]:
        """Allocate enough blocks for ``length`` elements, round-robin."""
        rt = self._rt
        nblocks = (length + self.block_size - 1) // self.block_size
        out: List[GlobalAddress] = []
        for b in range(start_block, nblocks):
            target = b % rt.num_locales
            payload = [self.fill] * self.block_size
            out.append(rt.locale(target).heap.alloc(payload))
        return tuple(out)

    def _descriptor(self) -> _Descriptor:
        """Fetch the current descriptor (one atomic read + one GET)."""
        addr = self._root.read_aba().get_object()
        return self._rt.deref(addr)

    def _locate(self, desc: _Descriptor, index: int) -> Tuple[GlobalAddress, int]:
        if not (0 <= index < desc.length):
            raise StructureError(
                f"index {index} out of range for RCUArray of length {desc.length}"
            )
        return desc.blocks[index // desc.block_size], index % desc.block_size

    # ------------------------------------------------------------------
    # wait-free element access
    # ------------------------------------------------------------------
    def read(self, index: int) -> Any:
        """Load element ``index`` (wait-free: no loops, no CAS)."""
        desc = self._descriptor()
        block_addr, off = self._locate(desc, index)
        block = self._rt.deref(block_addr)
        return block[off]

    def write(self, index: int, value: Any) -> None:
        """Store element ``index`` (wait-free).

        Element writes mutate blocks in place — RCU protects the array's
        *structure* (the descriptor), not individual elements, exactly as
        in the RCUArray paper.
        """
        desc = self._descriptor()
        block_addr, off = self._locate(desc, index)
        block = self._rt.deref(block_addr)
        ctx_charge = self._rt.network
        from ..runtime.context import maybe_context

        ctx = maybe_context()
        if ctx is not None:
            ctx_charge.write(ctx, block_addr.locale, nbytes=8)
        block[off] = value

    def __len__(self) -> int:
        return self._descriptor().length

    # ------------------------------------------------------------------
    # RCU structural updates
    # ------------------------------------------------------------------
    def resize(self, new_length: int, token: Optional[Token] = None) -> None:
        """Grow or shrink to ``new_length`` (lock-free RCU publication).

        Surviving blocks are shared between the old and new descriptors;
        dropped blocks and the old descriptor are retired through
        ``token`` (or leaked safely without one).  Concurrent readers keep
        a consistent view throughout.
        """
        if new_length < 0:
            raise ValueError("new_length must be >= 0")
        rt = self._rt
        while True:
            snap = self._root.read_aba()
            old_desc: _Descriptor = rt.deref(snap.get_object())
            old_nblocks = len(old_desc.blocks)
            new_nblocks = (new_length + self.block_size - 1) // self.block_size
            if new_nblocks > old_nblocks:
                grown = self._make_blocks(
                    new_length, start_block=old_nblocks
                )
                blocks = old_desc.blocks + grown
            else:
                blocks = old_desc.blocks[:new_nblocks]
            new_desc = _Descriptor(new_length, blocks, self.block_size)
            new_addr = rt.new_obj(new_desc, locale=self.home)
            if self._root.compare_and_swap_aba(snap, new_addr):
                # Retire the old descriptor and any dropped blocks.
                if token is not None:
                    token.defer_delete(snap.get_object())
                    for dropped in old_desc.blocks[new_nblocks:]:
                        token.defer_delete(dropped)
                return
            # Lost the race: clean up our candidate and retry.
            rt.free(new_addr)
            if new_nblocks > old_nblocks:
                for b in blocks[old_nblocks:]:
                    rt.free(b)

    def append(self, value: Any, token: Optional[Token] = None) -> int:
        """Append one element; returns its index (resize + write)."""
        while True:
            desc = self._descriptor()
            idx = desc.length
            snap = self._root.read_aba()
            if snap.get_object() != self._root.peek():
                # Another structural update is in flight; re-read.
                continue
            self.resize(idx + 1, token=token)
            # resize() may have raced; confirm our slot exists, then write.
            if len(self) > idx:
                self.write(idx, value)
                return idx

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Any]:
        """Copy out the whole array through one descriptor (consistent)."""
        desc = self._descriptor()
        out: List[Any] = []
        for i in range(desc.length):
            block_addr, off = self._locate(desc, i)
            out.append(self._rt.deref(block_addr)[off])
        return out

    def block_locales(self) -> List[int]:
        """Owning locale of each block (placement introspection)."""
        return [b.locale for b in self._descriptor().blocks]

    def destroy(self) -> None:
        """Free the descriptor and all blocks (quiescent teardown)."""
        rt = self._rt
        addr = self._root.peek()
        if is_nil(addr):
            return
        desc: _Descriptor = rt.locale(addr.locale).heap.load(addr.offset)
        for b in desc.blocks:
            rt.free(b)
        rt.free(addr)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RCUArray(len={len(self)}, block_size={self.block_size})"
