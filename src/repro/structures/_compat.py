"""Keyword-rename shims for the structure APIs.

The structures historically named their guard parameter ``token=`` (the
EBR-era name) and the hash table's reclaimer parameter ``manager=``; the
scheme-generic names are ``guard=`` and ``reclaimer=`` (any guard from
:mod:`repro.reclaim` works, not just an EBR token).  The old keywords
keep working for one deprecation cycle through :func:`_deprecated_alias`.
"""

from __future__ import annotations

import warnings
from typing import Any

__all__ = ["_deprecated_alias"]


def _deprecated_alias(new_name: str, old_name: str, new_value: Any, old_value: Any) -> Any:
    """Merge a renamed keyword with its deprecated alias.

    Returns the effective value: ``new_value`` when only the new keyword
    was used, ``old_value`` (with a :class:`DeprecationWarning`) when only
    the old one was.  Passing both is an error — the caller's intent is
    ambiguous.  ``stacklevel=3`` points the warning at the caller of the
    public method, not at the method or this helper.
    """
    if old_value is None:
        return new_value
    if new_value is not None:
        raise TypeError(
            f"got values for both {new_name!r} and its deprecated alias"
            f" {old_name!r}; pass only {new_name!r}"
        )
    warnings.warn(
        f"the {old_name!r} keyword is deprecated; use {new_name!r}",
        DeprecationWarning,
        stacklevel=3,
    )
    return old_value
