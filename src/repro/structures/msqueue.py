"""A distributed Michael–Scott lock-free FIFO queue.

The second classic the paper's abstract promises its building blocks make
possible ("queues, stacks, and linked lists").  Structure:

* a dummy node anchors the queue; ``head`` and ``tail`` are
  :class:`~repro.core.atomic_object.AtomicObject` cells;
* each node's ``next`` is itself an ``AtomicObject`` living on the node's
  locale, because enqueue publishes by CAS-ing the predecessor's ``next``;
* enqueuers help lagging tails forward (lock-freedom: someone always
  completes);
* dequeued nodes retire through an epoch-manager token when supplied.

ABA strategy — the paper's two options, both available:

``aba_protection=True`` (default)
    Every pointer is read/CAS'd with its adjacent counter via DCAS.  Safe
    even with immediate address recycling, but a remote DCAS is an active
    message — the demoted path of Figure 3.

``aba_protection=False`` + a reclamation guard on every operation
    Plain 64-bit compressed-pointer CASes — the RDMA fast path.  Sound
    because deferred reclamation *is* an ABA defense: a node's address
    cannot be recycled while any participant that might hold it is
    protected.  Any guard from :mod:`repro.reclaim` works (EBR token,
    hazard-pointer, QSBR, interval); under a hazard-pointer guard the
    operations additionally run the protect/validate handshake on the
    head/tail/next pointers they dereference.

Nodes allocate on the enqueuing task's locale, so a busy queue's links
cross locales and the cost model exercises genuine remote CAS traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional, Tuple

from ..core.atomic_object import AtomicObject
from ..core.token import Token
from ..errors import EmptyStructureError
from ..memory.address import NIL, GlobalAddress, is_nil
from ._compat import _deprecated_alias

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["QueueNode", "LockFreeQueue"]


class QueueNode:
    """One queue node; ``next`` is a CAS-able atomic wide pointer."""

    __slots__ = ("value", "next")

    def __init__(
        self, runtime: "Runtime", value: Any, locale: int, aba: bool
    ) -> None:
        self.value = value
        self.next = AtomicObject(
            runtime, locale=locale, initial=NIL, aba_protection=aba
        )


class LockFreeQueue:
    """Michael–Scott two-pointer FIFO queue with EBR-based reclamation."""

    def __init__(
        self,
        runtime: "Runtime",
        *,
        locale: int = 0,
        aba_protection: bool = True,
        name: str = "queue",
    ) -> None:
        self._rt = runtime
        self.home = runtime.locale(locale).id
        self.aba_protection = bool(aba_protection)
        # The dummy node lives on the queue's home locale.
        dummy = QueueNode(runtime, None, self.home, self.aba_protection)
        dummy_addr = runtime.locale(self.home).heap.alloc(dummy)
        self.head = AtomicObject(
            runtime,
            locale=self.home,
            initial=dummy_addr,
            aba_protection=self.aba_protection,
            name=f"{name}.head",
        )
        self.tail = AtomicObject(
            runtime,
            locale=self.home,
            initial=dummy_addr,
            aba_protection=self.aba_protection,
            name=f"{name}.tail",
        )

    # ------------------------------------------------------------------
    # mode-dispatch helpers: snapshots are ABA pairs or bare addresses
    # ------------------------------------------------------------------
    def _load(self, cell: AtomicObject) -> Tuple[Any, GlobalAddress]:
        """Read a cell; returns (snapshot-for-CAS, address)."""
        if self.aba_protection:
            snap = cell.read_aba()
            return snap, snap.get_object()
        addr = cell.read()
        return addr, addr

    def _cas(self, cell: AtomicObject, snap: Any, new: GlobalAddress) -> bool:
        """CAS a cell against a snapshot from :meth:`_load`."""
        if self.aba_protection:
            return cell.compare_and_swap_aba(snap, new)
        return cell.compare_and_swap(snap, new)

    # ------------------------------------------------------------------
    def enqueue(
        self,
        value: Any,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> None:
        """Append ``value`` (lock-free; helps a lagging tail forward).

        ``guard`` is accepted for interface symmetry (an enqueue retires
        nothing); in the plain-CAS mode the *caller* is responsible for
        operating under a pinned guard so deferred reclamation can stand
        in for ABA protection.  ``token=`` is the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        rt = self._rt
        protecting = guard is not None and guard.needs_protect
        node = QueueNode(rt, value, rt.here(), self.aba_protection)
        addr = rt.new_obj(node)
        while True:
            tail_snap, tail_addr = self._load(self.tail)
            if protecting:
                guard.protect(tail_addr, 0)
                if self._load(self.tail)[1] != tail_addr:
                    continue  # tail moved before the hazard was visible
            tail_node = rt.deref(tail_addr)
            next_snap, next_addr = self._load(tail_node.next)
            # Re-check the tail hasn't moved since we read it.
            if self._load(self.tail)[1] != tail_addr:
                continue
            if is_nil(next_addr):
                # Tail really is last: link the new node behind it.
                if self._cas(tail_node.next, next_snap, addr):
                    # Swing the tail (failure is fine: someone helped).
                    self._cas(self.tail, tail_snap, addr)
                    return
            else:
                # Tail is lagging: help it forward and retry.
                self._cas(self.tail, tail_snap, next_addr)

    def dequeue(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Remove and return the oldest value.

        Raises :class:`EmptyStructureError` when the queue is empty.  The
        retired dummy node is deferred through ``guard`` when given (else
        leaked, which is safe).  ``token=`` is the deprecated alias.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        rt = self._rt
        protecting = guard is not None and guard.needs_protect
        while True:
            head_snap, head_addr = self._load(self.head)
            if protecting:
                guard.protect(head_addr, 0)
                if self._load(self.head)[1] != head_addr:
                    continue  # head moved before the hazard was visible
            tail_snap, tail_addr = self._load(self.tail)
            head_node = rt.deref(head_addr)
            _, next_addr = self._load(head_node.next)
            if self._load(self.head)[1] != head_addr:
                continue
            if head_addr == tail_addr:
                if is_nil(next_addr):
                    raise EmptyStructureError("dequeue from empty LockFreeQueue")
                # Tail lagging behind a half-finished enqueue: help.
                self._cas(self.tail, tail_snap, next_addr)
                continue
            if protecting:
                guard.protect(next_addr, 1)
                if self._load(self.head)[1] != head_addr:
                    continue  # next may have been recycled; retry from head
            next_node = rt.deref(next_addr)
            value = next_node.value
            if self._cas(self.head, head_snap, next_addr):
                # head_addr's node becomes garbage (the new dummy is next).
                if guard is not None:
                    guard.defer_delete(head_addr)
                return value

    def try_dequeue(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Optional[Any]:
        """Dequeue, returning ``None`` instead of raising on empty."""
        guard = _deprecated_alias("guard", "token", guard, token)
        try:
            return self.dequeue(guard)
        except EmptyStructureError:
            return None

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """Snapshot emptiness check."""
        _, head_addr = self._load(self.head)
        node = self._rt.deref(head_addr)
        return is_nil(self._load(node.next)[1])

    def drain(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> List[Any]:
        """Dequeue everything (quiescent helper)."""
        guard = _deprecated_alias("guard", "token", guard, token)
        out: List[Any] = []
        while True:
            v = self.try_dequeue(guard)
            if v is None and self.is_empty():
                break
            out.append(v)
        return out

    def unsafe_len(self) -> int:
        """Count nodes without synchronization (quiescent tests only)."""
        n = 0
        addr = self.head.peek()
        node = self._rt.locale(addr.locale).heap.load(addr.offset)
        addr = node.next.peek()
        while not is_nil(addr):
            n += 1
            node = self._rt.locale(addr.locale).heap.load(addr.offset)
            addr = node.next.peek()
        return n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LockFreeQueue(aba={self.aba_protection})"
