"""A distributed Treiber stack — the paper's Listing 1 made concrete.

The canonical lock-free stack: a single atomic ``head`` pointer, pushes and
pops as CAS loops.  This implementation exercises every mechanism the paper
builds:

* the head is an :class:`~repro.core.atomic_object.AtomicObject`, so under
  pointer compression the hot CAS is a 64-bit (RDMA-able) operation;
* operations use the **ABA variants** by default — with the simulated
  heap's LIFO address reuse, the plain-CAS mode (``aba_protection=False``)
  demonstrably corrupts under recycling, which the test suite provokes;
* nodes are allocated on the *pushing task's* locale (PGAS-idiomatic:
  local allocation, atomic publication), so a stack naturally spans
  locales;
* popped nodes are retired through any guard from the pluggable
  reclamation subsystem (:mod:`repro.reclaim`) — an EBR token, a
  hazard-pointer guard, a QSBR or interval guard all work unchanged.
  Under a hazard-pointer guard (``guard.needs_protect``) ``pop`` runs the
  standard protect/validate handshake: publish the head in a hazard slot,
  re-read the head, retry if it moved — the extra validation read is the
  scheme's read-side price and is skipped entirely for every other
  scheme.

Without a guard, popped nodes can either leak (safe, default) or be freed
immediately (``unsafe_free=True``), the latter existing specifically so
tests can demonstrate the use-after-free deferred reclamation prevents.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, List, Optional

from ..core.atomic_object import AtomicObject
from ..core.token import Token
from ..errors import EmptyStructureError
from ..memory.address import NIL, GlobalAddress, is_nil
from ._compat import _deprecated_alias

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["StackNode", "LockFreeStack"]


class StackNode:
    """One stack node: a payload and a plain ``next`` wide pointer.

    ``next`` needs no atomicity of its own — it is written exactly once,
    before the node is published by the head CAS (the standard Treiber
    argument).
    """

    __slots__ = ("value", "next")

    def __init__(self, value: Any, next_: GlobalAddress = NIL) -> None:
        self.value = value
        self.next = next_


class LockFreeStack:
    """Treiber stack over ``AtomicObject`` (paper Listing 1).

    Parameters
    ----------
    runtime:
        The simulated machine.
    locale:
        Home locale of the ``head`` atomic.
    aba_protection:
        Use the ``*ABA`` operation variants (default).  With ``False`` the
        stack runs on plain CAS — faster per op, unsound under address
        recycling (kept for the ABA demonstration and Figure-3-style
        comparisons).
    unsafe_free:
        When popping *without* a guard: ``True`` frees nodes immediately
        (hazardous — test fuel), ``False`` leaks them (safe default).
    """

    def __init__(
        self,
        runtime: "Runtime",
        *,
        locale: int = 0,
        aba_protection: bool = True,
        unsafe_free: bool = False,
        name: str = "stack",
    ) -> None:
        self._rt = runtime
        self.aba_protection = bool(aba_protection)
        self.unsafe_free = bool(unsafe_free)
        self.head = AtomicObject(
            runtime,
            locale=locale,
            initial=NIL,
            aba_protection=aba_protection,
            name=name,
        )

    # ------------------------------------------------------------------
    def push(self, value: Any) -> GlobalAddress:
        """Push ``value``; returns the new node's address.

        Allocates the node on the calling task's locale and publishes it
        with a head CAS — Listing 1 verbatim (ABA variant when enabled).
        """
        rt = self._rt
        node = StackNode(value)
        addr = rt.new_obj(node)
        if self.aba_protection:
            while True:
                old_head = self.head.read_aba()
                node.next = old_head.get_object()
                if self.head.compare_and_swap_aba(old_head, addr):
                    return addr
        else:
            while True:
                old = self.head.read()
                node.next = old
                if self.head.compare_and_swap(old, addr):
                    return addr

    def pop(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Any:
        """Pop the top value; raises :class:`EmptyStructureError` when empty.

        With ``guard`` (a pinned reclamation guard of any scheme) the
        unlinked node is deferred for safe reclamation; without one it
        leaks — or, with ``unsafe_free=True``, is freed immediately
        (use-after-free fuel for the tests that motivate deferred
        reclamation).  Hazard-pointer guards additionally get the
        protect/validate handshake before the dereference.  ``token=`` is
        the deprecated alias of ``guard=``.
        """
        guard = _deprecated_alias("guard", "token", guard, token)
        rt = self._rt
        protecting = guard is not None and guard.needs_protect
        if self.aba_protection:
            while True:
                old_head = self.head.read_aba()
                addr = old_head.get_object()
                if is_nil(addr):
                    raise EmptyStructureError("pop from empty LockFreeStack")
                if protecting:
                    guard.protect(addr)
                    if self.head.read_aba().get_object() != addr:
                        continue  # head moved before the hazard was visible
                node = rt.deref(addr)
                next_addr = node.next
                if self.head.compare_and_swap_aba(old_head, next_addr):
                    value = node.value
                    self._retire(addr, guard)
                    return value
        else:
            while True:
                addr = self.head.read()
                if is_nil(addr):
                    raise EmptyStructureError("pop from empty LockFreeStack")
                if protecting:
                    guard.protect(addr)
                    if self.head.read() != addr:
                        continue  # head moved before the hazard was visible
                node = rt.deref(addr)
                next_addr = node.next
                if self.head.compare_and_swap(addr, next_addr):
                    value = node.value
                    self._retire(addr, guard)
                    return value

    def try_pop(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> Optional[Any]:
        """Pop, returning ``None`` instead of raising on empty."""
        guard = _deprecated_alias("guard", "token", guard, token)
        try:
            return self.pop(guard)
        except EmptyStructureError:
            return None

    def _retire(self, addr: GlobalAddress, guard: Optional[Token]) -> None:
        if guard is not None:
            guard.defer_delete(addr)
        elif self.unsafe_free:
            self._rt.free(addr)
        # else: leak (safe; reclaimed only by drain()).

    # ------------------------------------------------------------------
    def peek(self) -> Any:
        """Read the top value without removing it (None when empty)."""
        if self.aba_protection:
            addr = self.head.read_aba().get_object()
        else:
            addr = self.head.read()
        if is_nil(addr):
            return None
        return self._rt.deref(addr).value

    def is_empty(self) -> bool:
        """Snapshot emptiness (racy under concurrency, like any such check)."""
        if self.aba_protection:
            return is_nil(self.head.read_aba().get_object())
        return is_nil(self.head.read())

    def drain(
        self,
        guard: Optional[Token] = None,
        *,
        token: Optional[Token] = None,
    ) -> List[Any]:
        """Pop everything (quiescent helper for tests/teardown)."""
        guard = _deprecated_alias("guard", "token", guard, token)
        out: List[Any] = []
        while True:
            v = self.try_pop(guard)
            if v is None and self.is_empty():
                break
            out.append(v)
        return out

    def unsafe_iter(self) -> Iterator[Any]:
        """Walk the stack without synchronization (quiescent tests only)."""
        addr = self.head.peek()
        while not is_nil(addr):
            node = self._rt.locale(addr.locale).heap.load(addr.offset)
            yield node.value
            addr = node.next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LockFreeStack(aba={self.aba_protection})"
