"""A test-and-set spinlock over the simulated interconnect.

The synchronized counterpart to everything in :mod:`repro.structures`.
Acquisition spins on an :class:`~repro.atomics.integer.AtomicBool`, so each
attempt pays real (virtual) atomic cost — a remote task contending for a
lock on another locale pays NIC-atomic or active-message prices per spin,
which is precisely why lock-based distributed structures stop scaling and
why the paper wants non-blocking ones.

A backoff cap bounds the *virtual* cost of a long spin (modelling
exponential backoff) while a real ``threading`` lock underneath guarantees
actual mutual exclusion for the protected Python state.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from ..atomics.integer import AtomicBool
from ..runtime.context import maybe_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.runtime import Runtime

__all__ = ["SpinLock"]


class SpinLock:
    """Test-and-set spinlock with cost-modelled acquisition *and* hold time.

    Mutual exclusion must serialize in **virtual** time too: while one task
    holds the lock, nobody else's critical section may overlap it.  The
    lock therefore owns a :class:`~repro.runtime.clock.ServicePoint` whose
    capacity is consumed by each critical section's duration — on release,
    the holder's clock absorbs any queueing delay accumulated behind other
    holders.  This is what caps a locked structure's throughput at
    ``1 / mean-hold-time`` regardless of task count, the ceiling the
    non-blocking structures exist to break.
    """

    def __init__(self, runtime: "Runtime", *, locale: int = 0, name: str = "lock") -> None:
        self._rt = runtime
        self.home = runtime.locale(locale).id
        self._flag = AtomicBool(runtime, self.home, False, name=name)
        # Real mutual exclusion for the Python-side critical section.
        self._mutex = threading.Lock()
        #: Serializes critical-section durations in virtual time.
        from ..runtime.clock import ServicePoint

        self.cs_point = ServicePoint(f"{name}.cs@{self.home}")
        self._hold_start = 0.0
        #: Total acquisition attempts (diagnostic: spin amplification).
        self.attempts = 0
        #: Successful acquisitions.
        self.acquisitions = 0

    def acquire(self) -> None:
        """Spin until the flag is won; each test-and-set is charged."""
        spins = 0
        while True:
            self.attempts += 1  # benign race: diagnostic only
            if not self._flag.test_and_set():
                break
            spins += 1
            # Model exponential backoff: after a few failed attempts the
            # virtual cost per retry stops growing (we keep charging one
            # atomic per visible retry but yield the real thread).
            if spins % 4 == 0:
                ctx = maybe_context()
                if ctx is not None:
                    ctx.clock.advance(ctx.runtime.config.costs.cpu_atomic_latency * spins)
        self._mutex.acquire()
        self.acquisitions += 1
        ctx = maybe_context()
        self._hold_start = ctx.clock.now if ctx is not None else 0.0

    def release(self) -> None:
        """End the critical section: consume lock capacity, then unlock."""
        ctx = maybe_context()
        if ctx is not None:
            hold = ctx.clock.now - self._hold_start
            # Even an empty critical section occupies the lock for the
            # releasing store's latency.
            hold = max(hold, self._rt.config.costs.cpu_atomic_latency)
            finish = self.cs_point.serve(self._hold_start, hold)
            ctx.clock.advance_to(finish)
        self._mutex.release()
        self._flag.clear()

    def __enter__(self) -> "SpinLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpinLock(home={self.home})"
